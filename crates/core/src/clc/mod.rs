//! The Controlled Logical Clock (CLC) algorithm.
//!
//! Rabenseifner's CLC ([28], [29] in the paper) retroactively restores the
//! clock condition in an event trace: whenever a receive appears earlier
//! than its send plus the minimum message latency, the receive is moved
//! forward in time. To preserve the *lengths of intervals* between local
//! events — the quantity performance analysis actually consumes — the
//! correction is amortized:
//!
//! * **forward amortization** — events following a corrected event are
//!   dragged forward too, by an amount that decays as local time passes
//!   (controlled by the amortization factor `μ`: the corrected clock always
//!   advances at least `μ ×` the original interval);
//! * **backward amortization** — events *preceding* the correction are
//!   shifted forward along a linear ramp inside a bounded window, so the
//!   jump does not appear as a sudden local gap; each shifted event is
//!   clamped so that no message it sends becomes violated.
//!
//! The extension of [30] maps collective operations onto point-to-point
//! semantics (1-to-N, N-to-1, N-to-N) so realistic MPI traces can be
//! corrected; [`parallel`] holds the replay-based parallel implementation
//! of [31].

pub(crate) mod columnar;
pub mod domains;
pub mod graph;
pub mod parallel;
pub mod pomp;
pub(crate) mod replay;

use simclock::{Dur, Time};
use tracefmt::{
    match_collectives, match_messages, CollFlavor, EventId, EventKind, MinLatency, Rank, Trace,
};

/// Tuning of the CLC.
#[derive(Debug, Clone, Copy)]
pub struct ClcParams {
    /// Amortization factor `μ ∈ (0, 1]`: the corrected clock advances at
    /// least `μ ×` each original local interval. `1.0` disables forward
    /// decay (corrections persist as constant shifts); `0.99` lets a 100 µs
    /// correction fade after ≈10 ms of local time.
    pub mu: f64,
    /// Apply backward amortization.
    pub backward: bool,
    /// Backward window length as a multiple of the jump size (window
    /// `W = factor × Δ` of corrected local time before the jump).
    pub backward_window_factor: f64,
}

impl Default for ClcParams {
    fn default() -> Self {
        ClcParams {
            mu: 0.99,
            backward: true,
            backward_window_factor: 50.0,
        }
    }
}

/// One correction applied by the forward pass.
#[derive(Debug, Clone, Copy)]
pub struct Jump {
    /// The corrected (receive or collective-end) event.
    pub event: EventId,
    /// How far the event had to move beyond its amortized position.
    pub size: Dur,
}

/// Statistics of a CLC application.
#[derive(Debug, Clone, Default)]
pub struct ClcReport {
    /// Corrections applied (clock-condition violations found).
    pub jumps: Vec<Jump>,
    /// Largest single correction.
    pub max_jump: Dur,
    /// Events whose timestamp changed at all.
    pub events_moved: usize,
    /// Events inspected.
    pub events_total: usize,
}

impl ClcReport {
    /// Number of corrections.
    pub fn n_jumps(&self) -> usize {
        self.jumps.len()
    }
}

/// CLC failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClcError {
    /// The message/collective structure contains a dependency cycle
    /// (malformed trace).
    CyclicTrace,
    /// Collective reconstruction failed.
    BadCollectives(String),
    /// Parameters out of range.
    BadParams(String),
}

impl std::fmt::Display for ClcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClcError::CyclicTrace => write!(f, "cyclic dependency structure in trace"),
            ClcError::BadCollectives(s) => write!(f, "collective reconstruction failed: {s}"),
            ClcError::BadParams(s) => write!(f, "bad CLC parameters: {s}"),
        }
    }
}

impl std::error::Error for ClcError {}

/// Pre-extracted dependency structure of a trace, shared by the serial and
/// parallel implementations.
pub(crate) struct Deps {
    /// recv event -> (send event, sender rank).
    pub send_of: std::collections::HashMap<EventId, (EventId, Rank)>,
    /// Collective instances.
    pub insts: Vec<CollInst>,
    /// CollEnd event -> (instance index, member position).
    pub end_info: std::collections::HashMap<EventId, (usize, usize)>,
    /// CollBegin event -> (instance index, member position).
    pub begin_info: std::collections::HashMap<EventId, (usize, usize)>,
    /// send event -> recv event (for backward clamping).
    pub recv_of: std::collections::HashMap<EventId, (EventId, Rank)>,
}

/// One collective instance in dependency form.
pub(crate) struct CollInst {
    pub flavor: CollFlavor,
    pub root_pos: Option<usize>,
    /// (rank, begin, end) per member.
    pub members: Vec<(Rank, EventId, EventId)>,
}

impl CollInst {
    /// Member positions whose *begin* the end at `pos` depends on.
    pub fn deps_of_end(&self, pos: usize) -> DepsOfEnd<'_> {
        DepsOfEnd { inst: self, pos, cur: 0 }
    }

    /// Member positions whose *end* depends on the begin at `pos`.
    pub fn dependents_of_begin(&self, pos: usize) -> Vec<usize> {
        match self.flavor {
            CollFlavor::OneToN => {
                if Some(pos) == self.root_pos {
                    (0..self.members.len()).filter(|&j| j != pos).collect()
                } else {
                    Vec::new()
                }
            }
            CollFlavor::NToOne => {
                if Some(pos) == self.root_pos {
                    Vec::new()
                } else {
                    vec![self.root_pos.expect("rooted flavour")]
                }
            }
            CollFlavor::NToN => (0..self.members.len()).filter(|&j| j != pos).collect(),
            // Prefix: begin at pos feeds every higher member's end.
            CollFlavor::Prefix => (pos + 1..self.members.len()).collect(),
        }
    }
}

/// Iterator over the begin-dependencies of one member's end event.
pub(crate) struct DepsOfEnd<'a> {
    inst: &'a CollInst,
    pos: usize,
    cur: usize,
}

impl Iterator for DepsOfEnd<'_> {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        let n = self.inst.members.len();
        loop {
            if self.cur >= n {
                return None;
            }
            let j = self.cur;
            self.cur += 1;
            let dep = match self.inst.flavor {
                // Non-root ends depend on the root's begin only.
                CollFlavor::OneToN => {
                    Some(self.pos) != self.inst.root_pos && Some(j) == self.inst.root_pos
                }
                // The root's end depends on every non-root begin.
                CollFlavor::NToOne => {
                    Some(self.pos) == self.inst.root_pos && Some(j) != self.inst.root_pos
                }
                // Every end depends on every other begin.
                CollFlavor::NToN => j != self.pos,
                // Prefix: end at pos depends on every lower begin.
                CollFlavor::Prefix => j < self.pos,
            };
            if dep {
                return Some(j);
            }
        }
    }
}

pub(crate) fn extract_deps(trace: &Trace) -> Result<Deps, ClcError> {
    let matching = match_messages(trace);
    let raw = match_collectives(trace).map_err(ClcError::BadCollectives)?;
    Ok(deps_from_parts(&matching, &raw))
}

/// Build the dependency structure from an already-reconstructed
/// communication analysis (the pipeline computes matching once and shares
/// it across every stage, including the CLC).
pub(crate) fn deps_from_parts(
    matching: &tracefmt::Matching,
    raw: &[tracefmt::CollectiveInstance],
) -> Deps {
    let mut send_of = std::collections::HashMap::with_capacity(matching.messages.len());
    let mut recv_of = std::collections::HashMap::with_capacity(matching.messages.len());
    for m in &matching.messages {
        send_of.insert(m.recv, (m.send, m.from));
        recv_of.insert(m.send, (m.recv, m.to));
    }
    let mut insts = Vec::with_capacity(raw.len());
    let mut end_info = std::collections::HashMap::new();
    let mut begin_info = std::collections::HashMap::new();
    for (idx, inst) in raw.iter().enumerate() {
        let root_pos = inst
            .root
            .and_then(|r| inst.members.iter().position(|m| m.rank == r));
        let members: Vec<(Rank, EventId, EventId)> = inst
            .members
            .iter()
            .map(|m| (m.rank, m.begin, m.end))
            .collect();
        for (pos, m) in members.iter().enumerate() {
            begin_info.insert(m.1, (idx, pos));
            end_info.insert(m.2, (idx, pos));
        }
        insts.push(CollInst {
            flavor: inst.op.flavor(),
            root_pos,
            members,
        });
    }
    Deps {
        send_of,
        insts,
        end_info,
        begin_info,
        recv_of,
    }
}

/// Apply the CLC to `trace` in place, returning correction statistics.
///
/// `lmin` supplies the minimum latency between rank pairs (the paper's
/// `l_min`); the trace's timestamps should already be pre-synchronised
/// (offset alignment or linear interpolation) — the CLC thrives on weak
/// pre-synchronisation (paper §V).
///
/// ```
/// use clocksync::{controlled_logical_clock, ClcParams};
/// use simclock::{Dur, Time};
/// use tracefmt::{EventKind, Rank, Tag, Trace, UniformLatency};
///
/// // A message received "before" it was sent — the paper's Fig. 2(b).
/// let mut trace = Trace::for_ranks(2);
/// trace.procs[0].push(Time::from_us(100),
///     EventKind::Send { to: Rank(1), tag: Tag(0), bytes: 0 });
/// trace.procs[1].push(Time::from_us(90),
///     EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 0 });
///
/// let lmin = UniformLatency(Dur::from_us(4));
/// let report = controlled_logical_clock(&mut trace, &lmin, &ClcParams::default()).unwrap();
/// assert_eq!(report.n_jumps(), 1);
/// // The receive was moved to send + l_min.
/// assert_eq!(trace.procs[1].events[0].time, Time::from_us(104));
/// ```
pub fn controlled_logical_clock(
    trace: &mut Trace,
    lmin: &dyn MinLatency,
    params: &ClcParams,
) -> Result<ClcReport, ClcError> {
    let deps = extract_deps(trace)?;
    controlled_logical_clock_with_deps(trace, &deps, lmin, params)
}

/// [`controlled_logical_clock`] on a pre-extracted dependency structure,
/// so callers that already reconstructed the communication analysis (the
/// pipeline) skip the re-matching pass.
pub(crate) fn controlled_logical_clock_with_deps(
    trace: &mut Trace,
    deps: &Deps,
    lmin: &dyn MinLatency,
    params: &ClcParams,
) -> Result<ClcReport, ClcError> {
    if !(params.mu > 0.0 && params.mu <= 1.0) {
        return Err(ClcError::BadParams(format!("mu = {}", params.mu)));
    }
    if params.backward && params.backward_window_factor <= 0.0 {
        return Err(ClcError::BadParams("non-positive backward window".into()));
    }
    let originals: Vec<Vec<Time>> = trace
        .procs
        .iter()
        .map(|p| p.events.iter().map(|e| e.time).collect())
        .collect();
    let mut report = forward_pass(trace, &originals, deps, lmin, params.mu)?;
    if params.backward {
        backward_amortization(trace, deps, lmin, params, &report.jumps);
        // Safety net: backward clamping is designed to preserve every
        // constraint, but a final μ=1 forward sweep guarantees the
        // postcondition even if future latency models interact badly.
        let post: Vec<Vec<Time>> = trace
            .procs
            .iter()
            .map(|p| p.events.iter().map(|e| e.time).collect())
            .collect();
        let _ = forward_pass(trace, &post, deps, lmin, 1.0)?;
    }
    report.events_total = trace.n_events();
    report.events_moved = trace
        .procs
        .iter()
        .zip(&originals)
        .map(|(p, orig)| {
            p.events
                .iter()
                .zip(orig)
                .filter(|(e, &o)| e.time != o)
                .count()
        })
        .sum();
    Ok(report)
}

/// The forward pass: assign corrected times in dependency order.
pub(crate) fn forward_pass(
    trace: &mut Trace,
    originals: &[Vec<Time>],
    deps: &Deps,
    lmin: &dyn MinLatency,
    mu: f64,
) -> Result<ClcReport, ClcError> {
    let n = trace.n_procs();
    let mut pc = vec![0usize; n];
    let mut prev_orig = vec![Time::MIN; n];
    let mut prev_corr = vec![Time::MIN; n];
    let mut report = ClcReport::default();

    loop {
        let mut progressed = false;
        for p in 0..n {
            'events: while pc[p] < trace.procs[p].events.len() {
                let i = pc[p];
                let id = EventId::new(p, i);
                let orig = originals[p][i];
                let my_rank = trace.procs[p].location.rank;

                // Remote constraint, if any.
                let mut remote: Option<Time> = None;
                match trace.procs[p].events[i].kind {
                    EventKind::Recv { .. } => {
                        if let Some(&(send, from)) = deps.send_of.get(&id) {
                            if send.i() >= pc[send.p()] {
                                break 'events; // send not yet corrected
                            }
                            remote = Some(
                                trace.time(send).saturating_add(lmin.l_min(from, my_rank)),
                            );
                        }
                    }
                    EventKind::CollEnd { .. } => {
                        if let Some(&(inst_idx, pos)) = deps.end_info.get(&id) {
                            let inst = &deps.insts[inst_idx];
                            let mut bound: Option<Time> = None;
                            for j in inst.deps_of_end(pos) {
                                let (jrank, jbegin, _) = inst.members[j];
                                if jbegin.i() >= pc[jbegin.p()] {
                                    break 'events; // dependency pending
                                }
                                let c = trace
                                    .time(jbegin)
                                    .saturating_add(lmin.l_min(jrank, my_rank));
                                bound = Some(bound.map_or(c, |b: Time| b.max(c)));
                            }
                            remote = bound;
                        }
                    }
                    _ => {}
                }

                // Amortized local candidate. Saturating arithmetic: traces
                // may carry timestamps at the `i64` edges, where plain ops
                // debug-panic; saturation equals the plain result whenever
                // no overflow occurs.
                let candidate = if i == 0 {
                    orig
                } else {
                    let gap = orig.saturating_since(prev_orig[p]).max(Dur::ZERO);
                    orig.max(prev_corr[p].saturating_add(gap.scale(mu)))
                };
                let corrected = match remote {
                    Some(r) if r > candidate => {
                        let size = r.saturating_since(candidate);
                        report.jumps.push(Jump { event: id, size });
                        report.max_jump = report.max_jump.max(size);
                        r
                    }
                    _ => candidate,
                };
                trace.procs[p].events[i].time = corrected;
                prev_orig[p] = orig;
                prev_corr[p] = corrected;
                pc[p] += 1;
                progressed = true;
            }
        }
        if (0..n).all(|p| pc[p] == trace.procs[p].events.len()) {
            return Ok(report);
        }
        if !progressed {
            return Err(ClcError::CyclicTrace);
        }
    }
}

/// Backward amortization: smooth each jump over a window of preceding
/// events with a linear ramp, clamped so no outgoing message or collective
/// contribution becomes violated.
///
/// Remote constraint times (the receives of outgoing messages, the ends
/// depending on collective begins) are read from a **snapshot** taken after
/// the forward pass: the result is independent of process order, and since
/// backward shifts only ever move events *forward*, snapshot-based slacks
/// are conservative. The parallel implementation shares the per-process
/// kernel, so both produce bit-identical traces.
fn backward_amortization(
    trace: &mut Trace,
    deps: &Deps,
    lmin: &dyn MinLatency,
    params: &ClcParams,
    jumps: &[Jump],
) {
    let snapshot: Vec<Vec<Time>> = trace
        .procs
        .iter()
        .map(|p| p.events.iter().map(|e| e.time).collect())
        .collect();
    // Group jumps per process, in event order.
    let mut per_proc: Vec<Vec<Jump>> = vec![Vec::new(); trace.n_procs()];
    for j in jumps {
        per_proc[j.event.p()].push(*j);
    }
    for list in per_proc.iter_mut() {
        list.sort_by_key(|j| j.event.i());
    }
    for (p, pt) in trace.procs.iter_mut().enumerate() {
        backward_pass_proc(p, pt, &per_proc[p], deps, lmin, params, &snapshot);
    }
}

/// The per-process backward kernel shared by the serial and parallel
/// implementations. `snapshot` supplies remote times for slack clamping.
pub(crate) fn backward_pass_proc(
    p: usize,
    pt: &mut tracefmt::ProcessTrace,
    jumps: &[Jump],
    deps: &Deps,
    lmin: &dyn MinLatency,
    params: &ClcParams,
    snapshot: &[Vec<Time>],
) {
    let my_rank = pt.location.rank;
    for jump in jumps {
        let k = jump.event.i();
        if k == 0 {
            continue;
        }
        let delta = jump.size;
        let t_pre = pt.events[k].time.saturating_sub(delta);
        let window = delta.scale(params.backward_window_factor);
        let w_start = t_pre.saturating_sub(window);
        // Walk backward applying min(ramp, cap, shift_of_successor).
        let mut shift_above = delta;
        for i in (0..k).rev() {
            let t_i = pt.events[i].time;
            if t_i <= w_start {
                break;
            }
            let frac = t_i.saturating_since(w_start).as_ps() as f64
                / window.as_ps().max(1) as f64;
            let ramp = delta.scale(frac.clamp(0.0, 1.0));
            let id = EventId::new(p, i);
            let mut cap = Dur::MAX;
            if let Some(&(recv, to)) = deps.recv_of.get(&id) {
                cap = cap.min(
                    snapshot[recv.p()][recv.i()]
                        .saturating_sub(lmin.l_min(my_rank, to))
                        .saturating_since(t_i),
                );
            }
            if let Some(&(inst_idx, pos)) = deps.begin_info.get(&id) {
                let inst = &deps.insts[inst_idx];
                for j in inst.dependents_of_begin(pos) {
                    let (jrank, _, jend) = inst.members[j];
                    cap = cap.min(
                        snapshot[jend.p()][jend.i()]
                            .saturating_sub(lmin.l_min(my_rank, jrank))
                            .saturating_since(t_i),
                    );
                }
            }
            let shift = ramp.min(cap).min(shift_above).max(Dur::ZERO);
            pt.events[i].time = t_i.saturating_add(shift);
            shift_above = shift;
            if shift == Dur::ZERO {
                break;
            }
        }
    }
}

/// Deterministic test traces shared by the CLC engine test suites.
#[cfg(test)]
pub(crate) mod fixtures {
    use simclock::Time;
    use tracefmt::{CollOp, CommId, EventKind, Rank, Tag, Trace};

    /// Mixed p2p + collective ring trace with injected per-proc skew:
    /// each round every proc sends to its right neighbour then receives
    /// from its left one, and every fourth round ends in an Allreduce.
    pub fn mixed_trace(procs: usize, rounds: usize) -> Trace {
        let mut t = Trace::for_ranks(procs);
        let mut now = vec![0i64; procs];
        for round in 0..rounds {
            for (p, now_p) in now.iter_mut().enumerate() {
                let next = (p + 1) % procs;
                *now_p += 7 + ((round * 13 + p * 5) % 40) as i64;
                let skew = ((p * 37) % 90) as i64 - 45;
                t.procs[p].push(
                    Time::from_us(*now_p + skew),
                    EventKind::Send { to: Rank(next as u32), tag: Tag(round as u32), bytes: 8 },
                );
            }
            for (p, now_p) in now.iter_mut().enumerate() {
                let prev = (p + procs - 1) % procs;
                *now_p += 6 + ((round * 11 + p * 3) % 30) as i64;
                let skew = ((p * 37) % 90) as i64 - 45;
                t.procs[p].push(
                    Time::from_us(*now_p + skew),
                    EventKind::Recv { from: Rank(prev as u32), tag: Tag(round as u32), bytes: 8 },
                );
            }
            if round % 4 == 0 {
                let base = *now.iter().max().unwrap();
                for (p, now_p) in now.iter_mut().enumerate() {
                    let skew = ((p * 37) % 90) as i64 - 45;
                    *now_p = base + ((p * 3) % 10) as i64;
                    t.procs[p].push(
                        Time::from_us(*now_p + skew),
                        EventKind::CollBegin {
                            op: CollOp::Allreduce,
                            comm: CommId::WORLD,
                            root: None,
                            bytes: 8,
                        },
                    );
                    *now_p += 12 + ((p * 7) % 9) as i64;
                    t.procs[p].push(
                        Time::from_us(*now_p + skew),
                        EventKind::CollEnd {
                            op: CollOp::Allreduce,
                            comm: CommId::WORLD,
                            root: None,
                            bytes: 8,
                        },
                    );
                }
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::Time;
    use tracefmt::{
        check_collectives, check_p2p, match_collectives as mc, match_messages as mm, CollOp,
        CommId, Rank, RegionId, Tag, UniformLatency,
    };

    fn us(n: i64) -> Time {
        Time::from_us(n)
    }

    const LMIN: UniformLatency = UniformLatency(Dur::from_ps(4_000_000)); // 4 µs

    fn assert_condition_holds(trace: &Trace) {
        let m = mm(trace);
        let r = check_p2p(trace, &m, &LMIN);
        assert!(r.violations.is_empty(), "p2p violations remain: {r:?}");
        let insts = mc(trace).unwrap();
        let c = check_collectives(trace, &insts, &LMIN);
        assert_eq!(c.logical_violated, 0, "collective violations remain");
    }

    #[test]
    fn consistent_trace_is_untouched() {
        let mut t = Trace::for_ranks(2);
        t.procs[0].push(us(0), EventKind::Send { to: Rank(1), tag: Tag(0), bytes: 0 });
        t.procs[1].push(us(10), EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 0 });
        let before = t.clone();
        let rep = controlled_logical_clock(&mut t, &LMIN, &ClcParams::default()).unwrap();
        assert_eq!(rep.n_jumps(), 0);
        assert_eq!(rep.events_moved, 0);
        assert_eq!(t.procs[0].events, before.procs[0].events);
        assert_eq!(t.procs[1].events, before.procs[1].events);
    }

    #[test]
    fn reversed_message_is_repaired() {
        let mut t = Trace::for_ranks(2);
        t.procs[0].push(us(100), EventKind::Send { to: Rank(1), tag: Tag(0), bytes: 0 });
        t.procs[1].push(us(90), EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 0 });
        t.procs[1].push(us(95), EventKind::Enter { region: RegionId(0) });
        let rep = controlled_logical_clock(&mut t, &LMIN, &ClcParams::default()).unwrap();
        assert_eq!(rep.n_jumps(), 1);
        assert_condition_holds(&t);
        // The recv moved to send + l_min.
        assert_eq!(t.procs[1].events[0].time, us(104));
        // Forward amortization dragged the follower along, preserving most
        // of the 5 µs interval.
        let follow_gap = t.procs[1].events[1].time - t.procs[1].events[0].time;
        assert!(follow_gap >= Dur::from_us(4));
        assert!(follow_gap <= Dur::from_us(5));
    }

    #[test]
    fn forward_amortization_decays() {
        // After a 100 µs jump, events far in the local future should drift
        // back toward their original times at rate (1-μ).
        let mut t = Trace::for_ranks(2);
        t.procs[0].push(us(1000), EventKind::Send { to: Rank(1), tag: Tag(0), bytes: 0 });
        t.procs[1].push(us(900), EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 0 });
        // A long run of local events, 100 µs apart.
        for i in 1..=200 {
            t.procs[1].push(us(900 + i * 100), EventKind::Enter { region: RegionId(0) });
        }
        let params = ClcParams { mu: 0.99, backward: false, ..ClcParams::default() };
        let rep = controlled_logical_clock(&mut t, &LMIN, &params).unwrap();
        assert_eq!(rep.n_jumps(), 1);
        // Jump size: corrected recv = 1004, original 900 → 104 µs.
        let first_shift = t.procs[1].events[0].time - us(900);
        assert_eq!(first_shift, Dur::from_us(104));
        // After 200 intervals of 100 µs, decay is 1% each: shift shrinks by
        // 1 µs per interval until the original time dominates.
        let last = t.procs[1].events.last().unwrap().time;
        let last_shift = last - us(900 + 200 * 100);
        assert_eq!(last_shift, Dur::ZERO, "shift should fully decay");
        // Midway (after ~50 intervals) some shift remains.
        let mid = t.procs[1].events[50].time - us(900 + 50 * 100);
        assert!(mid > Dur::ZERO);
    }

    #[test]
    fn mu_one_preserves_shift_forever() {
        let mut t = Trace::for_ranks(2);
        t.procs[0].push(us(1000), EventKind::Send { to: Rank(1), tag: Tag(0), bytes: 0 });
        t.procs[1].push(us(900), EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 0 });
        t.procs[1].push(us(10_900), EventKind::Enter { region: RegionId(0) });
        let params = ClcParams { mu: 1.0, backward: false, ..ClcParams::default() };
        controlled_logical_clock(&mut t, &LMIN, &params).unwrap();
        // Interval fully preserved: still exactly 10 ms after the recv.
        assert_eq!(
            t.procs[1].events[1].time - t.procs[1].events[0].time,
            Dur::from_ms(10)
        );
    }

    #[test]
    fn backward_amortization_smooths_the_approach() {
        let mut t = Trace::for_ranks(2);
        // Receiver has closely spaced local events before the violated recv.
        for i in 0..10 {
            t.procs[1].push(us(80 + i * 2), EventKind::Enter { region: RegionId(0) });
        }
        t.procs[0].push(us(200), EventKind::Send { to: Rank(1), tag: Tag(0), bytes: 0 });
        t.procs[1].push(us(100), EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 0 });
        let params = ClcParams { mu: 1.0, backward: true, backward_window_factor: 1.0 };
        controlled_logical_clock(&mut t, &LMIN, &params).unwrap();
        assert_condition_holds(&t);
        // Events just before the jump moved forward; earlier ones less so —
        // shifts are non-decreasing toward the jump.
        let shifts: Vec<Dur> = (0..10)
            .map(|i| t.procs[1].events[i].time - us(80 + (i as i64) * 2))
            .collect();
        for w in shifts.windows(2) {
            assert!(w[0] <= w[1], "backward shifts must ramp up: {shifts:?}");
        }
        assert!(*shifts.last().unwrap() > Dur::ZERO, "window saw no shift");
        // Local order intact.
        assert!(t.is_locally_monotone());
    }

    #[test]
    fn backward_amortization_never_violates_outgoing_messages() {
        // The event inside the backward window is itself a send whose recv
        // is tight; clamping must keep it below recv - l_min.
        let mut t = Trace::for_ranks(3);
        // p1 sends to p2 at 95; p2 receives at exactly 99 (= 95 + l_min).
        t.procs[1].push(us(95), EventKind::Send { to: Rank(2), tag: Tag(0), bytes: 0 });
        t.procs[2].push(us(99), EventKind::Recv { from: Rank(1), tag: Tag(0), bytes: 0 });
        // p0 sends to p1 at 200; p1's recv at 100 is violated by 104 µs.
        t.procs[0].push(us(200), EventKind::Send { to: Rank(1), tag: Tag(1), bytes: 0 });
        t.procs[1].push(us(100), EventKind::Recv { from: Rank(0), tag: Tag(1), bytes: 0 });
        let params = ClcParams { mu: 1.0, backward: true, backward_window_factor: 100.0 };
        controlled_logical_clock(&mut t, &LMIN, &params).unwrap();
        assert_condition_holds(&t);
    }

    #[test]
    fn collective_one_to_n_repair() {
        // Bcast root begins at 100; a member's end at 50 is impossible.
        let mut t = Trace::for_ranks(3);
        let mk = |op, root| (op, CommId::WORLD, root);
        let (op, comm, root) = mk(CollOp::Bcast, Some(Rank(0)));
        t.procs[0].push(us(100), EventKind::CollBegin { op, comm, root, bytes: 8 });
        t.procs[0].push(us(110), EventKind::CollEnd { op, comm, root, bytes: 8 });
        t.procs[1].push(us(40), EventKind::CollBegin { op, comm, root, bytes: 8 });
        t.procs[1].push(us(50), EventKind::CollEnd { op, comm, root, bytes: 8 });
        t.procs[2].push(us(90), EventKind::CollBegin { op, comm, root, bytes: 8 });
        t.procs[2].push(us(120), EventKind::CollEnd { op, comm, root, bytes: 8 });
        let rep = controlled_logical_clock(&mut t, &LMIN, &ClcParams::default()).unwrap();
        assert!(rep.n_jumps() >= 1);
        assert_condition_holds(&t);
        // Member 1's end moved to root begin + l_min.
        assert!(t.procs[1].events[1].time >= us(104));
        // The root's own events are untouched (nothing constrains them).
        assert_eq!(t.procs[0].events[0].time, us(100));
    }

    #[test]
    fn collective_n_to_n_repair() {
        let mut t = Trace::for_ranks(3);
        let op = CollOp::Barrier;
        let comm = CommId::WORLD;
        // Rank 2 enters late (at 200); ranks 0/1 claim to leave at 100.
        for (p, (b, e)) in [(0usize, (90, 100)), (1, (95, 100)), (2, (200, 210))] {
            t.procs[p].push(us(b), EventKind::CollBegin { op, comm, root: None, bytes: 0 });
            t.procs[p].push(us(e), EventKind::CollEnd { op, comm, root: None, bytes: 0 });
        }
        controlled_logical_clock(&mut t, &LMIN, &ClcParams::default()).unwrap();
        assert_condition_holds(&t);
        // Everyone's end is now ≥ 204.
        for p in 0..3 {
            assert!(t.procs[p].events[1].time >= us(204));
        }
    }

    #[test]
    fn chains_of_violations_propagate() {
        // A violated recv is followed by a send whose recv then needs
        // correcting too.
        let mut t = Trace::for_ranks(3);
        t.procs[0].push(us(1000), EventKind::Send { to: Rank(1), tag: Tag(0), bytes: 0 });
        t.procs[1].push(us(500), EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 0 });
        t.procs[1].push(us(510), EventKind::Send { to: Rank(2), tag: Tag(0), bytes: 0 });
        t.procs[2].push(us(520), EventKind::Recv { from: Rank(1), tag: Tag(0), bytes: 0 });
        let rep = controlled_logical_clock(&mut t, &LMIN, &ClcParams::default()).unwrap();
        assert_condition_holds(&t);
        assert_eq!(rep.n_jumps(), 2);
        // p1 recv → 1004, p1 send dragged to ≥ 1013.9 (μ≈0.99 of 10 µs),
        // p2 recv → p1 send + 4.
        let p1_send = t.procs[1].events[1].time;
        assert!(p1_send >= us(1013));
        assert_eq!(t.procs[2].events[0].time, p1_send + Dur::from_us(4));
    }

    #[test]
    fn bad_params_rejected() {
        let mut t = Trace::for_ranks(1);
        assert!(matches!(
            controlled_logical_clock(&mut t, &LMIN, &ClcParams { mu: 0.0, ..Default::default() }),
            Err(ClcError::BadParams(_))
        ));
        assert!(matches!(
            controlled_logical_clock(
                &mut t,
                &LMIN,
                &ClcParams { mu: 1.5, ..Default::default() }
            ),
            Err(ClcError::BadParams(_))
        ));
        assert!(matches!(
            controlled_logical_clock(
                &mut t,
                &LMIN,
                &ClcParams { backward_window_factor: 0.0, ..Default::default() }
            ),
            Err(ClcError::BadParams(_))
        ));
    }

    #[test]
    fn idempotent_on_second_application() {
        let mut t = Trace::for_ranks(2);
        t.procs[0].push(us(100), EventKind::Send { to: Rank(1), tag: Tag(0), bytes: 0 });
        t.procs[1].push(us(90), EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 0 });
        controlled_logical_clock(&mut t, &LMIN, &ClcParams::default()).unwrap();
        let snapshot = t.clone();
        let rep2 = controlled_logical_clock(&mut t, &LMIN, &ClcParams::default()).unwrap();
        assert_eq!(rep2.n_jumps(), 0);
        assert_eq!(t.procs[1].events, snapshot.procs[1].events);
    }
}
