//! Batched lock-free parallel CLC replay over the CSR graph.
//!
//! The previous parallel implementation re-enacted the trace's
//! communication literally: one mpsc channel message per send, a
//! mutex/condvar gather cell per collective. Both cost a synchronization
//! round-trip *per event*, which is why the sharded pipeline stopped
//! beating the sequential one. This engine replaces all of it with one
//! single-producer/single-consumer **ring** per ordered timeline pair:
//!
//! * **sizing** — [`DepGraph::cross_count`]`(q, p)` is the exact number of
//!   cross-timeline edges from `q` to `p`, so the `q → p` ring is allocated
//!   at exactly that capacity and *never wraps*: every slot is written at
//!   most once, read at most once, and no back-pressure logic exists;
//! * **batched publication** — the producer writes entries with plain
//!   (unsynchronized) stores and publishes them in chunks by bumping a
//!   single `published` counter with Release ordering every
//!   [`BATCH`] entries per ring; the consumer Acquire-loads the counter
//!   and drains `consumed..published` without any atomics on the entries
//!   themselves. One synchronizing store amortizes 256 events;
//! * **epoch flush** — every [`EPOCH`] locally processed events (≈ the
//!   order of a backward-amortization window on the bench traces) a worker
//!   publishes all of its rings, bounding how stale a fast consumer's view
//!   of a slow producer can get;
//! * **flush before blocking** — a worker always publishes *all* of its
//!   rings before spinning on a missing dependency, and once more when its
//!   timeline is done. This is the deadlock-freedom argument: on an
//!   acyclic dependency graph, take the globally earliest unprocessed
//!   event in topological order — its producers are all processed, and
//!   each producing worker has since either blocked, finished, or crossed
//!   an epoch boundary, all of which publish; so the entry is visible and
//!   the consumer progresses.
//!
//! Each worker owns its timestamp column (`&mut [i64]`) and walks it in
//! program order; same-timeline edges are applied inline (the graph's
//! [`DepGraph::local_cycle`] check guarantees the producer precedes the
//! consumer, and rejects malformed traces up front instead of
//! deadlocking). The per-event arithmetic is identical to the serial
//! forward pass, and the remote bound is a `max` over the same edge
//! contributions — order-independent, hence bit-identical results
//! regardless of arrival interleaving. Backward amortization and the μ=1
//! safety-net sweep then reuse the serial CSR kernels.

use super::columnar::{
    backward_amortization_csr, events_moved, flatten_by_gid, forward_pass_csr, validate,
};
use super::graph::DepGraph;
use super::{ClcError, ClcParams, ClcReport, Jump};
use simclock::{Dur, Time};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use tracefmt::{EventId, TraceColumns};

/// Entries appended to a ring before its producer publishes them.
pub(crate) const BATCH: usize = 256;
/// Locally processed events between unconditional publishes of all rings.
pub(crate) const EPOCH: usize = 4096;

/// One remote-bound delivery: the consumer-local event index and the
/// producer's contribution `corrected + latency`, in picoseconds.
#[derive(Clone, Copy, Default)]
struct RingEntry {
    idx: u32,
    bound_ps: i64,
}

/// Single-producer/single-consumer append-only ring. Capacity equals the
/// exact cross-edge count of its timeline pair, so indices never wrap.
struct Ring {
    slots: Box<[UnsafeCell<RingEntry>]>,
    /// Entries `0..published` are visible to the consumer.
    published: AtomicUsize,
}

// SAFETY: exactly one thread (the producer) writes `slots`, strictly below
// its private write cursor, and makes writes visible only by bumping
// `published` with Release; exactly one thread (the consumer) reads, and
// only below an Acquire-load of `published`. The release/acquire pair
// orders every slot write before its read, and no slot is ever reused.
unsafe impl Sync for Ring {}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            slots: (0..capacity).map(|_| UnsafeCell::new(RingEntry::default())).collect(),
            published: AtomicUsize::new(0),
        }
    }
}

/// Producer-side view of one outbound ring: a private write cursor plus
/// the last published watermark, so publication is skipped when nothing
/// new was written.
struct Outbound<'a> {
    ring: &'a Ring,
    written: usize,
    published: usize,
}

impl Outbound<'_> {
    #[inline]
    fn push(&mut self, idx: u32, bound_ps: i64) {
        debug_assert!(self.written < self.ring.slots.len(), "ring sized below edge count");
        // SAFETY: sole producer; `written` never reaches capacity (exact
        // sizing) and slots at or above `written` are unpublished.
        unsafe { *self.ring.slots[self.written].get() = RingEntry { idx, bound_ps } };
        self.written += 1;
        if self.written - self.published >= BATCH {
            self.publish();
        }
    }

    #[inline]
    fn publish(&mut self) {
        if self.written != self.published {
            self.ring.published.store(self.written, Ordering::Release);
            self.published = self.written;
        }
    }
}

/// Drain everything newly published on one inbound ring into the
/// consumer's accumulator state.
#[inline]
fn drain(ring: &Ring, consumed: &mut usize, acc: &mut [i64], remaining: &mut [u32]) -> bool {
    let avail = ring.published.load(Ordering::Acquire);
    if avail == *consumed {
        return false;
    }
    for at in *consumed..avail {
        // SAFETY: `at < avail <= published`, so the producer's Release
        // publication of this slot happens-before this read.
        let e = unsafe { *ring.slots[at].get() };
        let li = e.idx as usize;
        acc[li] = acc[li].max(e.bound_ps);
        remaining[li] -= 1;
    }
    *consumed = avail;
    true
}

/// Parallel CLC on timestamp columns over the CSR graph: batched ring
/// replay forward pass, threaded CSR backward amortization, serial μ=1
/// safety-net sweep. Returns the report plus the summed time workers spent
/// stalled waiting on remote dependencies (the stage's merge-wait).
///
/// Bit-identical to [`super::columnar::controlled_logical_clock_columnar_csr`]
/// by the argument in the module docs.
pub(crate) fn controlled_logical_clock_replay_csr(
    cols: &mut TraceColumns,
    graph: &DepGraph,
    params: &ClcParams,
) -> Result<(ClcReport, Duration), ClcError> {
    validate(params)?;
    if graph.local_cycle().is_some() {
        return Err(ClcError::CyclicTrace);
    }
    let n = cols.n_procs();
    let originals = flatten_by_gid(cols);

    // One ring per ordered cross pair, indexed producer-major: the q → p
    // ring lives at `q * n + p`. Same-pair slots get empty rings.
    let rings: Vec<Ring> = (0..n * n)
        .map(|qp| {
            let (q, p) = (qp / n, qp % n);
            Ring::new(if q == p { 0 } else { graph.cross_count(q, p) as usize })
        })
        .collect();
    let rings_ref = &rings;
    let originals_ref = &originals;

    let mut worker_out: Vec<(Vec<Jump>, Duration)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (p, col) in cols.iter_mut_slices() {
            let mu = params.mu;
            let b = graph.base(p) as usize;
            let my_originals = &originals_ref[b..b + col.len()];
            handles.push(scope.spawn(move || {
                replay_worker(p, n, col, my_originals, graph, rings_ref, mu)
            }));
        }
        for h in handles {
            worker_out.push(h.join().expect("replay worker panicked"));
        }
    });

    let mut jumps = Vec::new();
    let mut wait = Duration::ZERO;
    for (j, w) in worker_out {
        jumps.extend(j);
        wait += w;
    }
    jumps.sort_by_key(|j| (j.event.proc, j.event.idx));
    let max_jump = jumps.iter().map(|j| j.size).max().unwrap_or(Dur::ZERO);

    if params.backward {
        backward_amortization_csr(cols, graph, params, &jumps, true);
        let post = flatten_by_gid(cols);
        forward_pass_csr(cols, graph, &post, 1.0)?;
    }

    let report = ClcReport {
        max_jump,
        events_moved: events_moved(cols, &originals),
        events_total: cols.n_events(),
        jumps,
    };
    Ok((report, wait))
}

/// One timeline's replay: walk the column in program order, stalling only
/// when a cross-timeline producer has not yet published.
fn replay_worker(
    p: usize,
    n: usize,
    col: &mut [i64],
    originals: &[i64],
    graph: &DepGraph,
    rings: &[Ring],
    mu: f64,
) -> (Vec<Jump>, Duration) {
    let base = graph.base(p);
    let len = col.len();

    // Remote-bound accumulator and outstanding in-edge count per local
    // event. Same-timeline contributions are applied inline below, so both
    // cover *all* in-edges uniformly.
    let mut acc = vec![i64::MIN; len];
    let mut remaining: Vec<u32> = (0..len)
        .map(|i| graph.in_of(base + i as u32).0.len() as u32)
        .collect();

    let mut outbound: Vec<Outbound<'_>> = (0..n)
        .map(|q| Outbound { ring: &rings[p * n + q], written: 0, published: 0 })
        .collect();
    let mut consumed = vec![0usize; n];

    let mut jumps = Vec::new();
    let mut waited = Duration::ZERO;
    let mut prev_orig = Time::MIN;
    let mut prev_corr = Time::MIN;

    for i in 0..len {
        let has_deps = !graph.in_of(base + i as u32).0.is_empty();
        if remaining[i] > 0 {
            // Opportunistic drain first; publish our own rings before
            // spinning so no consumer of ours can be starved by us.
            for q in 0..n {
                if q != p {
                    drain(&rings[q * n + p], &mut consumed[q], &mut acc, &mut remaining);
                }
            }
            if remaining[i] > 0 {
                for out in outbound.iter_mut() {
                    out.publish();
                }
                let stall = Instant::now();
                while remaining[i] > 0 {
                    let mut any = false;
                    for q in 0..n {
                        if q != p {
                            any |= drain(
                                &rings[q * n + p],
                                &mut consumed[q],
                                &mut acc,
                                &mut remaining,
                            );
                        }
                    }
                    if !any {
                        std::thread::yield_now();
                    }
                }
                waited += stall.elapsed();
            }
        }

        let orig = Time::from_ps(originals[i]);
        let remote = if has_deps { Some(Time::from_ps(acc[i])) } else { None };
        let candidate = if i == 0 {
            orig
        } else {
            let gap = orig.saturating_since(prev_orig).max(Dur::ZERO);
            orig.max(prev_corr.saturating_add(gap.scale(mu)))
        };
        let corrected = match remote {
            Some(r) if r > candidate => {
                jumps.push(Jump {
                    event: EventId::new(p, i),
                    size: r.saturating_since(candidate),
                });
                r
            }
            _ => candidate,
        };
        col[i] = corrected.as_ps();
        prev_orig = orig;
        prev_corr = corrected;

        // Publish the corrected time along every out-edge.
        let (dsts, lats) = graph.out_of(base + i as u32);
        for (&dst, &lat) in dsts.iter().zip(lats) {
            let bound = corrected.saturating_add(Dur::from_ps(lat)).as_ps();
            if dst >= base && ((dst - base) as usize) < len {
                // Same timeline: the local-cycle check guarantees the
                // consumer lies ahead of us in program order.
                let li = (dst - base) as usize;
                acc[li] = acc[li].max(bound);
                remaining[li] -= 1;
            } else {
                let (dp, di) = graph.locate(dst);
                outbound[dp].push(di as u32, bound);
            }
        }

        if (i + 1) % EPOCH == 0 {
            for out in outbound.iter_mut() {
                out.publish();
            }
        }
    }
    // Final flush: anything still unpublished becomes visible now.
    for out in outbound.iter_mut() {
        out.publish();
    }
    (jumps, waited)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clc::columnar::controlled_logical_clock_columnar_csr;
    use crate::clc::fixtures;
    use tracefmt::{match_collectives, match_messages, Trace, UniformLatency};

    const LMIN: UniformLatency = UniformLatency(Dur::from_ps(4_000_000));

    fn graph_of(t: &Trace) -> DepGraph {
        let matching = match_messages(t);
        let insts = match_collectives(t).unwrap();
        DepGraph::from_trace(t, &matching, &insts, &LMIN)
    }

    #[test]
    fn replay_matches_serial_csr_exactly() {
        for (procs, rounds) in [(2, 8), (5, 17), (8, 25)] {
            let base = fixtures::mixed_trace(procs, rounds);
            let params = ClcParams::default();
            let graph = graph_of(&base);

            let mut serial = TraceColumns::gather(&base);
            let rs = controlled_logical_clock_columnar_csr(&mut serial, &graph, &params).unwrap();

            let mut par = TraceColumns::gather(&base);
            let (rp, _) = controlled_logical_clock_replay_csr(&mut par, &graph, &params).unwrap();

            assert_eq!(rs.n_jumps(), rp.n_jumps(), "{procs}x{rounds}");
            assert_eq!(rs.max_jump, rp.max_jump);
            assert_eq!(rs.events_moved, rp.events_moved);
            // Jump *order* differs (serial discovers jumps in round-robin
            // order, replay reports them grouped per timeline); the jump
            // set is identical.
            let key = |j: &super::Jump| (j.event.proc, j.event.idx, j.size);
            let mut js: Vec<_> = rs.jumps.iter().map(key).collect();
            let mut jp: Vec<_> = rp.jumps.iter().map(key).collect();
            js.sort_unstable();
            jp.sort_unstable();
            assert_eq!(js, jp, "{procs}x{rounds}: jump sets differ");
            for (id, _) in base.iter_events() {
                assert_eq!(serial.time(id), par.time(id), "{procs}x{rounds} {id:?}");
            }
        }
    }

    #[test]
    fn forward_only_replay_matches() {
        let base = fixtures::mixed_trace(6, 20);
        let params = ClcParams { backward: false, ..ClcParams::default() };
        let graph = graph_of(&base);

        let mut serial = TraceColumns::gather(&base);
        controlled_logical_clock_columnar_csr(&mut serial, &graph, &params).unwrap();
        let mut par = TraceColumns::gather(&base);
        controlled_logical_clock_replay_csr(&mut par, &graph, &params).unwrap();

        for (id, _) in base.iter_events() {
            assert_eq!(serial.time(id), par.time(id));
        }
    }

    #[test]
    fn local_cycle_errors_before_spawning() {
        use simclock::Time;
        use tracefmt::{EventKind, Rank, Tag};
        let mut t = Trace::for_ranks(1);
        t.procs[0].push(
            Time::from_us(5),
            EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 0 },
        );
        t.procs[0].push(
            Time::from_us(10),
            EventKind::Send { to: Rank(0), tag: Tag(0), bytes: 0 },
        );
        let graph = graph_of(&t);
        let mut cols = TraceColumns::gather(&t);
        let err = controlled_logical_clock_replay_csr(&mut cols, &graph, &ClcParams::default());
        assert!(matches!(err, Err(ClcError::CyclicTrace)));
    }

    #[test]
    fn single_timeline_works() {
        use simclock::Time;
        use tracefmt::{EventKind, RegionId};
        let mut t = Trace::for_ranks(1);
        for i in 0..10 {
            t.procs[0].push(Time::from_us(i * 10), EventKind::Enter { region: RegionId(0) });
        }
        let graph = graph_of(&t);
        let mut cols = TraceColumns::gather(&t);
        let (rep, _) =
            controlled_logical_clock_replay_csr(&mut cols, &graph, &ClcParams::default()).unwrap();
        assert_eq!(rep.n_jumps(), 0);
        assert_eq!(rep.events_moved, 0);
    }
}
