//! The compressed-sparse-row (CSR) event-dependency graph.
//!
//! [`super::Deps`] answers "what constrains this event?" through five hash
//! maps — fine for the reference implementation, but every lookup in the
//! CLC's hot loops is a hash + probe over scattered heap nodes. This
//! module lowers the same structure ([`Matching`] message edges plus the
//! collective → point-to-point mapped edges of the paper's [30] extension)
//! into flat arrays indexed by a *global event id* (`gid`): event `(p, i)`
//! is `base[p] + i`, timelines concatenated in proc order — exactly the
//! layout of a flattened [`tracefmt::TraceColumns`].
//!
//! Per event the graph stores both directions of every constraint edge:
//!
//! * `in_offsets`/`in_edges` — CSR of *producers*: `in_edges[in_offsets[v]
//!   .. in_offsets[v+1]]` are the events whose corrected times bound event
//!   `v` from below (the matched send of a receive; the relevant begins of
//!   a collective end);
//! * `out_offsets`/`out_edges` — CSR of *consumers*: the transpose, used
//!   by backward amortization to clamp shifts and by the replay engine to
//!   publish corrected times;
//! * `in_lat_ps`/`out_lat_ps` — the minimum latency of each edge in
//!   picoseconds, baked in at build time from the frozen latency model, so
//!   the hot loops never touch a rank pair again. An edge's contribution
//!   to its consumer is exactly `corrected(producer) + lat`, the same
//!   `Time + Dur` addition the AoS pass performs.
//!
//! Per-consumer in-edge order equals the AoS dispatch order (the single
//! message edge, or [`super::CollInst::deps_of_end`] order), so a forward
//! pass walking `in_edges` observes dependencies in the same sequence and
//! blocks on the same first pending producer — the foundation of the
//! bit-identity guarantee shared by the serial, columnar and replay
//! engines.

use super::CollInst;
use simclock::Dur;
use tracefmt::{CollectiveInstance, EventId, Matching, MinLatency, Trace};

/// Flat CSR dependency graph over the events of one trace. See the module
/// docs for the encoding.
pub struct DepGraph {
    /// `base[p]` is the gid of event `(p, 0)`; `base[n_procs]` the total
    /// event count. Prefix sums of the timeline lengths.
    base: Vec<u32>,
    /// `proc_of[gid]` is the timeline of event `gid` — the inverse of
    /// `base`, materialized so the hot kernels resolve gid → timeline in
    /// one load instead of a binary search over `base`.
    proc_of: Vec<u32>,
    /// CSR offsets into `in_edges`, one slot per event plus a terminator.
    in_offsets: Vec<u32>,
    /// Producer gids, grouped per consumer in dependency-dispatch order.
    in_edges: Vec<u32>,
    /// Minimum latency of each in-edge, aligned with `in_edges`.
    in_lat_ps: Vec<i64>,
    /// CSR offsets into `out_edges`, one slot per event plus a terminator.
    out_offsets: Vec<u32>,
    /// Consumer gids, grouped per producer.
    out_edges: Vec<u32>,
    /// Minimum latency of each out-edge, aligned with `out_edges`.
    out_lat_ps: Vec<i64>,
    /// `cross_counts[q * n_procs + p]`: number of edges from a producer on
    /// timeline `q` to a consumer on timeline `p ≠ q` — the exact capacity
    /// of the replay engine's `q → p` ring.
    cross_counts: Vec<u32>,
    /// First consumer of a same-timeline edge whose producer does not
    /// precede it in program order, if any. Such an edge makes the serial
    /// forward pass report [`super::ClcError::CyclicTrace`]; the replay
    /// engine checks this up front instead of deadlocking.
    local_cycle: Option<EventId>,
}

impl DepGraph {
    /// Lower a reconstructed communication analysis into CSR form.
    ///
    /// `proc_lens[p]` is the event count of timeline `p`; `lmin` is
    /// queried once per edge (rank pairs come from the matches and the
    /// collective members) and never again.
    pub fn build(
        matching: &Matching,
        instances: &[CollectiveInstance],
        proc_lens: &[usize],
        lmin: &dyn MinLatency,
    ) -> DepGraph {
        let n = proc_lens.len();
        let mut base = Vec::with_capacity(n + 1);
        let mut total: u32 = 0;
        for &len in proc_lens {
            base.push(total);
            total = total
                .checked_add(u32::try_from(len).expect("timeline length fits u32"))
                .expect("event count fits u32");
        }
        base.push(total);
        let mut proc_of = Vec::with_capacity(total as usize);
        for (p, &len) in proc_lens.iter().enumerate() {
            proc_of.extend(std::iter::repeat_n(p as u32, len));
        }
        let gid = |id: EventId| base[id.p()] + id.idx;

        // Gather the edge triples in lowering order: message edges in
        // matching order, then collective edges in instance order with the
        // begins of each end in `deps_of_end` order. A consumer is either
        // a receive (one message edge) or a collective end (only
        // collective edges), so per-consumer insertion order is exactly
        // the AoS dispatch order.
        let insts: Vec<CollInst> = instances
            .iter()
            .map(|inst| {
                let root_pos = inst
                    .root
                    .and_then(|r| inst.members.iter().position(|m| m.rank == r));
                CollInst {
                    flavor: inst.op.flavor(),
                    root_pos,
                    members: inst.members.iter().map(|m| (m.rank, m.begin, m.end)).collect(),
                }
            })
            .collect();

        let mut triples: Vec<(EventId, EventId, i64)> = Vec::with_capacity(matching.messages.len());
        let mut local_cycle = None;
        let mut note_edge =
            |triples: &mut Vec<(EventId, EventId, i64)>, src: EventId, dst: EventId, lat: Dur| {
                if src.p() == dst.p() && src.idx >= dst.idx && local_cycle.is_none() {
                    local_cycle = Some(dst);
                }
                triples.push((src, dst, lat.as_ps()));
            };
        for m in &matching.messages {
            note_edge(&mut triples, m.send, m.recv, lmin.l_min(m.from, m.to));
        }
        for inst in &insts {
            for pos in 0..inst.members.len() {
                let (my_rank, _, end) = inst.members[pos];
                for j in inst.deps_of_end(pos) {
                    let (jrank, jbegin, _) = inst.members[j];
                    note_edge(&mut triples, jbegin, end, lmin.l_min(jrank, my_rank));
                }
            }
        }
        let n_edges = triples.len();
        assert!(
            u32::try_from(n_edges).is_ok(),
            "edge count fits u32"
        );

        // Counting sort into both CSR directions: degree count, prefix
        // sum, then a cursor fill that preserves triple order per slot.
        let total = total as usize;
        let mut in_offsets = vec![0u32; total + 1];
        let mut out_offsets = vec![0u32; total + 1];
        let mut cross_counts = vec![0u32; n * n];
        for &(src, dst, _) in &triples {
            in_offsets[gid(dst) as usize + 1] += 1;
            out_offsets[gid(src) as usize + 1] += 1;
            if src.p() != dst.p() {
                cross_counts[src.p() * n + dst.p()] += 1;
            }
        }
        for v in 0..total {
            in_offsets[v + 1] += in_offsets[v];
            out_offsets[v + 1] += out_offsets[v];
        }
        let mut in_edges = vec![0u32; n_edges];
        let mut in_lat_ps = vec![0i64; n_edges];
        let mut out_edges = vec![0u32; n_edges];
        let mut out_lat_ps = vec![0i64; n_edges];
        let mut in_cursor: Vec<u32> = in_offsets[..total].to_vec();
        let mut out_cursor: Vec<u32> = out_offsets[..total].to_vec();
        for &(src, dst, lat) in &triples {
            let (s, d) = (gid(src), gid(dst));
            let c = in_cursor[d as usize] as usize;
            in_edges[c] = s;
            in_lat_ps[c] = lat;
            in_cursor[d as usize] += 1;
            let c = out_cursor[s as usize] as usize;
            out_edges[c] = d;
            out_lat_ps[c] = lat;
            out_cursor[s as usize] += 1;
        }

        DepGraph {
            base,
            proc_of,
            in_offsets,
            in_edges,
            in_lat_ps,
            out_offsets,
            out_edges,
            out_lat_ps,
            cross_counts,
            local_cycle,
        }
    }

    /// [`DepGraph::build`] with timeline lengths read off the trace.
    pub fn from_trace(
        trace: &Trace,
        matching: &Matching,
        instances: &[CollectiveInstance],
        lmin: &dyn MinLatency,
    ) -> DepGraph {
        let lens: Vec<usize> = trace.procs.iter().map(|p| p.events.len()).collect();
        DepGraph::build(matching, instances, &lens, lmin)
    }

    /// Number of timelines.
    pub fn n_procs(&self) -> usize {
        self.base.len() - 1
    }

    /// Total events across all timelines.
    pub fn n_events(&self) -> usize {
        *self.base.last().expect("base non-empty") as usize
    }

    /// Total constraint edges.
    pub fn n_edges(&self) -> usize {
        self.in_edges.len()
    }

    /// Global event id of `(p, 0)` — gids of timeline `p` are
    /// `base(p) .. base(p) + len(p)` in program order.
    #[inline]
    pub(crate) fn base(&self, p: usize) -> u32 {
        self.base[p]
    }

    /// Timeline of event `gid`, in one load.
    #[inline]
    pub(crate) fn proc_of(&self, gid: u32) -> usize {
        self.proc_of[gid as usize] as usize
    }

    /// Map a gid back to its `(proc, index)` pair.
    #[inline]
    pub(crate) fn locate(&self, gid: u32) -> (usize, usize) {
        let p = self.proc_of(gid);
        (p, (gid - self.base[p]) as usize)
    }

    /// In-edges of `gid`: parallel slices of producer gids and edge
    /// latencies, in dependency-dispatch order.
    #[inline]
    pub(crate) fn in_of(&self, gid: u32) -> (&[u32], &[i64]) {
        let a = self.in_offsets[gid as usize] as usize;
        let b = self.in_offsets[gid as usize + 1] as usize;
        (&self.in_edges[a..b], &self.in_lat_ps[a..b])
    }

    /// Out-edges of `gid`: parallel slices of consumer gids and edge
    /// latencies.
    #[inline]
    pub(crate) fn out_of(&self, gid: u32) -> (&[u32], &[i64]) {
        let a = self.out_offsets[gid as usize] as usize;
        let b = self.out_offsets[gid as usize + 1] as usize;
        (&self.out_edges[a..b], &self.out_lat_ps[a..b])
    }

    /// Exact number of edges from a producer on timeline `q` to a consumer
    /// on timeline `p` (zero when `q == p`) — the replay ring capacity.
    #[inline]
    pub(crate) fn cross_count(&self, q: usize, p: usize) -> u32 {
        self.cross_counts[q * self.n_procs() + p]
    }

    /// First consumer of a same-timeline edge that does not respect
    /// program order, if any (a malformed trace the serial pass reports as
    /// [`super::ClcError::CyclicTrace`]).
    pub fn local_cycle(&self) -> Option<EventId> {
        self.local_cycle
    }

    /// Events whose corrected times bound `id` from below, with the
    /// minimum latency of each edge, in dependency-dispatch order.
    pub fn in_deps(&self, id: EventId) -> impl Iterator<Item = (EventId, Dur)> + '_ {
        let (srcs, lats) = self.in_of(self.base(id.p()) + id.idx);
        srcs.iter().zip(lats).map(|(&s, &lat)| {
            let (p, i) = self.locate(s);
            (EventId::new(p, i), Dur::from_ps(lat))
        })
    }

    /// Events bounded from below by `id`'s corrected time, with the
    /// minimum latency of each edge.
    pub fn out_deps(&self, id: EventId) -> impl Iterator<Item = (EventId, Dur)> + '_ {
        let (dsts, lats) = self.out_of(self.base(id.p()) + id.idx);
        dsts.iter().zip(lats).map(|(&d, &lat)| {
            let (p, i) = self.locate(d);
            (EventId::new(p, i), Dur::from_ps(lat))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::{deps_from_parts, fixtures};
    use super::*;
    use std::collections::HashSet;
    use tracefmt::{match_collectives, match_messages, EventKind, Rank, Tag, UniformLatency};

    const LMIN: UniformLatency = UniformLatency(Dur::from_ps(4_000_000));

    fn graph_of(trace: &Trace) -> DepGraph {
        let matching = match_messages(trace);
        let insts = match_collectives(trace).unwrap();
        DepGraph::from_trace(trace, &matching, &insts, &LMIN)
    }

    /// Expected edge set from the reference `Deps` maps: each recv's
    /// message edge plus each collective end's `deps_of_end` begins.
    fn reference_edges(trace: &Trace) -> HashSet<(EventId, EventId, i64)> {
        let matching = match_messages(trace);
        let insts = match_collectives(trace).unwrap();
        let deps = deps_from_parts(&matching, &insts);
        let ranks: Vec<_> = trace.procs.iter().map(|p| p.location.rank).collect();
        let mut edges = HashSet::new();
        for (&recv, &(send, from)) in &deps.send_of {
            let lat = LMIN.l_min(from, ranks[recv.p()]).as_ps();
            edges.insert((send, recv, lat));
        }
        for (&end, &(inst_idx, pos)) in &deps.end_info {
            let inst = &deps.insts[inst_idx];
            for j in inst.deps_of_end(pos) {
                let (jrank, jbegin, _) = inst.members[j];
                let lat = LMIN.l_min(jrank, ranks[end.p()]).as_ps();
                edges.insert((jbegin, end, lat));
            }
        }
        edges
    }

    #[test]
    fn csr_edges_match_deps_reference() {
        for (procs, rounds) in [(2, 5), (4, 12), (7, 21)] {
            let t = fixtures::mixed_trace(procs, rounds);
            let g = graph_of(&t);
            let want = reference_edges(&t);
            let mut got = HashSet::new();
            for (id, _) in t.iter_events() {
                for (src, lat) in g.in_deps(id) {
                    got.insert((src, id, lat.as_ps()));
                }
            }
            assert_eq!(got, want, "{procs}x{rounds} in-edge set");
            // The transpose carries exactly the same edges.
            let mut out_edges = HashSet::new();
            for (id, _) in t.iter_events() {
                for (dst, lat) in g.out_deps(id) {
                    out_edges.insert((id, dst, lat.as_ps()));
                }
            }
            assert_eq!(out_edges, want, "{procs}x{rounds} out-edge set");
            assert_eq!(g.n_edges(), want.len());
            assert!(g.local_cycle().is_none());
        }
    }

    #[test]
    fn gid_locate_round_trip() {
        let t = fixtures::mixed_trace(5, 9);
        let g = graph_of(&t);
        assert_eq!(g.n_events(), t.n_events());
        assert_eq!(g.n_procs(), t.n_procs());
        for (id, _) in t.iter_events() {
            let gid = g.base(id.p()) + id.idx;
            assert_eq!(g.locate(gid), (id.p(), id.i()));
        }
    }

    #[test]
    fn cross_counts_are_exact_ring_capacities() {
        let t = fixtures::mixed_trace(4, 10);
        let g = graph_of(&t);
        let n = g.n_procs();
        let mut want = vec![0u32; n * n];
        for (id, _) in t.iter_events() {
            for (src, _) in g.in_deps(id) {
                if src.p() != id.p() {
                    want[src.p() * n + id.p()] += 1;
                }
            }
        }
        for q in 0..n {
            for p in 0..n {
                assert_eq!(g.cross_count(q, p), want[q * n + p], "ring {q}->{p}");
            }
            assert_eq!(g.cross_count(q, q), 0);
        }
    }

    #[test]
    fn self_message_cycle_is_flagged() {
        // A timeline that receives its own later send: the recv (idx 0)
        // depends on the send (idx 1) — impossible program order.
        let mut t = Trace::for_ranks(1);
        t.procs[0].push(
            simclock::Time::from_us(5),
            EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 0 },
        );
        t.procs[0].push(
            simclock::Time::from_us(10),
            EventKind::Send { to: Rank(0), tag: Tag(0), bytes: 0 },
        );
        let g = graph_of(&t);
        assert_eq!(g.local_cycle(), Some(EventId::new(0, 0)));
    }

    #[test]
    fn empty_timelines_are_handled() {
        let mut t = Trace::for_ranks(3);
        // Only timelines 0 and 2 carry events; 1 stays empty.
        t.procs[0].push(
            simclock::Time::from_us(1),
            EventKind::Send { to: Rank(2), tag: Tag(0), bytes: 0 },
        );
        t.procs[2].push(
            simclock::Time::from_us(9),
            EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 0 },
        );
        let g = graph_of(&t);
        assert_eq!(g.n_events(), 2);
        assert_eq!(g.locate(1), (2, 0));
        let deps: Vec<_> = g.in_deps(EventId::new(2, 0)).collect();
        assert_eq!(deps, vec![(EventId::new(0, 0), Dur::from_ps(4_000_000))]);
    }
}
