//! Clock-domain-aware CLC.
//!
//! The paper's §VI names this as the CLC's other open limitation: "the
//! algorithm's inability to account for synchronized clocks within single
//! SMP nodes. … if the timestamp of a process is modified in the course of
//! applying the algorithm, timestamps of processes co-located on the same
//! SMP node that are close to the modified time may need to be modified as
//! well." Processes sharing a clock have *accurate relative* timestamps;
//! correcting one process without its clock-mates tears that intra-node
//! consistency apart.
//!
//! This module closes the gap: after the ordinary CLC pass, every jump is
//! broadcast to the jumping process's clock domain as a decaying shift
//! function (the same `(1−μ)` decay the forward amortization uses), so
//! domain members move *together*; a final μ=1 forward sweep restores any
//! constraint the broadcast disturbed.

use super::columnar::forward_pass_csr;
use super::graph::DepGraph;
use super::{controlled_logical_clock, ClcError, ClcParams, ClcReport};
use simclock::{Dur, Time};
use tracefmt::{match_collectives, match_messages, MinLatency, Trace, TraceColumns};

/// A decaying shift contribution: `Δ` at local time `t0`, fading at rate
/// `decay` per second of local time.
#[derive(Debug, Clone, Copy)]
struct ShiftPulse {
    t0: Time,
    delta: Dur,
}

/// Pulses of one domain, preprocessed for O(log n) queries.
///
/// All pulses decay at the same rate `d`, so
/// `max_j (Δ_j − d·(t − t0_j)) = max_j (Δ_j + d·t0_j) − d·t` over the
/// pulses with `t0_j ≤ t` — a prefix maximum over pulses sorted by `t0`.
struct DomainPulses {
    /// Sorted pulse start times.
    t0s: Vec<Time>,
    /// `prefix[i] = max_{j ≤ i} (Δ_j + d·t0_j)` in seconds.
    prefix: Vec<f64>,
    decay_per_s: f64,
}

impl DomainPulses {
    fn new(mut pulses: Vec<ShiftPulse>, decay_per_s: f64) -> Self {
        pulses.sort_by_key(|p| p.t0);
        let mut t0s = Vec::with_capacity(pulses.len());
        let mut prefix = Vec::with_capacity(pulses.len());
        let mut best = f64::NEG_INFINITY;
        for p in &pulses {
            best = best.max(p.delta.as_secs_f64() + decay_per_s * p.t0.as_secs_f64());
            t0s.push(p.t0);
            prefix.push(best);
        }
        DomainPulses {
            t0s,
            prefix,
            decay_per_s,
        }
    }

    fn is_empty(&self) -> bool {
        self.t0s.is_empty()
    }

    /// Combined shift at local time `t`.
    fn shift_at(&self, t: Time) -> Dur {
        // Index of the last pulse with t0 <= t.
        let idx = match self.t0s.binary_search(&t) {
            Ok(mut i) => {
                // Step to the last equal element.
                while i + 1 < self.t0s.len() && self.t0s[i + 1] == t {
                    i += 1;
                }
                i as isize
            }
            Err(i) => i as isize - 1,
        };
        if idx < 0 {
            return Dur::ZERO;
        }
        let val = self.prefix[idx as usize] - self.decay_per_s * t.as_secs_f64();
        Dur::from_secs_f64(val.max(0.0))
    }
}

/// CLC with clock-domain awareness.
///
/// `domain_of_proc[p]` assigns each process to a clock domain (e.g. its SMP
/// node when node clocks are synchronised, or its chip). Processes alone in
/// their domain behave exactly as under
/// [`controlled_logical_clock`].
pub fn controlled_logical_clock_with_domains(
    trace: &mut Trace,
    lmin: &dyn MinLatency,
    params: &ClcParams,
    domain_of_proc: &[usize],
) -> Result<ClcReport, ClcError> {
    if domain_of_proc.len() != trace.n_procs() {
        return Err(ClcError::BadParams(format!(
            "{} domain entries for {} procs",
            domain_of_proc.len(),
            trace.n_procs()
        )));
    }
    let originals: Vec<Vec<Time>> = trace
        .procs
        .iter()
        .map(|p| p.events.iter().map(|e| e.time).collect())
        .collect();

    // Phase 1: the ordinary CLC (forward + optional backward).
    let mut report = controlled_logical_clock(trace, lmin, params)?;

    // Phase 2: broadcast each jump to its domain as a decaying pulse.
    // The decay rate matches the forward amortization: a μ-amortized
    // timeline sheds (1−μ) of its shift per unit of local time.
    let decay_per_s = 1.0 - params.mu;
    let n_domains = domain_of_proc.iter().copied().max().map_or(0, |d| d + 1);
    // Pulses carry the originating process so a jump is never re-applied to
    // the process whose amortization already encodes it.
    let mut pulses: Vec<Vec<(usize, ShiftPulse)>> = vec![Vec::new(); n_domains];
    for j in &report.jumps {
        let p = j.event.p();
        // Pulse anchored at the *original* local time of the jumped event.
        pulses[domain_of_proc[p]].push((
            p,
            ShiftPulse {
                t0: originals[p][j.event.i()],
                delta: j.size,
            },
        ));
    }
    for (p, pt) in trace.procs.iter_mut().enumerate() {
        let dp = DomainPulses::new(
            pulses[domain_of_proc[p]]
                .iter()
                .filter(|&&(owner, _)| owner != p)
                .map(|&(_, pulse)| pulse)
                .collect(),
            decay_per_s,
        );
        if dp.is_empty() {
            continue;
        }
        for (i, e) in pt.events.iter_mut().enumerate() {
            let target = originals[p][i] + dp.shift_at(originals[p][i]);
            if target > e.time {
                e.time = target;
            }
        }
    }

    // Phase 3: the broadcast may have advanced send events past their
    // receives — a μ=1 forward sweep over the CSR graph restores every
    // constraint.
    let matching = match_messages(trace);
    let insts = match_collectives(trace).map_err(ClcError::BadCollectives)?;
    let graph = DepGraph::from_trace(trace, &matching, &insts, lmin);
    let mut cols = TraceColumns::gather(trace);
    let post = super::columnar::flatten_by_gid(&cols);
    let fixup = forward_pass_csr(&mut cols, &graph, &post, 1.0)?;
    cols.scatter_into(trace);
    report.jumps.extend(fixup.jumps);
    report.max_jump = report.max_jump.max(fixup.max_jump);
    report.events_moved = trace
        .procs
        .iter()
        .zip(&originals)
        .map(|(p, orig)| {
            p.events
                .iter()
                .zip(orig)
                .filter(|(e, &o)| e.time != o)
                .count()
        })
        .sum();
    report.events_total = trace.n_events();
    Ok(report)
}

/// Intra-domain misalignment diagnostic: the largest difference between the
/// shifts applied to events of different processes of one domain that lie
/// within `window` of each other (in original local time). Zero means the
/// domain moved perfectly rigidly; the plain CLC typically reports the full
/// jump size here.
pub fn domain_misalignment(
    before: &Trace,
    after: &Trace,
    domain_of_proc: &[usize],
    window: Dur,
) -> Dur {
    let mut worst = Dur::ZERO;
    let n = before.n_procs();
    for a in 0..n {
        for b in (a + 1)..n {
            if domain_of_proc[a] != domain_of_proc[b] {
                continue;
            }
            for (i, ea) in before.procs[a].events.iter().enumerate() {
                let shift_a = after.procs[a].events[i].time - ea.time;
                for (j, eb) in before.procs[b].events.iter().enumerate() {
                    if (ea.time - eb.time).abs() > window {
                        continue;
                    }
                    let shift_b = after.procs[b].events[j].time - eb.time;
                    worst = worst.max((shift_a - shift_b).abs());
                }
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracefmt::{EventKind, Rank, RegionId, Tag, UniformLatency};

    const LMIN: UniformLatency = UniformLatency(Dur::from_ps(4_000_000));

    fn us(n: i64) -> Time {
        Time::from_us(n)
    }

    /// Three procs: 0 and 1 share a clock domain (same skew), 2 is remote.
    /// Proc 2's send to proc 0 is violated, forcing a jump on proc 0.
    /// Procs 0 and 1 carry parallel local activity that should stay
    /// aligned.
    fn fixture() -> (Trace, Vec<usize>) {
        let mut t = Trace::for_ranks(3);
        // Parallel local activity on the clock-mates, every 10 µs.
        for k in 0..10i64 {
            t.procs[0].push(us(k * 10), EventKind::Enter { region: RegionId(0) });
            t.procs[1].push(us(k * 10), EventKind::Enter { region: RegionId(0) });
        }
        // The violated message lands mid-stream on proc 0 (local time 100).
        t.procs[2].push(us(250), EventKind::Send { to: Rank(0), tag: Tag(0), bytes: 0 });
        t.procs[0].push(us(100), EventKind::Recv { from: Rank(2), tag: Tag(0), bytes: 0 });
        // More aligned local activity afterwards.
        for k in 11..40i64 {
            t.procs[0].push(us(k * 10), EventKind::Enter { region: RegionId(0) });
            t.procs[1].push(us(k * 10), EventKind::Enter { region: RegionId(0) });
        }
        (t, vec![0, 0, 1])
    }

    #[test]
    fn plain_clc_tears_domains_apart_domain_clc_does_not() {
        let (base, domains) = fixture();
        let params = ClcParams { mu: 0.99, backward: false, ..Default::default() };

        let mut plain = base.clone();
        controlled_logical_clock(&mut plain, &LMIN, &params).unwrap();
        let plain_mis = domain_misalignment(&base, &plain, &domains, Dur::from_us(5));

        let mut aware = base.clone();
        controlled_logical_clock_with_domains(&mut aware, &LMIN, &params, &domains).unwrap();
        let aware_mis = domain_misalignment(&base, &aware, &domains, Dur::from_us(5));

        // The jump is 250+4-100 ≈ 154 µs; plain CLC shifts only proc 0.
        assert!(
            plain_mis > Dur::from_us(100),
            "plain CLC should misalign the domain: {plain_mis:?}"
        );
        assert!(
            aware_mis < plain_mis / 10,
            "domain-aware CLC should keep clock-mates together: {aware_mis:?} vs {plain_mis:?}"
        );
    }

    #[test]
    fn constraints_still_hold_after_domain_broadcast() {
        let (base, domains) = fixture();
        let mut t = base;
        controlled_logical_clock_with_domains(&mut t, &LMIN, &ClcParams::default(), &domains)
            .unwrap();
        let m = tracefmt::match_messages(&t);
        let rep = tracefmt::check_p2p(&t, &m, &LMIN);
        assert!(rep.violations.is_empty());
        assert!(t.is_locally_monotone());
    }

    #[test]
    fn singleton_domains_match_plain_clc() {
        let (base, _) = fixture();
        let domains = vec![0, 1, 2]; // everyone alone
        let params = ClcParams::default();
        let mut plain = base.clone();
        controlled_logical_clock(&mut plain, &LMIN, &params).unwrap();
        let mut aware = base.clone();
        controlled_logical_clock_with_domains(&mut aware, &LMIN, &params, &domains).unwrap();
        for p in 0..3 {
            assert_eq!(plain.procs[p].events, aware.procs[p].events);
        }
    }

    #[test]
    fn no_jumps_means_no_changes() {
        let mut t = Trace::for_ranks(2);
        t.procs[0].push(us(0), EventKind::Send { to: Rank(1), tag: Tag(0), bytes: 0 });
        t.procs[1].push(us(100), EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 0 });
        let before = t.clone();
        let rep = controlled_logical_clock_with_domains(
            &mut t,
            &LMIN,
            &ClcParams::default(),
            &[0, 0],
        )
        .unwrap();
        assert_eq!(rep.n_jumps(), 0);
        for p in 0..2 {
            assert_eq!(t.procs[p].events, before.procs[p].events);
        }
    }

    #[test]
    fn bad_domain_vector_rejected() {
        let (mut t, _) = fixture();
        let err = controlled_logical_clock_with_domains(
            &mut t,
            &LMIN,
            &ClcParams::default(),
            &[0, 0],
        )
        .unwrap_err();
        assert!(matches!(err, ClcError::BadParams(_)));
    }

    #[test]
    fn shift_pulse_decay() {
        // decay 0.01 per second = 10 µs per ms.
        let d = 0.01;
        let dp = DomainPulses::new(
            vec![ShiftPulse { t0: us(100), delta: Dur::from_us(50) }],
            d,
        );
        assert_eq!(dp.shift_at(us(50)), Dur::ZERO);
        assert_eq!(dp.shift_at(us(100)), Dur::from_us(50));
        // After 1 ms of local time, 10 µs has faded.
        assert_eq!(dp.shift_at(us(1100)), Dur::from_us(40));
        // Fully faded after 5 ms.
        assert_eq!(dp.shift_at(us(5100)), Dur::ZERO);
    }

    #[test]
    fn pulse_prefix_max_combines_overlapping_pulses() {
        let d = 0.01;
        let dp = DomainPulses::new(
            vec![
                ShiftPulse { t0: us(0), delta: Dur::from_us(30) },
                ShiftPulse { t0: us(1000), delta: Dur::from_us(15) },
            ],
            d,
        );
        // At t=1 ms: first pulse faded to 20 µs, second just fired at 15 µs
        // → max is 20.
        assert_eq!(dp.shift_at(us(1000)), Dur::from_us(20));
        // At t=2 ms: 10 vs 5 → 10.
        assert_eq!(dp.shift_at(us(2000)), Dur::from_us(10));
        // At t=3.5 ms: first fully faded (35 > 30/0.01·...), second at 0? →
        // first: 30-35=-5→0; second: 15-25=-10→0.
        assert_eq!(dp.shift_at(us(3500)), Dur::ZERO);
    }
}
