//! Replay-based parallel CLC (paper reference [31]).
//!
//! The forward pass is embarrassingly replayable: each process's corrected
//! timeline depends on other processes only through the corrected *send*
//! times of messages it receives and the corrected *begin* times of
//! collectives it participates in. The parallel implementation therefore
//! re-enacts the original communication: one worker thread per process,
//! crossbeam channels standing in for the original messages, and shared
//! gather cells standing in for the collectives. Every thread walks its own
//! event vector exactly like the serial pass — the outcome is bit-identical
//! (asserted by tests).
//!
//! Backward amortization then runs per process against an immutable
//! snapshot of the forward result; clamping slacks read from the snapshot
//! are conservative (other processes' receives can only move further
//! forward afterwards), so the postcondition survives.

use super::{extract_deps, ClcError, ClcParams, ClcReport, Deps, Jump};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use simclock::{Dur, Time};
use std::collections::HashMap;
use tracefmt::{EventId, EventKind, MinLatency, Rank, Trace};

/// One collective instance's gather cell: member begin times filled in as
/// threads reach them.
pub(crate) struct CollCell {
    state: Mutex<Vec<Option<Time>>>,
    cond: Condvar,
}

impl CollCell {
    pub(crate) fn new(n: usize) -> Self {
        CollCell {
            state: Mutex::new(vec![None; n]),
            cond: Condvar::new(),
        }
    }

    pub(crate) fn deposit(&self, pos: usize, t: Time) {
        let mut s = self.state.lock();
        s[pos] = Some(t);
        self.cond.notify_all();
    }

    /// Wait until every position in `needed` is filled; return the max of
    /// `filled[j] + lmin(rank_j, my_rank)`.
    pub(crate) fn await_bound(
        &self,
        needed: &[usize],
        ranks: &[Rank],
        my_rank: Rank,
        lmin: &(dyn MinLatency + Sync),
    ) -> Option<Time> {
        if needed.is_empty() {
            return None;
        }
        let mut s = self.state.lock();
        loop {
            if needed.iter().all(|&j| s[j].is_some()) {
                let mut bound: Option<Time> = None;
                for &j in needed {
                    let c = s[j].expect("just checked") + lmin.l_min(ranks[j], my_rank);
                    bound = Some(bound.map_or(c, |b: Time| b.max(c)));
                }
                return bound;
            }
            self.cond.wait(&mut s);
        }
    }
}

/// Parallel forward pass + (serial-equivalent) backward amortization.
///
/// Produces exactly the same corrected trace as
/// [`super::controlled_logical_clock`]; use it for large traces where the
/// per-process work dominates.
pub fn controlled_logical_clock_parallel(
    trace: &mut Trace,
    lmin: &(dyn MinLatency + Sync),
    params: &ClcParams,
) -> Result<ClcReport, ClcError> {
    let deps = extract_deps(trace)?;
    controlled_logical_clock_parallel_with_deps(trace, &deps, lmin, params)
}

/// [`controlled_logical_clock_parallel`] on a pre-extracted dependency
/// structure (the pipeline shares one analysis across every stage).
pub(crate) fn controlled_logical_clock_parallel_with_deps(
    trace: &mut Trace,
    deps: &Deps,
    lmin: &(dyn MinLatency + Sync),
    params: &ClcParams,
) -> Result<ClcReport, ClcError> {
    if !(params.mu > 0.0 && params.mu <= 1.0) {
        return Err(ClcError::BadParams(format!("mu = {}", params.mu)));
    }
    if params.backward && params.backward_window_factor <= 0.0 {
        return Err(ClcError::BadParams("non-positive backward window".into()));
    }
    let n = trace.n_procs();

    // Per-process inboxes for corrected send times, addressed by recv id.
    let mut senders: Vec<Sender<(EventId, Time)>> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<Receiver<(EventId, Time)>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(Some(r));
    }
    let cells: Vec<CollCell> = deps
        .insts
        .iter()
        .map(|i| CollCell::new(i.members.len()))
        .collect();
    let inst_ranks: Vec<Vec<Rank>> = deps
        .insts
        .iter()
        .map(|i| i.members.iter().map(|m| m.0).collect())
        .collect();

    let originals: Vec<Vec<Time>> = trace
        .procs
        .iter()
        .map(|p| p.events.iter().map(|e| e.time).collect())
        .collect();

    let mut all_jumps: Vec<Vec<Jump>> = Vec::new();
    let deps_ref = deps;
    let cells_ref = &cells;
    let inst_ranks_ref = &inst_ranks;
    let originals_ref = &originals;
    let senders_ref = &senders;

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (p, pt) in trace.procs.iter_mut().enumerate() {
            let inbox = receivers[p].take().expect("inbox taken twice");
            let mu = params.mu;
            handles.push(scope.spawn(move || {
                replay_process(
                    p,
                    pt,
                    &originals_ref[p],
                    inbox,
                    senders_ref,
                    deps_ref,
                    cells_ref,
                    inst_ranks_ref,
                    lmin,
                    mu,
                )
            }));
        }
        for h in handles {
            all_jumps.push(h.join().expect("replay worker panicked"));
        }
    });
    drop(senders);

    let mut jumps: Vec<Jump> = all_jumps.into_iter().flatten().collect();
    jumps.sort_by_key(|j| (j.event.proc, j.event.idx));
    let max_jump = jumps.iter().map(|j| j.size).max().unwrap_or(Dur::ZERO);

    if params.backward {
        parallel_backward(trace, deps, lmin, params, &jumps);
        // Safety-net μ=1 sweep, identical to the serial implementation.
        let post: Vec<Vec<Time>> = trace
            .procs
            .iter()
            .map(|p| p.events.iter().map(|e| e.time).collect())
            .collect();
        super::forward_pass(trace, &post, deps, lmin, 1.0)?;
    }

    let events_moved = trace
        .procs
        .iter()
        .zip(&originals)
        .map(|(p, orig)| {
            p.events
                .iter()
                .zip(orig)
                .filter(|(e, &o)| e.time != o)
                .count()
        })
        .sum();
    Ok(ClcReport {
        max_jump,
        events_moved,
        events_total: trace.n_events(),
        jumps,
    })
}

/// The per-process replay worker: identical arithmetic to the serial
/// forward pass, with remote times arriving over channels/cells.
#[allow(clippy::too_many_arguments)]
fn replay_process(
    p: usize,
    pt: &mut tracefmt::ProcessTrace,
    originals: &[Time],
    inbox: Receiver<(EventId, Time)>,
    senders: &[Sender<(EventId, Time)>],
    deps: &Deps,
    cells: &[CollCell],
    inst_ranks: &[Vec<Rank>],
    lmin: &(dyn MinLatency + Sync),
    mu: f64,
) -> Vec<Jump> {
    let my_rank = pt.location.rank;
    let mut jumps = Vec::new();
    let mut prev_orig = Time::MIN;
    let mut prev_corr = Time::MIN;
    let mut pending: HashMap<EventId, Time> = HashMap::new();

    #[allow(clippy::needless_range_loop)]
    for i in 0..pt.events.len() {
        let id = EventId::new(p, i);
        let orig = originals[i];
        let mut remote: Option<Time> = None;
        match pt.events[i].kind {
            EventKind::Recv { .. } => {
                if let Some(&(_, from)) = deps.send_of.get(&id) {
                    // Wait for this recv's corrected send time.
                    let send_time = loop {
                        if let Some(t) = pending.remove(&id) {
                            break t;
                        }
                        let (rid, t) = inbox.recv().expect("sender hung up early");
                        pending.insert(rid, t);
                    };
                    remote = Some(send_time + lmin.l_min(from, my_rank));
                }
            }
            EventKind::CollEnd { .. } => {
                if let Some(&(inst_idx, pos)) = deps.end_info.get(&id) {
                    let needed: Vec<usize> = deps.insts[inst_idx].deps_of_end(pos).collect();
                    remote = cells[inst_idx].await_bound(
                        &needed,
                        &inst_ranks[inst_idx],
                        my_rank,
                        lmin,
                    );
                }
            }
            _ => {}
        }

        let candidate = if i == 0 {
            orig
        } else {
            let gap = (orig - prev_orig).max(Dur::ZERO);
            orig.max(prev_corr + gap.scale(mu))
        };
        let corrected = match remote {
            Some(r) if r > candidate => {
                jumps.push(Jump { event: id, size: r - candidate });
                r
            }
            _ => candidate,
        };
        pt.events[i].time = corrected;
        prev_orig = orig;
        prev_corr = corrected;

        // Publish the corrected time to whoever depends on it.
        if let Some(&(recv, _)) = deps.recv_of.get(&id) {
            senders[recv.p()]
                .send((recv, corrected))
                .expect("receiver hung up early");
        }
        if let Some(&(inst_idx, pos)) = deps.begin_info.get(&id) {
            cells[inst_idx].deposit(pos, corrected);
        }
    }
    jumps
}

/// Backward amortization per process against a snapshot (see module docs
/// for why snapshot slacks are conservative). Shares the per-process
/// kernel with the serial implementation, so results are identical.
fn parallel_backward(
    trace: &mut Trace,
    deps: &Deps,
    lmin: &(dyn MinLatency + Sync),
    params: &ClcParams,
    jumps: &[Jump],
) {
    let snapshot: Vec<Vec<Time>> = trace
        .procs
        .iter()
        .map(|p| p.events.iter().map(|e| e.time).collect())
        .collect();
    let snapshot_ref = &snapshot;
    let mut per_proc: Vec<Vec<Jump>> = vec![Vec::new(); trace.n_procs()];
    for j in jumps {
        per_proc[j.event.p()].push(*j);
    }
    for list in per_proc.iter_mut() {
        list.sort_by_key(|j| j.event.i());
    }

    std::thread::scope(|scope| {
        for (p, pt) in trace.procs.iter_mut().enumerate() {
            let my_jumps = std::mem::take(&mut per_proc[p]);
            if my_jumps.is_empty() {
                continue;
            }
            scope.spawn(move || {
                super::backward_pass_proc(p, pt, &my_jumps, deps, lmin, params, snapshot_ref);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clc::{controlled_logical_clock, ClcParams};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tracefmt::{check_collectives, check_p2p, match_collectives, match_messages, CollOp,
        CommId, Tag, UniformLatency};

    const LMIN: UniformLatency = UniformLatency(Dur::from_ps(4_000_000));

    /// Random ring-communication trace with injected timestamp skew.
    fn random_trace(seed: u64, procs: usize, rounds: usize) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Trace::for_ranks(procs);
        // Per-proc skew makes violations likely.
        let skews: Vec<i64> = (0..procs).map(|_| rng.gen_range(-80..80)).collect();
        let mut now = vec![0i64; procs];
        for round in 0..rounds {
            for p in 0..procs {
                let next = (p + 1) % procs;
                now[p] += rng.gen_range(5i64..50);
                t.procs[p].push(
                    Time::from_us(now[p] + skews[p]),
                    EventKind::Send { to: Rank(next as u32), tag: Tag(round as u32), bytes: 8 },
                );
            }
            for p in 0..procs {
                let prev = (p + procs - 1) % procs;
                now[p] += rng.gen_range(5i64..50);
                t.procs[p].push(
                    Time::from_us(now[p] + skews[p]),
                    EventKind::Recv { from: Rank(prev as u32), tag: Tag(round as u32), bytes: 8 },
                );
            }
            if round % 3 == 0 {
                let base = *now.iter().max().unwrap();
                for p in 0..procs {
                    now[p] = base + rng.gen_range(0i64..10);
                    t.procs[p].push(
                        Time::from_us(now[p] + skews[p]),
                        EventKind::CollBegin {
                            op: CollOp::Allreduce,
                            comm: CommId::WORLD,
                            root: None,
                            bytes: 8,
                        },
                    );
                    now[p] += rng.gen_range(10i64..25);
                    t.procs[p].push(
                        Time::from_us(now[p] + skews[p]),
                        EventKind::CollEnd {
                            op: CollOp::Allreduce,
                            comm: CommId::WORLD,
                            root: None,
                            bytes: 8,
                        },
                    );
                }
            }
        }
        t
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        for seed in [1u64, 7, 42] {
            let base = random_trace(seed, 6, 20);
            let params = ClcParams::default();
            let mut serial = base.clone();
            let mut par = base.clone();
            let rs = controlled_logical_clock(&mut serial, &LMIN, &params).unwrap();
            let rp = controlled_logical_clock_parallel(&mut par, &LMIN, &params).unwrap();
            assert_eq!(rs.n_jumps(), rp.n_jumps(), "jump count differs (seed {seed})");
            for p in 0..base.n_procs() {
                assert_eq!(
                    serial.procs[p].events, par.procs[p].events,
                    "corrected trace differs on proc {p} (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn parallel_restores_clock_condition() {
        let mut t = random_trace(99, 8, 30);
        controlled_logical_clock_parallel(&mut t, &LMIN, &ClcParams::default()).unwrap();
        let m = match_messages(&t);
        let r = check_p2p(&t, &m, &LMIN);
        assert!(r.violations.is_empty(), "{} p2p violations", r.violations.len());
        let insts = match_collectives(&t).unwrap();
        let c = check_collectives(&t, &insts, &LMIN);
        assert_eq!(c.logical_violated, 0);
        assert!(t.is_locally_monotone());
    }

    #[test]
    fn forward_only_variant_matches_too() {
        let base = random_trace(5, 4, 15);
        let params = ClcParams { backward: false, ..ClcParams::default() };
        let mut serial = base.clone();
        let mut par = base.clone();
        controlled_logical_clock(&mut serial, &LMIN, &params).unwrap();
        controlled_logical_clock_parallel(&mut par, &LMIN, &params).unwrap();
        for p in 0..base.n_procs() {
            assert_eq!(serial.procs[p].events, par.procs[p].events);
        }
    }

    #[test]
    fn single_process_trace_works() {
        let mut t = Trace::for_ranks(1);
        for i in 0..10 {
            t.procs[0].push(Time::from_us(i * 10), EventKind::Enter { region: tracefmt::RegionId(0) });
        }
        let rep = controlled_logical_clock_parallel(&mut t, &LMIN, &ClcParams::default()).unwrap();
        assert_eq!(rep.n_jumps(), 0);
    }
}
