//! Replay-based parallel CLC (paper reference [31]).
//!
//! The forward pass is embarrassingly replayable: each process's corrected
//! timeline depends on other processes only through the corrected *send*
//! times of messages it receives and the corrected *begin* times of
//! collectives it participates in. The parallel implementation therefore
//! re-enacts the original communication — but where the original used one
//! channel message per event, this one lowers the whole dependency
//! structure into the flat CSR [`DepGraph`] first and streams corrected
//! timestamps between workers in batched lock-free rings
//! ([`super::replay`]), one per timeline pair. Every worker walks its own
//! timestamp column exactly like the serial pass; the outcome is
//! bit-identical (asserted by tests and the differential matrices).
//!
//! Backward amortization then runs per process against an immutable
//! snapshot of the forward result; clamping slacks read from the snapshot
//! are conservative (other processes' receives can only move further
//! forward afterwards), so the postcondition survives.

use super::graph::DepGraph;
use super::replay::controlled_logical_clock_replay_csr;
use super::{ClcError, ClcParams, ClcReport};
use std::time::Duration;
use tracefmt::{match_collectives, match_messages, MinLatency, Trace, TraceColumns};

/// Parallel forward pass + (serial-equivalent) backward amortization.
///
/// Produces exactly the same corrected trace as
/// [`super::controlled_logical_clock`]; use it for large traces where the
/// per-process work dominates.
pub fn controlled_logical_clock_parallel(
    trace: &mut Trace,
    lmin: &(dyn MinLatency + Sync),
    params: &ClcParams,
) -> Result<ClcReport, ClcError> {
    let matching = match_messages(trace);
    let insts = match_collectives(trace).map_err(ClcError::BadCollectives)?;
    let graph = DepGraph::from_trace(trace, &matching, &insts, lmin);
    let (report, _wait) = controlled_logical_clock_parallel_with_graph(trace, &graph, params)?;
    Ok(report)
}

/// [`controlled_logical_clock_parallel`] on a pre-lowered CSR graph (the
/// pipeline shares one analysis and one lowering across every stage).
/// Also returns the summed worker stall time, which the pipeline reports
/// as the CLC stage's merge-wait.
pub(crate) fn controlled_logical_clock_parallel_with_graph(
    trace: &mut Trace,
    graph: &DepGraph,
    params: &ClcParams,
) -> Result<(ClcReport, Duration), ClcError> {
    let mut cols = TraceColumns::gather(trace);
    // On a single hardware thread the replay engine's per-timeline workers
    // only time-slice each other and the ring handoffs become pure
    // overhead (observed 2x slower than serial). The serial CSR kernel is
    // bit-identical, so fall back to it outright.
    let single_cpu = std::thread::available_parallelism().is_ok_and(|n| n.get() == 1);
    if single_cpu {
        let report = super::columnar::controlled_logical_clock_columnar_csr(
            &mut cols, graph, params,
        )?;
        cols.scatter_into(trace);
        return Ok((report, Duration::ZERO));
    }
    let (report, wait) = controlled_logical_clock_replay_csr(&mut cols, graph, params)?;
    cols.scatter_into(trace);
    Ok((report, wait))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clc::{controlled_logical_clock, ClcParams};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use simclock::{Dur, Time};
    use tracefmt::{check_collectives, check_p2p, match_collectives, match_messages, CollOp,
        CommId, EventKind, Rank, Tag, UniformLatency};

    const LMIN: UniformLatency = UniformLatency(Dur::from_ps(4_000_000));

    /// Random ring-communication trace with injected timestamp skew.
    fn random_trace(seed: u64, procs: usize, rounds: usize) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Trace::for_ranks(procs);
        // Per-proc skew makes violations likely.
        let skews: Vec<i64> = (0..procs).map(|_| rng.gen_range(-80..80)).collect();
        let mut now = vec![0i64; procs];
        for round in 0..rounds {
            for p in 0..procs {
                let next = (p + 1) % procs;
                now[p] += rng.gen_range(5i64..50);
                t.procs[p].push(
                    Time::from_us(now[p] + skews[p]),
                    EventKind::Send { to: Rank(next as u32), tag: Tag(round as u32), bytes: 8 },
                );
            }
            for p in 0..procs {
                let prev = (p + procs - 1) % procs;
                now[p] += rng.gen_range(5i64..50);
                t.procs[p].push(
                    Time::from_us(now[p] + skews[p]),
                    EventKind::Recv { from: Rank(prev as u32), tag: Tag(round as u32), bytes: 8 },
                );
            }
            if round % 3 == 0 {
                let base = *now.iter().max().unwrap();
                for p in 0..procs {
                    now[p] = base + rng.gen_range(0i64..10);
                    t.procs[p].push(
                        Time::from_us(now[p] + skews[p]),
                        EventKind::CollBegin {
                            op: CollOp::Allreduce,
                            comm: CommId::WORLD,
                            root: None,
                            bytes: 8,
                        },
                    );
                    now[p] += rng.gen_range(10i64..25);
                    t.procs[p].push(
                        Time::from_us(now[p] + skews[p]),
                        EventKind::CollEnd {
                            op: CollOp::Allreduce,
                            comm: CommId::WORLD,
                            root: None,
                            bytes: 8,
                        },
                    );
                }
            }
        }
        t
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        for seed in [1u64, 7, 42] {
            let base = random_trace(seed, 6, 20);
            let params = ClcParams::default();
            let mut serial = base.clone();
            let mut par = base.clone();
            let rs = controlled_logical_clock(&mut serial, &LMIN, &params).unwrap();
            let rp = controlled_logical_clock_parallel(&mut par, &LMIN, &params).unwrap();
            assert_eq!(rs.n_jumps(), rp.n_jumps(), "jump count differs (seed {seed})");
            for p in 0..base.n_procs() {
                assert_eq!(
                    serial.procs[p].events, par.procs[p].events,
                    "corrected trace differs on proc {p} (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn parallel_restores_clock_condition() {
        let mut t = random_trace(99, 8, 30);
        controlled_logical_clock_parallel(&mut t, &LMIN, &ClcParams::default()).unwrap();
        let m = match_messages(&t);
        let r = check_p2p(&t, &m, &LMIN);
        assert!(r.violations.is_empty(), "{} p2p violations", r.violations.len());
        let insts = match_collectives(&t).unwrap();
        let c = check_collectives(&t, &insts, &LMIN);
        assert_eq!(c.logical_violated, 0);
        assert!(t.is_locally_monotone());
    }

    #[test]
    fn forward_only_variant_matches_too() {
        let base = random_trace(5, 4, 15);
        let params = ClcParams { backward: false, ..ClcParams::default() };
        let mut serial = base.clone();
        let mut par = base.clone();
        controlled_logical_clock(&mut serial, &LMIN, &params).unwrap();
        controlled_logical_clock_parallel(&mut par, &LMIN, &params).unwrap();
        for p in 0..base.n_procs() {
            assert_eq!(serial.procs[p].events, par.procs[p].events);
        }
    }

    #[test]
    fn single_process_trace_works() {
        let mut t = Trace::for_ranks(1);
        for i in 0..10 {
            t.procs[0].push(Time::from_us(i * 10), EventKind::Enter { region: tracefmt::RegionId(0) });
        }
        let rep = controlled_logical_clock_parallel(&mut t, &LMIN, &ClcParams::default()).unwrap();
        assert_eq!(rep.n_jumps(), 0);
    }
}
