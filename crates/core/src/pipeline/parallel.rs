//! Sharded execution of the pipeline's per-rank stages.
//!
//! The unit of work is a *shard*: a contiguous chunk of one process
//! timeline (for timestamp mapping) or of the matched-message / collective
//! lists (for the censuses). Shards are striped over a pool of scoped
//! worker threads; results flow back over a crossbeam channel tagged with
//! their shard index, and the merge side reassembles them **in shard
//! order** — which is exactly sequential order, so the merged outcome is
//! bit-identical to the sequential run. The only synchronisation is the
//! result channel itself; workers never contend on a lock.

use super::{PresyncMap, StageReport, TraceAnalysis};
use crate::interp::TimestampMap;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use tracefmt::{
    assemble_collective_instances, check_collectives_at, check_p2p_messages_at,
    collect_collective_calls, collect_sends, consume_recvs, CensusPlan, CollCall, CollReport,
    CollectiveInstance, CommId, EventRecord, LatencyTable, Matching, MessageMatch,
    P2pReport, PendingSends, Rank, TimeSource, Trace, TraceColumns,
};

/// Worker-pool configuration for the parallel pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads (0 or 1 = one worker; results are identical for any
    /// value, only wall-clock changes).
    pub workers: usize,
    /// Events (or census items) per shard. Smaller shards balance load
    /// better; larger shards amortise dispatch. The default of 8192 keeps
    /// shards around L2-cache size for typical event records.
    pub shard_size: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            workers: std::thread::available_parallelism().map_or(4, usize::from),
            shard_size: 8192,
        }
    }
}

impl ParallelConfig {
    /// Default shard size with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        ParallelConfig {
            workers,
            ..ParallelConfig::default()
        }
    }

    /// The worker count actually used (at least one).
    pub fn effective_workers(&self) -> usize {
        self.workers.max(1)
    }

    fn effective_shard_size(&self) -> usize {
        self.shard_size.max(1)
    }
}

/// Outcome of one sharded run.
struct ShardRun<R> {
    /// Per-shard results, in shard order.
    results: Vec<R>,
    /// Number of shards executed.
    shards: usize,
    /// Time the merge side spent blocked on the result channel.
    merge_wait: Duration,
}

/// Stripe `jobs` over `workers` scoped threads and collect results back in
/// shard order. `work` must be a pure function of its job — the pool
/// guarantees nothing about execution order across workers.
fn run_sharded<J, R>(
    jobs: Vec<J>,
    workers: usize,
    work: impl Fn(J) -> R + Sync,
) -> ShardRun<R>
where
    J: Send,
    R: Send,
{
    let n_jobs = jobs.len();
    if n_jobs == 0 {
        return ShardRun {
            results: Vec::new(),
            shards: 0,
            merge_wait: Duration::ZERO,
        };
    }
    let workers = workers.max(1).min(n_jobs);

    let (tx, rx) = crossbeam::channel::unbounded::<(usize, R)>();
    std::thread::scope(|s| {
        let work = &work;
        // Striped assignment: worker w takes jobs w, w+workers, ... Shards
        // are uniform by construction, so striping balances the pool
        // without a shared queue.
        let mut stripes: Vec<Vec<(usize, J)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            stripes[i % workers].push((i, job));
        }
        for stripe in stripes {
            let tx = tx.clone();
            s.spawn(move || {
                for (i, job) in stripe {
                    // A send fails only if the merge side is gone, which
                    // cannot happen inside this scope.
                    let _ = tx.send((i, work(job)));
                }
            });
        }
        drop(tx);

        // Merge: reassemble results in shard index order, timing how long
        // this side blocks on the channel.
        let mut slots: Vec<Option<R>> = (0..n_jobs).map(|_| None).collect();
        let mut merge_wait = Duration::ZERO;
        for _ in 0..n_jobs {
            let t0 = Instant::now();
            let (i, r) = rx.recv().expect("worker pool alive");
            merge_wait += t0.elapsed();
            slots[i] = Some(r);
        }
        ShardRun {
            results: slots
                .into_iter()
                .map(|r| r.expect("every shard reported"))
                .collect(),
            shards: n_jobs,
            merge_wait,
        }
    })
}

/// Apply the per-process presync maps to `trace`, sharded by timeline
/// chunks. Returns `(events mapped, shards, merge wait)`; the event count
/// is summed from per-shard results, so it doubles as the shard-accounting
/// check.
pub(super) fn apply_maps_sharded(
    trace: &mut Trace,
    maps: &[PresyncMap],
    cfg: &ParallelConfig,
) -> (usize, usize, Duration) {
    let shard_size = cfg.effective_shard_size();
    let mut jobs: Vec<(usize, &mut [EventRecord])> = Vec::new();
    for (p, pt) in trace.procs.iter_mut().enumerate() {
        for chunk in pt.events.chunks_mut(shard_size) {
            jobs.push((p, chunk));
        }
    }
    let run = run_sharded(jobs, cfg.effective_workers(), |(p, chunk): (usize, &mut [EventRecord])| {
        let map = &maps[p];
        for e in chunk.iter_mut() {
            e.time = map.map(e.time);
        }
        chunk.len()
    });
    (run.results.iter().sum(), run.shards, run.merge_wait)
}

/// Columnar counterpart of [`apply_maps_sharded`]: shard the dense
/// picosecond columns into `&mut [i64]` chunks and map each in place.
/// Identical sharding geometry (per-timeline chunks of `shard_size`
/// events), so the shard accounting matches the AoS path exactly.
pub(super) fn apply_maps_sharded_cols(
    cols: &mut TraceColumns,
    maps: &[PresyncMap],
    cfg: &ParallelConfig,
) -> (usize, usize, Duration) {
    let shard_size = cfg.effective_shard_size();
    let mut jobs: Vec<(usize, &mut [i64])> = Vec::new();
    for (p, col) in cols.iter_mut_slices() {
        for chunk in col.chunks_mut(shard_size) {
            jobs.push((p, chunk));
        }
    }
    let run = run_sharded(jobs, cfg.effective_workers(), |(p, chunk): (usize, &mut [i64])| {
        maps[p].map_col(chunk);
        chunk.len()
    });
    (run.results.iter().sum(), run.shards, run.merge_wait)
}

/// Reconstruct the communication structure of `trace` with the per-rank
/// scans sharded over the worker pool. Three rounds, each one
/// [`run_sharded`] call over independent jobs:
///
/// 1. **scan** — per timeline: collect its sends (keyed for FIFO
///    matching) and its collective calls per communicator;
/// 2. **match** — per *consumer* timeline: walk its receives against
///    exactly the pending-send queues addressed to its rank. Queue
///    partitions are disjoint because ranks are unique (a trace with
///    duplicate ranks falls back to the sequential consume loop), so each
///    job reproduces the sequential FIFO decisions verbatim and the
///    per-timeline outputs concatenate in timeline order to the
///    sequential [`Matching`];
/// 3. **assemble** — per communicator: zip the per-timeline call lists
///    into [`CollectiveInstance`]s, in sorted communicator order.
///
/// Returns the analysis plus `(shards, merge wait)` summed over the
/// rounds. Output and error strings are identical to
/// [`TraceAnalysis::capture`] — merges walk results in job order, so the
/// first error in timeline (round 1) or communicator (round 3) order wins
/// exactly as sequentially.
pub(super) fn capture_analysis_sharded(
    trace: &Trace,
    cfg: &ParallelConfig,
) -> Result<(TraceAnalysis, usize, Duration), String> {
    let n = trace.n_procs();
    let workers = cfg.effective_workers();
    let mut shards = 0usize;
    let mut wait = Duration::ZERO;

    // Round 1: independent per-timeline scans.
    let run1 = run_sharded((0..n).collect(), workers, |p| {
        (collect_sends(trace, p), collect_collective_calls(trace, p))
    });
    shards += run1.shards;
    wait += run1.merge_wait;

    let mut pending: PendingSends = HashMap::new();
    let mut per_proc_colls = Vec::with_capacity(n);
    for (sends, colls) in run1.results {
        for (key, id, bytes) in sends {
            pending.entry(key).or_default().push_back((id, bytes));
        }
        per_proc_colls.push(colls?);
    }

    // Round 2: receives, partitioned by consumer timeline.
    let mut matching = Matching::default();
    let mut proc_of_rank: HashMap<Rank, usize> = HashMap::new();
    let mut dup = false;
    for (p, pt) in trace.procs.iter().enumerate() {
        if proc_of_rank.insert(pt.location.rank, p).is_some() {
            dup = true;
        }
    }
    if dup {
        // Duplicate ranks would make consumer partitions overlap; the
        // sequential consume loop handles the malformed trace verbatim.
        for p in 0..n {
            consume_recvs(trace, p, &mut pending, &mut matching);
        }
        shards += 1;
    } else {
        let mut parts: Vec<PendingSends> = vec![HashMap::new(); n];
        let mut orphans: PendingSends = HashMap::new();
        for (key, q) in pending.drain() {
            match proc_of_rank.get(&key.1) {
                Some(&p) => {
                    parts[p].insert(key, q);
                }
                // No timeline carries the destination rank: nothing can
                // consume these sends, they go straight to unmatched.
                None => {
                    orphans.insert(key, q);
                }
            }
        }
        let jobs: Vec<(usize, PendingSends)> = parts.into_iter().enumerate().collect();
        let run2 = run_sharded(jobs, workers, |(p, mut part)| {
            let mut out = Matching::default();
            consume_recvs(trace, p, &mut part, &mut out);
            (out, part)
        });
        shards += run2.shards;
        wait += run2.merge_wait;
        for (part, leftover) in run2.results {
            matching.messages.extend(part.messages);
            matching.unmatched_recvs.extend(part.unmatched_recvs);
            pending.extend(leftover);
        }
        pending.extend(orphans);
    }
    for q in pending.values() {
        matching.unmatched_sends.extend(q.iter().map(|&(id, _)| id));
    }
    matching.unmatched_sends.sort();

    // Round 3: independent per-communicator assembly.
    let mut per_comm: HashMap<CommId, Vec<Vec<CollCall>>> = HashMap::new();
    for (p, colls) in per_proc_colls.into_iter().enumerate() {
        for (comm, list) in colls {
            per_comm.entry(comm).or_insert_with(|| vec![Vec::new(); n])[p] = list;
        }
    }
    let mut comms: Vec<CommId> = per_comm.keys().copied().collect();
    comms.sort();
    let per_comm_ref = &per_comm;
    let run3 = run_sharded(comms, workers, |comm| {
        assemble_collective_instances(comm, &per_comm_ref[&comm])
    });
    shards += run3.shards;
    wait += run3.merge_wait;
    let mut instances = Vec::new();
    for r in run3.results {
        instances.extend(r?);
    }

    Ok((TraceAnalysis { matching, instances }, shards, wait))
}

/// One census work unit: a chunk of either the message list or the
/// collective-instance list.
enum CensusJob<'a> {
    P2p(&'a [MessageMatch]),
    Coll(&'a [CollectiveInstance]),
}

enum CensusOut {
    P2p(P2pReport),
    Coll(CollReport),
}

/// Run both violation censuses sharded. Returns the merged stage report
/// plus `(items, shards, merge wait)` instrumentation. Shards are merged
/// in list order, so the report is identical to the sequential census.
/// Generic over the timestamp layout (trace records or gathered columns).
pub(super) fn census_sharded<S: TimeSource + Sync>(
    times: &S,
    analysis: &TraceAnalysis,
    table: &LatencyTable,
    cfg: &ParallelConfig,
) -> (StageReport, usize, usize, Duration) {
    let shard_size = cfg.effective_shard_size();
    let mut jobs: Vec<CensusJob> = Vec::new();
    for chunk in analysis.matching.messages.chunks(shard_size) {
        jobs.push(CensusJob::P2p(chunk));
    }
    for chunk in analysis.instances.chunks(shard_size) {
        jobs.push(CensusJob::Coll(chunk));
    }

    let run = run_sharded(jobs, cfg.effective_workers(), |job| match job {
        CensusJob::P2p(chunk) => CensusOut::P2p(check_p2p_messages_at(times, chunk, table)),
        CensusJob::Coll(chunk) => CensusOut::Coll(check_collectives_at(times, chunk, table)),
    });

    let mut p2p = P2pReport::default();
    let mut coll = CollReport::default();
    let mut items = 0usize;
    for out in run.results {
        match out {
            CensusOut::P2p(r) => {
                items += r.total;
                p2p.merge(r);
            }
            CensusOut::Coll(r) => {
                items += r.instances;
                coll.merge(r);
            }
        }
    }
    (StageReport { p2p, coll }, items, run.shards, run.merge_wait)
}

/// [`census_sharded`] over a frozen [`CensusPlan`]: shard by index range
/// into the plan's message and instance lists instead of re-slicing the
/// analysis, and run the plan's chunked branchless kernels per range.
/// Identical sharding geometry and shard-order merge, so the report equals
/// the sequential planned census bit for bit.
pub(super) fn census_sharded_planned(
    plan: &CensusPlan,
    flat: &[i64],
    cfg: &ParallelConfig,
) -> (StageReport, usize, usize, Duration) {
    let shard_size = cfg.effective_shard_size();
    enum RangeJob {
        P2p(usize, usize),
        Coll(usize, usize),
    }
    let mut jobs: Vec<RangeJob> = Vec::new();
    let mut lo = 0usize;
    while lo < plan.n_messages() {
        let hi = (lo + shard_size).min(plan.n_messages());
        jobs.push(RangeJob::P2p(lo, hi));
        lo = hi;
    }
    let mut lo = 0usize;
    while lo < plan.n_instances() {
        let hi = (lo + shard_size).min(plan.n_instances());
        jobs.push(RangeJob::Coll(lo, hi));
        lo = hi;
    }

    let run = run_sharded(jobs, cfg.effective_workers(), |job| match job {
        RangeJob::P2p(lo, hi) => CensusOut::P2p(plan.p2p_census_range(flat, lo, hi)),
        RangeJob::Coll(lo, hi) => CensusOut::Coll(plan.collective_census_range(flat, lo, hi)),
    });

    let mut p2p = P2pReport::default();
    let mut coll = CollReport::default();
    let mut items = 0usize;
    for out in run.results {
        match out {
            CensusOut::P2p(r) => {
                items += r.total;
                p2p.merge(r);
            }
            CensusOut::Coll(r) => {
                items += r.instances;
                coll.merge(r);
            }
        }
    }
    (StageReport { p2p, coll }, items, run.shards, run.merge_wait)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_sharded_preserves_order() {
        for workers in [1, 2, 7, 32] {
            let jobs: Vec<usize> = (0..100).collect();
            let run = run_sharded(jobs, workers, |j| j * 2);
            assert_eq!(run.shards, 100);
            assert_eq!(run.results, (0..100).map(|j| j * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_sharded_empty_jobs() {
        let run = run_sharded(Vec::<usize>::new(), 4, |j| j);
        assert_eq!(run.shards, 0);
        assert!(run.results.is_empty());
        assert_eq!(run.merge_wait, Duration::ZERO);
    }

    #[test]
    fn worker_count_is_clamped_to_jobs() {
        // More workers than jobs must not panic or lose results.
        let run = run_sharded(vec![10usize, 20], 16, |j| j + 1);
        assert_eq!(run.results, vec![11, 21]);
    }

    #[test]
    fn parallel_config_defaults() {
        let cfg = ParallelConfig::default();
        assert!(cfg.workers >= 1);
        assert_eq!(cfg.shard_size, 8192);
        assert_eq!(ParallelConfig { workers: 0, shard_size: 0 }.effective_workers(), 1);
        assert_eq!(ParallelConfig { workers: 0, shard_size: 0 }.effective_shard_size(), 1);
        assert_eq!(ParallelConfig::with_workers(3).workers, 3);
    }
}
