//! Incremental windowed CLC: stream corrected timestamps out with bounded
//! resident column memory.
//!
//! The batch pipeline gathers every timeline's full `i64` timestamp lane
//! before the CLC runs, so its resident set is O(trace). This engine
//! processes the stream in *epochs* over segment-backed lanes instead:
//!
//! * the input chunks are indexed once ([`index_columnar_chunks`]) — block
//!   offsets, per-timeline lengths — and re-read on demand through a
//!   zero-copy [`ChunkStore`]; the trace is never materialized;
//! * the forward pass advances each timeline at most `window_events` per
//!   round-robin epoch, ingesting blocks lazily and appending corrected
//!   times to fixed-width lane segments;
//! * a *carry frontier* of per-segment read counters tracks which corrected
//!   values remote consumers still need; a segment is retired (freed) the
//!   moment its frontier clears, so steady-state residency is
//!   O(window + dependency skew), not O(trace);
//! * with backward amortization enabled, a first sweep discovers every
//!   jump's backward-walk window so a second sweep can tell when a prefix
//!   of a timeline is *final* — no remaining walk can reach below the
//!   safety frontier `b` — and run the second forward pass and emission
//!   behind it;
//! * finalized blocks are re-encoded by [`FrameWriter`] with their payload
//!   bytes passed through verbatim and streamed out as self-contained
//!   chunks whose concatenation is a well-formed `DTC2`/`DTC3` stream.
//!
//! # Bit-identity with the batch engine
//!
//! The forward, backward and re-forward kernels are statement-level copies
//! of [`crate::clc::columnar`]'s; only the schedule differs (bounded
//! per-epoch bursts instead of run-to-block). The forward pass is
//! confluent — every event's corrected time is a function of its already
//! corrected dependencies, not of visit order — so corrected timestamps,
//! `max_jump`, `events_moved` and the jump *set* are bit-identical for
//! every window size; the report's jump order is canonicalized to
//! (timeline, index), whereas the batch report lists discovery order.
//! `tests/windowed_differential.rs` compares both sorted.
//!
//! # Scope
//!
//! The violation censuses are skipped (they are whole-trace diagnostics;
//! run the batch pipeline when they are needed) and the engine is
//! sequential — [`PipelineConfig::parallel`] is ignored. Message matching
//! and the CSR dependency graph remain O(trace) *structural* metadata, as
//! do the discovered walk windows; the O(window) bound — and the
//! [`PipelineStats::peak_resident_column_bytes`] gauge enforcing it in CI —
//! covers the `i64` timestamp lanes, which dominate at scale.

use super::{
    build_presync_maps, CancelToken, PipelineConfig, PipelineError, PipelineStats, PresyncMap,
    StageStats,
};
use crate::clc::graph::DepGraph;
use crate::clc::{ClcError, ClcParams, ClcReport, Jump};
use crate::offset::OffsetMeasurement;
use simclock::{Dur, Time};
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};
use tracefmt::io::{
    decode_block_kinds, decode_block_times, index_columnar_chunks, ChunkStore, FrameWriter,
    StreamIndex,
};
use tracefmt::{
    assemble_collective_instances, CollCall, CollectiveInstance, CollectiveScanner, CommId,
    EventId, EventKind, LatencyTable, Matching, MessageMatcher, MinLatency, Rank,
};

/// A finalized-chunk consumer for the streaming entry point: called with
/// `(index, chunk)` in dense order; returning `false` aborts the run.
pub type FrameSink<'a> = dyn Fn(u64, &[u8]) -> bool + 'a;

/// Outcome of an incremental windowed run: what [`PipelineReport`] is to
/// the batch entry points, minus the censuses (see the module docs).
///
/// [`PipelineReport`]: super::PipelineReport
#[derive(Debug, Clone)]
pub struct IncrementalReport {
    /// CLC statistics (None when the CLC stage was skipped). Jumps are in
    /// canonical (timeline, index) order.
    pub clc: Option<ClcReport>,
    /// Per-stage instrumentation; `peak_resident_column_bytes` is the
    /// lanes' true high-water mark.
    pub stats: PipelineStats,
    /// Block frames emitted (excluding the magic and trailer chunks).
    pub frames: usize,
    /// Events emitted across all frames.
    pub events: usize,
}

impl IncrementalReport {
    /// View this report in the batch [`PipelineReport`] shape, for callers
    /// (like the `syncd` service) that carry one report type for every job
    /// mode. The censuses are **empty placeholders** — the incremental
    /// engine never runs them (see the module docs) — so `raw`,
    /// `after_presync` and `after_clc` report zero messages inspected, not
    /// zero violations found.
    ///
    /// [`PipelineReport`]: super::PipelineReport
    pub fn to_pipeline_report(&self) -> super::PipelineReport {
        let empty = || super::StageReport {
            p2p: Default::default(),
            coll: Default::default(),
        };
        super::PipelineReport {
            raw: empty(),
            after_presync: empty(),
            after_clc: self.clc.is_some().then(empty),
            clc: self.clc.clone(),
            stats: self.stats.clone(),
        }
    }
}

/// High-water gauge over the lane segments' allocations.
#[derive(Default)]
struct MemGauge {
    cur: u64,
    peak: u64,
}

impl MemGauge {
    fn alloc(&mut self, bytes: u64) {
        self.cur += bytes;
        if self.cur > self.peak {
            self.peak = self.cur;
        }
    }

    fn free(&mut self, bytes: u64) {
        self.cur -= bytes;
    }
}

/// An append-only `i64` lane stored as fixed-width segments that can be
/// retired from the front once no frontier needs them. Indices are
/// *logical* (stable across retirement); reading a retired index is a bug
/// caught by the debug assert.
struct Lane {
    w: u64,
    first_seg: u64,
    segs: VecDeque<Box<[i64]>>,
    /// Logical length: total values ever pushed.
    len: u64,
}

impl Lane {
    fn new(window: usize) -> Lane {
        Lane { w: window as u64, first_seg: 0, segs: VecDeque::new(), len: 0 }
    }

    fn push(&mut self, v: i64, mem: &mut MemGauge) {
        if self.len.is_multiple_of(self.w) {
            self.segs.push_back(vec![0i64; self.w as usize].into_boxed_slice());
            mem.alloc(8 * self.w);
        }
        let seg = (self.len / self.w - self.first_seg) as usize;
        self.segs[seg][(self.len % self.w) as usize] = v;
        self.len += 1;
    }

    fn get(&self, i: u64) -> i64 {
        debug_assert!(i < self.len, "lane read past frontier");
        debug_assert!(i / self.w >= self.first_seg, "lane read of retired segment");
        self.segs[(i / self.w - self.first_seg) as usize][(i % self.w) as usize]
    }

    fn set(&mut self, i: u64, v: i64) {
        debug_assert!(i < self.len, "lane write past frontier");
        debug_assert!(i / self.w >= self.first_seg, "lane write to retired segment");
        self.segs[(i / self.w - self.first_seg) as usize][(i % self.w) as usize] = v;
    }

    /// Logical end index of the head (oldest retained) segment.
    fn head_end(&self) -> Option<u64> {
        if self.segs.is_empty() {
            None
        } else {
            Some((self.first_seg + 1) * self.w)
        }
    }

    fn pop_head(&mut self, mem: &mut MemGauge) {
        self.segs.pop_front().expect("pop of empty lane");
        self.first_seg += 1;
        mem.free(8 * self.w);
    }

    fn drain(&mut self, mem: &mut MemGauge) {
        while !self.segs.is_empty() {
            self.pop_head(mem);
        }
    }
}

/// Retire head segments up to `upto` once their outstanding-read counter
/// clears. `cnt` maps segment index → reads still pending (running sums;
/// early decrements may drive an entry negative until the segment's own
/// frontier passes and its additions land).
fn retire_counted(lane: &mut Lane, upto: u64, cnt: &mut HashMap<u64, i64>, mem: &mut MemGauge) {
    while let Some(end) = lane.head_end() {
        let seg = lane.first_seg;
        if end <= upto && cnt.get(&seg).copied().unwrap_or(0) == 0 {
            cnt.remove(&seg);
            lane.pop_head(mem);
        } else {
            break;
        }
    }
}

/// Retire head segments wholly below `upto` (no read accounting).
fn retire_plain(lane: &mut Lane, upto: u64, mem: &mut MemGauge) {
    while lane.head_end().is_some_and(|end| end <= upto) {
        lane.pop_head(mem);
    }
}

/// One backward walk discovered by the first sweep: everything the second
/// sweep needs to run [`backward_pass`] for a jump without re-deriving it.
#[derive(Debug, Clone, Copy)]
struct WJump {
    /// Timeline-local index of the jump event (always > 0; index-0 jumps
    /// have no walk).
    k: u64,
    /// Jump size.
    delta: Dur,
    /// Amortization window (`delta × backward_window_factor`).
    window: Dur,
    /// Window start in ps: `r − delta − window` with the batch kernel's
    /// exact saturation sequence. Events at or below this time are never
    /// written by the walk.
    w_start: i64,
}

/// Decode timeline `p`'s next block, apply its presync map, and append the
/// times to `orig`. Returns false when the timeline has no blocks left.
#[allow(clippy::too_many_arguments)]
fn ingest_block(
    index: &StreamIndex,
    store: &ChunkStore,
    maps: Option<&[PresyncMap]>,
    p: usize,
    next_block: &mut usize,
    orig: &mut Lane,
    mem: &mut MemGauge,
    scratch: &mut Vec<u8>,
    tmp: &mut Vec<i64>,
) -> bool {
    let list = &index.proc_blocks[p];
    if *next_block >= list.len() {
        return false;
    }
    let bm = &index.blocks[list[*next_block] as usize];
    *next_block += 1;
    tmp.clear();
    let seg = store.read(bm.times_off, bm.n_events as usize * 8, scratch);
    decode_block_times(index.version, seg, tmp);
    if let Some(maps) = maps {
        maps[p].map_col(tmp);
    }
    for &v in tmp.iter() {
        orig.push(v, mem);
    }
    true
}

/// Reconstruct the communication structure straight from the indexed
/// stream: the streamed twin of [`TraceAnalysis::capture`], feeding the
/// same order-based matcher/scanner state machines block by block (two
/// passes — all sends, then all receives — exactly like the batch
/// matcher), so the resulting [`Matching`] and instance list are
/// bit-identical to the batch analysis of the decoded trace.
///
/// [`TraceAnalysis::capture`]: super::TraceAnalysis::capture
fn capture_analysis_streamed(
    index: &StreamIndex,
    store: &ChunkStore,
) -> Result<(Matching, Vec<CollectiveInstance>), PipelineError> {
    let n = index.locations.len();
    let mut matcher = MessageMatcher::new();
    let mut per_comm: HashMap<CommId, Vec<Vec<CollCall>>> = HashMap::new();
    let mut scratch = Vec::new();
    let mut kinds: Vec<EventKind> = Vec::new();

    for p in 0..n {
        let rank = index.locations[p].rank;
        let mut scanner = CollectiveScanner::new(p, rank);
        for &bidx in &index.proc_blocks[p] {
            let bm = &index.blocks[bidx as usize];
            kinds.clear();
            let payload = store.read(bm.payload_off, bm.payload_len as usize, &mut scratch);
            decode_block_kinds(index.version, payload, bm.n_events as usize, &mut kinds)
                .map_err(PipelineError::Codec)?;
            for (j, kind) in kinds.iter().enumerate() {
                let i = bm.first_idx as usize + j;
                matcher.feed_send(rank, p, i, kind);
                scanner.feed(i, kind).map_err(PipelineError::BadTrace)?;
            }
        }
        for (comm, list) in scanner.finish() {
            per_comm.entry(comm).or_insert_with(|| vec![Vec::new(); n])[p] = list;
        }
    }
    for p in 0..n {
        let rank = index.locations[p].rank;
        for &bidx in &index.proc_blocks[p] {
            let bm = &index.blocks[bidx as usize];
            kinds.clear();
            let payload = store.read(bm.payload_off, bm.payload_len as usize, &mut scratch);
            decode_block_kinds(index.version, payload, bm.n_events as usize, &mut kinds)
                .map_err(PipelineError::Codec)?;
            for (j, kind) in kinds.iter().enumerate() {
                matcher.feed_recv(rank, p, bm.first_idx as usize + j, kind);
            }
        }
    }
    let matching = matcher.finish();

    let mut comms: Vec<CommId> = per_comm.keys().copied().collect();
    comms.sort();
    let mut instances = Vec::new();
    for comm in comms {
        instances.extend(
            assemble_collective_instances(comm, &per_comm[&comm])
                .map_err(PipelineError::BadTrace)?,
        );
    }
    Ok((matching, instances))
}

/// Sweep 1 (backward path only): run the forward pass once, with bounded
/// lookback, purely to *discover* every jump's backward walk. Corrected
/// values are kept only while a remote consumer still needs them (the
/// per-segment read counters); nothing is emitted.
#[allow(clippy::too_many_arguments)]
fn discover_walks(
    index: &StreamIndex,
    store: &ChunkStore,
    maps: Option<&[PresyncMap]>,
    graph: &DepGraph,
    params: &ClcParams,
    window: usize,
    cancel: &CancelToken,
    mem: &mut MemGauge,
) -> Result<Vec<Vec<WJump>>, PipelineError> {
    let n = index.locations.len();
    let w = window as u64;
    let lens = &index.proc_lens;
    let mut orig: Vec<Lane> = (0..n).map(|_| Lane::new(window)).collect();
    let mut corr: Vec<Lane> = (0..n).map(|_| Lane::new(window)).collect();
    let mut f1 = vec![0u64; n];
    let mut next_block = vec![0usize; n];
    let mut prev_orig = vec![Time::MIN; n];
    let mut prev_corr = vec![Time::MIN; n];
    let mut cnt: Vec<HashMap<u64, i64>> = vec![HashMap::new(); n];
    let mut walks: Vec<Vec<WJump>> = vec![Vec::new(); n];
    let mut scratch = Vec::new();
    let mut tmp = Vec::new();

    loop {
        cancel.check()?;
        let mut progressed = false;
        for p in 0..n {
            let gbase = graph.base(p);
            let mut burst = 0u64;
            'events: while f1[p] < lens[p] && burst < w {
                if f1[p] == orig[p].len {
                    let ok = ingest_block(
                        index, store, maps, p, &mut next_block[p], &mut orig[p], mem,
                        &mut scratch, &mut tmp,
                    );
                    debug_assert!(ok, "index accounts for every event");
                    if !ok {
                        break 'events;
                    }
                }
                let i = f1[p];
                let gid = gbase + i as u32;
                let orig_t = Time::from_ps(orig[p].get(i));

                // Remote constraint: max over in-edge producers, in
                // dependency-dispatch order (same blocking producer as the
                // batch kernel).
                let mut remote: Option<Time> = None;
                let (srcs, lats) = graph.in_of(gid);
                for (&src, &lat) in srcs.iter().zip(lats) {
                    let ps = graph.proc_of(src);
                    let si = (src - graph.base(ps)) as u64;
                    if si >= f1[ps] {
                        break 'events; // producer not yet corrected
                    }
                    let c = Time::from_ps(corr[ps].get(si)).saturating_add(Dur::from_ps(lat));
                    remote = Some(remote.map_or(c, |b: Time| b.max(c)));
                }

                let candidate = if i == 0 {
                    orig_t
                } else {
                    let gap = orig_t.saturating_since(prev_orig[p]).max(Dur::ZERO);
                    orig_t.max(prev_corr[p].saturating_add(gap.scale(params.mu)))
                };
                let corrected = match remote {
                    Some(r) if r > candidate => {
                        let size = r.saturating_since(candidate);
                        if i > 0 {
                            // Precompute the walk window with the batch
                            // kernel's exact saturation sequence: at walk
                            // time `col[k]` still holds this forward value
                            // `r`, so `w_start = (r − delta) − window`.
                            let wdur = size.scale(params.backward_window_factor);
                            let w_start = r.saturating_sub(size).saturating_sub(wdur);
                            walks[p].push(WJump {
                                k: i,
                                delta: size,
                                window: wdur,
                                w_start: w_start.as_ps(),
                            });
                        }
                        r
                    }
                    _ => candidate,
                };

                corr[p].push(corrected.as_ps(), mem);
                let out_deg = graph.out_of(gid).0.len() as i64;
                if out_deg > 0 {
                    *cnt[p].entry(i / w).or_insert(0) += out_deg;
                }
                // The remote reads above are now accountable: exactly one
                // per in-edge, never repeated (a blocked scan commits
                // nothing).
                for &src in srcs {
                    let ps = graph.proc_of(src);
                    let si = (src - graph.base(ps)) as u64;
                    *cnt[ps].entry(si / w).or_insert(0) -= 1;
                }
                prev_orig[p] = orig_t;
                prev_corr[p] = corrected;
                f1[p] += 1;
                burst += 1;
                progressed = true;
            }
            retire_plain(&mut orig[p], f1[p], mem);
            retire_counted(&mut corr[p], f1[p], &mut cnt[p], mem);
        }
        if (0..n).all(|p| f1[p] == lens[p]) {
            break;
        }
        if !progressed {
            return Err(PipelineError::Clc(ClcError::CyclicTrace));
        }
    }
    for p in 0..n {
        orig[p].drain(mem);
        corr[p].drain(mem);
    }
    Ok(walks)
}

/// One backward walk over the lanes: the statement-level twin of the batch
/// `backward_pass_csr` body for a single jump. `postb` is the timeline's
/// mutable post-forward lane; `snap` holds every timeline's immutable
/// forward snapshot for the clamp reads.
fn backward_walk(p: usize, wj: &WJump, graph: &DepGraph, postb: &mut [Lane], snap: &[Lane]) {
    let gbase = graph.base(p);
    let w_start = Time::from_ps(wj.w_start);
    let mut shift_above = wj.delta;
    let mut i = wj.k;
    while i > 0 {
        i -= 1;
        let t_i = Time::from_ps(postb[p].get(i));
        if t_i <= w_start {
            break;
        }
        let frac = t_i.saturating_since(w_start).as_ps() as f64
            / wj.window.as_ps().max(1) as f64;
        let ramp = wj.delta.scale(frac.clamp(0.0, 1.0));
        let mut cap = Dur::MAX;
        let (dsts, lats) = graph.out_of(gbase + i as u32);
        for (&dst, &lat) in dsts.iter().zip(lats) {
            let pd = graph.proc_of(dst);
            let di = (dst - graph.base(pd)) as u64;
            cap = cap.min(
                Time::from_ps(snap[pd].get(di))
                    .saturating_sub(Dur::from_ps(lat))
                    .saturating_since(t_i),
            );
        }
        let shift = ramp.min(cap).min(shift_above).max(Dur::ZERO);
        postb[p].set(i, t_i.saturating_add(shift).as_ps());
        shift_above = shift;
        if shift == Dur::ZERO {
            break;
        }
    }
}

/// Where corrected output chunks go: accumulated in memory (the default),
/// or handed to a caller sink chunk by chunk *while the run progresses* —
/// the seam the network service streams `CorrectedFrame`s through. Chunk
/// indices are dense from 0 (the magic chunk) through the trailer, and the
/// sequence is deterministic for a given input, so a retried run re-emits
/// identical chunks at identical indices and the sink can deduplicate with
/// a high-water mark. A sink returning `false` aborts the run with
/// [`PipelineError::Cancelled`] (a stalled consumer cancels *its own* job,
/// never wedges the engine).
enum Emit<'a> {
    Collect(Vec<Vec<u8>>),
    Sink {
        sink: &'a (dyn Fn(u64, &[u8]) -> bool + 'a),
        next: u64,
    },
}

impl Emit<'_> {
    fn push(&mut self, chunk: Vec<u8>) -> Result<(), PipelineError> {
        match self {
            Emit::Collect(out) => out.push(chunk),
            Emit::Sink { sink, next } => {
                if !sink(*next, &chunk) {
                    return Err(PipelineError::Cancelled);
                }
                *next += 1;
            }
        }
        Ok(())
    }

    fn into_chunks(self) -> Vec<Vec<u8>> {
        match self {
            Emit::Collect(out) => out,
            Emit::Sink { .. } => Vec::new(),
        }
    }
}

/// Everything [`apply_and_emit`] returns besides the stats its caller
/// records.
struct ApplyOutcome {
    out: Vec<Vec<u8>>,
    report: ClcReport,
    frames: usize,
    events: u64,
    emit_seconds: f64,
}

/// Sweep 2: the full windowed CLC with emission. Per epoch and timeline,
/// in order: (1) advance the forward frontier `f1` (into the snapshot
/// lane, duplicated into the walk lane on the backward path); (2) advance
/// `rwalk`, the prefix whose out-edge targets are all corrected (a walk
/// for jump `k` may clamp against any of them); (3) apply every walk whose
/// preconditions cleared, ascending; (4) advance the safety frontier `b`
/// past events at or below every *remaining* walk's window start — final
/// values no walk will touch again; (5) re-run the forward pass `f2` with
/// `mu = 1` over the walked values behind `b`; (6) emit blocks wholly
/// behind the finalization horizon; (7) retire cleared segments.
///
/// Without backward amortization, steps 2–5 vanish and the horizon is `f1`
/// itself.
#[allow(clippy::too_many_arguments)]
fn apply_and_emit(
    index: &StreamIndex,
    store: &ChunkStore,
    maps: Option<&[PresyncMap]>,
    graph: &DepGraph,
    params: &ClcParams,
    walks: &[Vec<WJump>],
    window: usize,
    cancel: &CancelToken,
    mem: &mut MemGauge,
    sink: Option<&FrameSink<'_>>,
) -> Result<ApplyOutcome, PipelineError> {
    let n = index.locations.len();
    let w = window as u64;
    let backward = params.backward;
    let lens = &index.proc_lens;

    let mut orig: Vec<Lane> = (0..n).map(|_| Lane::new(window)).collect();
    let mut snap: Vec<Lane> = (0..n).map(|_| Lane::new(window)).collect();
    let mut postb: Vec<Lane> = (0..n).map(|_| Lane::new(window)).collect();
    let mut f2v: Vec<Lane> = (0..n).map(|_| Lane::new(window)).collect();
    let mut f1 = vec![0u64; n];
    let mut next_block = vec![0usize; n];
    let mut prev_orig = vec![Time::MIN; n];
    let mut prev_corr = vec![Time::MIN; n];
    let mut cnt_snap: Vec<HashMap<u64, i64>> = vec![HashMap::new(); n];
    // Backward-path frontiers.
    let mut rwalk = vec![0u64; n];
    let mut next_walk = vec![0usize; n];
    let mut b = vec![0u64; n];
    let mut f2 = vec![0u64; n];
    let mut prev_post = vec![Time::MIN; n];
    let mut prev_f2 = vec![Time::MIN; n];
    let mut cnt_f2: Vec<HashMap<u64, i64>> = vec![HashMap::new(); n];
    // Emission state.
    let mut emit_block = vec![0usize; n];
    let mut emitted = vec![0u64; n];

    // sufmin[p][j] = min window start over walks[p][j..]: while walk j is
    // the next unapplied one, every event at or below sufmin[p][j] is
    // final (no remaining walk writes it or clamps through its out-edges).
    let sufmin: Vec<Vec<i64>> = walks
        .iter()
        .map(|ws| {
            let mut m = vec![0i64; ws.len()];
            let mut cur = i64::MAX;
            for j in (0..ws.len()).rev() {
                cur = cur.min(ws[j].w_start);
                m[j] = cur;
            }
            m
        })
        .collect();

    let mut report = ClcReport::default();
    let (mut writer, magic) = FrameWriter::new(index.version);
    let mut out = match sink {
        Some(sink) => Emit::Sink { sink, next: 0 },
        None => Emit::Collect(Vec::new()),
    };
    out.push(magic)?;
    let mut frames = 0usize;
    let mut events = 0u64;
    let mut emit_seconds = 0f64;
    let mut scratch = Vec::new();
    let mut tmp = Vec::new();
    let mut times: Vec<i64> = Vec::new();

    loop {
        cancel.check()?;
        let mut progressed = false;
        for p in 0..n {
            let gbase = graph.base(p);

            // (1) Forward frontier — the same kernel as sweep 1, writing
            // the snapshot lane (and its walk copy). On the backward path
            // each event also arms one potential clamp read per in-edge,
            // released when the safety frontier passes the *source* (step
            // 4): a walk visiting the source would read this event's
            // snapshot value.
            let mut burst = 0u64;
            'events: while f1[p] < lens[p] && burst < w {
                if f1[p] == orig[p].len {
                    let ok = ingest_block(
                        index, store, maps, p, &mut next_block[p], &mut orig[p], mem,
                        &mut scratch, &mut tmp,
                    );
                    debug_assert!(ok, "index accounts for every event");
                    if !ok {
                        break 'events;
                    }
                }
                let i = f1[p];
                let gid = gbase + i as u32;
                let orig_t = Time::from_ps(orig[p].get(i));

                let mut remote: Option<Time> = None;
                let (srcs, lats) = graph.in_of(gid);
                for (&src, &lat) in srcs.iter().zip(lats) {
                    let ps = graph.proc_of(src);
                    let si = (src - graph.base(ps)) as u64;
                    if si >= f1[ps] {
                        break 'events;
                    }
                    let c = Time::from_ps(snap[ps].get(si)).saturating_add(Dur::from_ps(lat));
                    remote = Some(remote.map_or(c, |b: Time| b.max(c)));
                }

                let candidate = if i == 0 {
                    orig_t
                } else {
                    let gap = orig_t.saturating_since(prev_orig[p]).max(Dur::ZERO);
                    orig_t.max(prev_corr[p].saturating_add(gap.scale(params.mu)))
                };
                let corrected = match remote {
                    Some(r) if r > candidate => {
                        let size = r.saturating_since(candidate);
                        report.jumps.push(Jump { event: EventId::new(p, i as usize), size });
                        report.max_jump = report.max_jump.max(size);
                        r
                    }
                    _ => candidate,
                };

                snap[p].push(corrected.as_ps(), mem);
                if backward {
                    postb[p].push(corrected.as_ps(), mem);
                }
                let gid_u32 = gid;
                let out_deg = graph.out_of(gid_u32).0.len() as i64;
                let in_deg = srcs.len() as i64;
                let adds = out_deg + if backward { in_deg } else { 0 };
                if adds > 0 {
                    *cnt_snap[p].entry(i / w).or_insert(0) += adds;
                }
                for &src in srcs {
                    let ps = graph.proc_of(src);
                    let si = (src - graph.base(ps)) as u64;
                    *cnt_snap[ps].entry(si / w).or_insert(0) -= 1;
                }
                prev_orig[p] = orig_t;
                prev_corr[p] = corrected;
                f1[p] += 1;
                burst += 1;
                progressed = true;
            }

            if backward {
                // (2) rwalk: prefix of events whose out-edge targets are
                // all corrected — a walk may clamp through any of them.
                'rw: while rwalk[p] < f1[p] {
                    let (dsts, _) = graph.out_of(gbase + rwalk[p] as u32);
                    for &dst in dsts {
                        let pd = graph.proc_of(dst);
                        if ((dst - graph.base(pd)) as u64) >= f1[pd] {
                            break 'rw;
                        }
                    }
                    rwalk[p] += 1;
                    progressed = true;
                }

                // (3) Apply ready walks, ascending by jump index — the
                // batch per-timeline application order.
                while next_walk[p] < walks[p].len() {
                    let wj = walks[p][next_walk[p]];
                    if !(f1[p] > wj.k && rwalk[p] >= wj.k) {
                        break;
                    }
                    backward_walk(p, &wj, graph, &mut postb, &snap);
                    next_walk[p] += 1;
                    progressed = true;
                }

                // (4) Safety frontier: an event at or below every
                // remaining walk's window start is never written again and
                // never visited, so its pending clamp reads (one per
                // out-edge) will not happen — release them.
                let cur_sufmin = if next_walk[p] < walks[p].len() {
                    sufmin[p][next_walk[p]]
                } else {
                    i64::MAX
                };
                while b[p] < f1[p] && postb[p].get(b[p]) <= cur_sufmin {
                    let (dsts, _) = graph.out_of(gbase + b[p] as u32);
                    for &dst in dsts {
                        let pd = graph.proc_of(dst);
                        let di = (dst - graph.base(pd)) as u64;
                        *cnt_snap[pd].entry(di / w).or_insert(0) -= 1;
                    }
                    b[p] += 1;
                    progressed = true;
                }

                // (5) Second forward pass behind the safety frontier:
                // originals are the walked values, mu = 1 (the literal
                // `scale(1.0)` of the batch kernel, for float identity).
                'f2: while f2[p] < b[p] {
                    let i = f2[p];
                    let gid = gbase + i as u32;
                    let orig_t = Time::from_ps(postb[p].get(i));

                    let mut remote: Option<Time> = None;
                    let (srcs, lats) = graph.in_of(gid);
                    for (&src, &lat) in srcs.iter().zip(lats) {
                        let ps = graph.proc_of(src);
                        let si = (src - graph.base(ps)) as u64;
                        if si >= f2[ps] {
                            break 'f2;
                        }
                        let c =
                            Time::from_ps(f2v[ps].get(si)).saturating_add(Dur::from_ps(lat));
                        remote = Some(remote.map_or(c, |bnd: Time| bnd.max(c)));
                    }

                    let candidate = if i == 0 {
                        orig_t
                    } else {
                        let gap = orig_t.saturating_since(prev_post[p]).max(Dur::ZERO);
                        orig_t.max(prev_f2[p].saturating_add(gap.scale(1.0)))
                    };
                    let corrected = match remote {
                        Some(r) if r > candidate => r,
                        _ => candidate,
                    };

                    f2v[p].push(corrected.as_ps(), mem);
                    let out_deg = graph.out_of(gid).0.len() as i64;
                    if out_deg > 0 {
                        *cnt_f2[p].entry(i / w).or_insert(0) += out_deg;
                    }
                    for &src in srcs {
                        let ps = graph.proc_of(src);
                        let si = (src - graph.base(ps)) as u64;
                        *cnt_f2[ps].entry(si / w).or_insert(0) -= 1;
                    }
                    prev_post[p] = orig_t;
                    prev_f2[p] = corrected;
                    f2[p] += 1;
                    progressed = true;
                }
            }

            // (6) Emit blocks wholly behind the finalization horizon,
            // payload bytes verbatim.
            let done = if backward { f2[p] } else { f1[p] };
            while emit_block[p] < index.proc_blocks[p].len() {
                let bm = &index.blocks[index.proc_blocks[p][emit_block[p]] as usize];
                let end = bm.first_idx + bm.n_events as u64;
                if end > done {
                    break;
                }
                let te = Instant::now();
                times.clear();
                let lane = if backward { &f2v[p] } else { &snap[p] };
                for j in bm.first_idx..end {
                    let v = lane.get(j);
                    if v != orig[p].get(j) {
                        report.events_moved += 1;
                    }
                    times.push(v);
                }
                let payload = store.read(bm.payload_off, bm.payload_len as usize, &mut scratch);
                let frame = writer.frame(index.locations[p], &times, payload);
                frames += 1;
                events += bm.n_events as u64;
                emitted[p] = end;
                emit_block[p] += 1;
                emit_seconds += te.elapsed().as_secs_f64();
                out.push(frame)?;
                progressed = true;
            }

            // (7) Retirement: originals once emitted (the moved-event
            // comparison was their last read); the snapshot once its
            // frontier passed and the carry counter cleared (and, without
            // the backward path, once emitted — it is the emission lane);
            // the walk lane once re-forwarded and strictly behind the
            // safety frontier (a walk may still *read* its break element);
            // the f2 lane once emitted and drained by remote consumers.
            retire_plain(&mut orig[p], emitted[p], mem);
            let snap_upto = if backward { f1[p] } else { emitted[p] };
            retire_counted(&mut snap[p], snap_upto, &mut cnt_snap[p], mem);
            if backward {
                retire_plain(&mut postb[p], f2[p].min(b[p].saturating_sub(1)), mem);
                retire_counted(&mut f2v[p], emitted[p], &mut cnt_f2[p], mem);
            }
        }

        if (0..n).all(|p| emitted[p] == lens[p]) {
            break;
        }
        if !progressed {
            // Only an unsatisfiable forward dependency can wedge every
            // frontier at once: the walk/safety/re-forward/emission chain
            // always drains once `f1` completes.
            return Err(PipelineError::Clc(ClcError::CyclicTrace));
        }
    }

    out.push(writer.finish())?;
    for p in 0..n {
        orig[p].drain(mem);
        snap[p].drain(mem);
        postb[p].drain(mem);
        f2v[p].drain(mem);
    }
    report.events_total = index.n_events() as usize;
    report.jumps.sort_by_key(|j| (j.event.p(), j.event.i()));
    Ok(ApplyOutcome { out: out.into_chunks(), report, frames, events, emit_seconds })
}

/// The CLC-less path: re-emit every block in stream order with its presync
/// map applied; one transient column per block.
fn passthrough_emit(
    index: &StreamIndex,
    store: &ChunkStore,
    maps: Option<&[PresyncMap]>,
    cancel: &CancelToken,
    mem: &mut MemGauge,
    sink: Option<&FrameSink<'_>>,
) -> Result<(Vec<Vec<u8>>, usize, u64), PipelineError> {
    let (mut writer, magic) = FrameWriter::new(index.version);
    let mut out = match sink {
        Some(sink) => Emit::Sink { sink, next: 0 },
        None => Emit::Collect(Vec::new()),
    };
    out.push(magic)?;
    let mut frames = 0usize;
    let mut events = 0u64;
    let mut scratch = Vec::new();
    let mut times: Vec<i64> = Vec::new();
    for bm in &index.blocks {
        cancel.check()?;
        let bytes = bm.n_events as u64 * 8;
        mem.alloc(bytes);
        times.clear();
        let seg = store.read(bm.times_off, bm.n_events as usize * 8, &mut scratch);
        decode_block_times(index.version, seg, &mut times);
        let p = bm.timeline as usize;
        if let Some(maps) = maps {
            maps[p].map_col(&mut times);
        }
        let payload = store.read(bm.payload_off, bm.payload_len as usize, &mut scratch);
        let frame = writer.frame(index.locations[p], &times, payload);
        frames += 1;
        events += bm.n_events as u64;
        mem.free(bytes);
        out.push(frame)?;
    }
    out.push(writer.finish())?;
    Ok((out.into_chunks(), frames, events))
}

/// Run the pipeline incrementally over a chunked columnar stream and
/// stream the corrected trace back out with bounded resident memory.
///
/// The input is the same `DTC2`/`DTC3` chunk sequence
/// [`synchronize_stream`] accepts; the output is a chunk sequence of the
/// same version — magic, one chunk per re-encoded block frame, trailer —
/// whose concatenation is a well-formed stream (frames interleave across
/// timelines in finalization order; per-timeline block order is
/// preserved, which is all the format requires). Corrected timestamps are
/// bit-identical to the batch pipeline's for **every** `window_events ≥ 1`;
/// the window only bounds how much column state stays resident
/// ([`PipelineStats::peak_resident_column_bytes`]). See the module docs
/// for what the incremental engine skips (censuses, parallelism).
///
/// [`synchronize_stream`]: super::synchronize_stream
pub fn synchronize_stream_incremental(
    chunks: &[&[u8]],
    init: &[Option<OffsetMeasurement>],
    fin: Option<&[Option<OffsetMeasurement>]>,
    lmin: &dyn MinLatency,
    cfg: &PipelineConfig,
    window_events: usize,
) -> Result<(Vec<Vec<u8>>, IncrementalReport), PipelineError> {
    synchronize_stream_incremental_with_cancel(
        chunks,
        init,
        fin,
        lmin,
        cfg,
        window_events,
        &CancelToken::none(),
    )
}

/// [`synchronize_stream_incremental`] with a cooperative [`CancelToken`],
/// polled once per processing epoch and once per passthrough block.
#[allow(clippy::too_many_arguments)]
pub fn synchronize_stream_incremental_with_cancel(
    chunks: &[&[u8]],
    init: &[Option<OffsetMeasurement>],
    fin: Option<&[Option<OffsetMeasurement>]>,
    lmin: &dyn MinLatency,
    cfg: &PipelineConfig,
    window_events: usize,
    cancel: &CancelToken,
) -> Result<(Vec<Vec<u8>>, IncrementalReport), PipelineError> {
    run_incremental(chunks, init, fin, lmin, cfg, window_events, cancel, None)
}

/// [`synchronize_stream_incremental_with_cancel`] that *streams* the
/// corrected chunks to `sink` as they finalize instead of accumulating
/// them: `sink(index, chunk)` is called with dense indices from 0 (the
/// magic chunk) through the trailer, in order, while the run progresses.
/// The chunk sequence is deterministic for a given input, so a retried
/// run re-emits identical chunks at identical indices — a sink can resume
/// from a high-water mark. Returning `false` from the sink aborts the run
/// with [`PipelineError::Cancelled`]. The returned report's `frames` and
/// `events` count what was emitted; no chunks are retained in memory.
#[allow(clippy::too_many_arguments)]
pub fn synchronize_stream_incremental_with_sink(
    chunks: &[&[u8]],
    init: &[Option<OffsetMeasurement>],
    fin: Option<&[Option<OffsetMeasurement>]>,
    lmin: &dyn MinLatency,
    cfg: &PipelineConfig,
    window_events: usize,
    cancel: &CancelToken,
    sink: &FrameSink<'_>,
) -> Result<IncrementalReport, PipelineError> {
    run_incremental(chunks, init, fin, lmin, cfg, window_events, cancel, Some(sink))
        .map(|(_, report)| report)
}

#[allow(clippy::too_many_arguments)]
fn run_incremental(
    chunks: &[&[u8]],
    init: &[Option<OffsetMeasurement>],
    fin: Option<&[Option<OffsetMeasurement>]>,
    lmin: &dyn MinLatency,
    cfg: &PipelineConfig,
    window_events: usize,
    cancel: &CancelToken,
    sink: Option<&FrameSink<'_>>,
) -> Result<(Vec<Vec<u8>>, IncrementalReport), PipelineError> {
    let t_total = Instant::now();
    cancel.check()?;
    if window_events == 0 {
        return Err(PipelineError::BadTrace(
            "incremental window must be at least one event".into(),
        ));
    }
    let t0 = Instant::now();
    let index = index_columnar_chunks(chunks).map_err(PipelineError::Codec)?;
    let store = ChunkStore::new(chunks);
    let n = index.locations.len();
    let n_events = index.n_events() as usize;

    // Validation parity with the batch driver.
    if init.len() != n {
        return Err(PipelineError::BadMeasurements(format!(
            "init has {} entries for {} procs",
            init.len(),
            n
        )));
    }
    if let Some(f) = fin {
        if f.len() != n {
            return Err(PipelineError::BadMeasurements(format!(
                "fin has {} entries for {} procs",
                f.len(),
                n
            )));
        }
    }
    // The windowed engine keeps only O(window) timestamps resident; the
    // online corrector's lanes are stateful over a *whole* timeline and
    // its probe schedule, so the method is batch-only for now.
    if cfg.online().is_some() {
        return Err(PipelineError::Unsupported(
            "SyncMethod::Online is not available on the incremental windowed \
             engine; use the batch entry points"
                .into(),
        ));
    }
    if let Some(params) = cfg.effective_clc() {
        crate::clc::columnar::validate(params).map_err(PipelineError::Clc)?;
    }
    let ranks: Vec<Rank> = index.locations.iter().map(|l| l.rank).collect();
    let max_rank = ranks.iter().map(|r| r.idx()).max().unwrap_or(0);
    let rank_ceiling = n.saturating_mul(8).max(1 << 12);
    if max_rank >= rank_ceiling {
        return Err(PipelineError::BadTrace(format!(
            "rank id {max_rank} out of range for a {n}-process trace"
        )));
    }
    let table = LatencyTable::freeze(lmin, &ranks);

    let mut stats = PipelineStats { workers: 1, ..PipelineStats::default() };
    stats.stages.push(StageStats::sharded(
        "index",
        n_events,
        t0.elapsed(),
        index.blocks.len().max(1),
        Duration::ZERO,
    ));
    let maps = build_presync_maps(cfg.presync, init, fin)?;
    let maps = maps.as_deref();
    cancel.check()?;

    let mut mem = MemGauge::default();
    let (out, clc, frames, events) = match cfg.effective_clc() {
        None => {
            let t0 = Instant::now();
            let (out, frames, events) =
                passthrough_emit(&index, &store, maps, cancel, &mut mem, sink)?;
            stats.stages.push(StageStats::sharded(
                "emit",
                events as usize,
                t0.elapsed(),
                frames.max(1),
                Duration::ZERO,
            ));
            (out, None, frames, events)
        }
        Some(params) => {
            let t0 = Instant::now();
            let (matching, instances) = capture_analysis_streamed(&index, &store)?;
            stats
                .stages
                .push(StageStats::sequential("match", n_events, t0.elapsed()));

            let t0 = Instant::now();
            let proc_lens: Vec<usize> = index.proc_lens.iter().map(|&l| l as usize).collect();
            let graph = DepGraph::build(&matching, &instances, &proc_lens, &table);
            stats
                .stages
                .push(StageStats::sequential("lower", n_events, t0.elapsed()));

            let walks = if params.backward {
                let t0 = Instant::now();
                let walks = discover_walks(
                    &index, &store, maps, &graph, params, window_events, cancel, &mut mem,
                )?;
                stats
                    .stages
                    .push(StageStats::sequential("clc:discover", n_events, t0.elapsed()));
                walks
            } else {
                vec![Vec::new(); n]
            };

            let t0 = Instant::now();
            let oc = apply_and_emit(
                &index, &store, maps, &graph, params, &walks, window_events, cancel, &mut mem,
                sink,
            )?;
            stats.stages.push(StageStats {
                name: "clc:apply",
                items: n_events,
                seconds: (t0.elapsed().as_secs_f64() - oc.emit_seconds).max(0.0),
                shards: 1,
                merge_wait_seconds: 0.0,
            });
            stats.stages.push(StageStats {
                name: "emit",
                items: oc.events as usize,
                seconds: oc.emit_seconds,
                shards: oc.frames.max(1),
                merge_wait_seconds: 0.0,
            });
            (oc.out, Some(oc.report), oc.frames, oc.events)
        }
    };

    debug_assert_eq!(mem.cur, 0, "every lane segment returned to the gauge");
    stats.peak_resident_column_bytes = mem.peak;
    stats.total_seconds = t_total.elapsed().as_secs_f64();
    Ok((
        out,
        IncrementalReport { clc, stats, frames, events: events as usize },
    ))
}

#[cfg(test)]
mod tests {
    use super::super::{
        synchronize, PipelineConfig, PreSync, TimestampStorage,
    };
    use super::*;
    use crate::clc::fixtures::mixed_trace;
    use simclock::Dur;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use tracefmt::io::{
        from_binary_columnar, to_binary_columnar_blocked, to_binary_columnar_v3_blocked,
    };
    use tracefmt::{Trace, UniformLatency};

    const LMIN: UniformLatency = UniformLatency(Dur::from_ps(4_000_000));

    fn cfg(clc: Option<ClcParams>) -> PipelineConfig {
        PipelineConfig {
            presync: PreSync::None,
            clc,
            parallel: None,
            storage: TimestampStorage::Columnar,
            ..PipelineConfig::default()
        }
    }

    fn run_incremental(
        bytes: &[u8],
        n: usize,
        cfg: &PipelineConfig,
        window: usize,
    ) -> (Trace, IncrementalReport) {
        let chunks: Vec<&[u8]> = bytes.chunks(37).collect();
        let init = vec![None; n];
        let (out, rep) =
            synchronize_stream_incremental(&chunks, &init, None, &LMIN, cfg, window).unwrap();
        let back = from_binary_columnar(out.concat().into()).unwrap();
        (back, rep)
    }

    /// Compare a re-decoded incremental output against the batch-corrected
    /// trace. Output frames interleave in finalization order, so timeline
    /// order can differ — match timelines by location.
    fn assert_times_match(batch: &Trace, back: &Trace, ctx: &str) {
        assert_eq!(batch.n_procs(), back.n_procs(), "{ctx}: proc count");
        for bp in &batch.procs {
            let wp = back
                .procs
                .iter()
                .find(|p| p.location == bp.location)
                .unwrap_or_else(|| panic!("{ctx}: no timeline at {:?}", bp.location));
            assert_eq!(bp.events.len(), wp.events.len(), "{ctx}: events at {:?}", bp.location);
            for (i, (a, b)) in bp.events.iter().zip(&wp.events).enumerate() {
                assert_eq!(a.kind, b.kind, "{ctx}: kind {i} at {:?}", bp.location);
                assert_eq!(a.time, b.time, "{ctx}: time {i} at {:?}", bp.location);
            }
        }
    }

    #[test]
    fn windowed_matches_batch_for_every_window_size() {
        let base = mixed_trace(4, 12);
        let bytes = to_binary_columnar_v3_blocked(&base, 5);
        let cfg = cfg(Some(ClcParams::default()));

        let mut batch = base.clone();
        let brep = synchronize(&mut batch, &[None; 4], None, &LMIN, &cfg).unwrap();
        let bclc = brep.clc.unwrap();
        let mut bjumps = bclc.jumps.clone();
        bjumps.sort_by_key(|j| (j.event.p(), j.event.i()));

        for window in [1usize, 2, 3, 7, 64, 65_536] {
            let (back, rep) = run_incremental(&bytes, 4, &cfg, window);
            assert_times_match(&batch, &back, &format!("window {window}"));
            let c = rep.clc.expect("clc ran");
            assert_eq!(c.n_jumps(), bjumps.len(), "window {window}: jump count");
            for (a, b) in c.jumps.iter().zip(&bjumps) {
                assert_eq!(a.event, b.event, "window {window}");
                assert_eq!(a.size, b.size, "window {window}");
            }
            assert_eq!(c.max_jump, bclc.max_jump, "window {window}");
            assert_eq!(c.events_moved, bclc.events_moved, "window {window}");
            assert_eq!(c.events_total, bclc.events_total, "window {window}");
            assert_eq!(rep.events, base.n_events(), "window {window}");
            assert!(rep.stats.stage("clc:discover").is_some());
            assert!(rep.stats.stage("emit").is_some());
        }
    }

    #[test]
    fn forward_only_matches_batch() {
        let base = mixed_trace(3, 10);
        let bytes = to_binary_columnar_v3_blocked(&base, 4);
        let params = ClcParams { backward: false, ..ClcParams::default() };
        let cfg = cfg(Some(params));

        let mut batch = base.clone();
        synchronize(&mut batch, &[None; 3], None, &LMIN, &cfg).unwrap();

        for window in [1usize, 6, 1000] {
            let (back, rep) = run_incremental(&bytes, 3, &cfg, window);
            assert_times_match(&batch, &back, &format!("fwd window {window}"));
            assert!(rep.stats.stage("clc:discover").is_none(), "no discover sweep");
        }
    }

    #[test]
    fn v2_stream_roundtrips_through_the_windowed_engine() {
        let base = mixed_trace(3, 8);
        let bytes = to_binary_columnar_blocked(&base, 4);
        let cfg = cfg(Some(ClcParams::default()));

        let mut batch = base.clone();
        synchronize(&mut batch, &[None; 3], None, &LMIN, &cfg).unwrap();

        let (back, _) = run_incremental(&bytes, 3, &cfg, 3);
        assert_times_match(&batch, &back, "v2 window 3");
    }

    #[test]
    fn passthrough_without_clc_preserves_the_trace() {
        let base = mixed_trace(3, 6);
        let bytes = to_binary_columnar_v3_blocked(&base, 4);
        let (back, rep) = run_incremental(&bytes, 3, &cfg(None), 8);
        assert_times_match(&base, &back, "no-clc passthrough");
        assert!(rep.clc.is_none());
        assert!(rep.frames > 0);
        assert_eq!(rep.events, base.n_events());
    }

    #[test]
    fn zero_window_is_rejected() {
        let base = mixed_trace(2, 3);
        let bytes = to_binary_columnar_v3_blocked(&base, 4);
        let chunks: Vec<&[u8]> = vec![&bytes];
        let err = synchronize_stream_incremental(
            &chunks,
            &[None, None],
            None,
            &LMIN,
            &cfg(Some(ClcParams::default())),
            0,
        );
        assert!(matches!(err, Err(PipelineError::BadTrace(_))));
    }

    #[test]
    fn pre_cancelled_token_stops_immediately() {
        let base = mixed_trace(2, 3);
        let bytes = to_binary_columnar_v3_blocked(&base, 4);
        let chunks: Vec<&[u8]> = vec![&bytes];
        let err = synchronize_stream_incremental_with_cancel(
            &chunks,
            &[None, None],
            None,
            &LMIN,
            &cfg(Some(ClcParams::default())),
            16,
            &CancelToken::none().with_flag(Arc::new(AtomicBool::new(true))),
        );
        assert!(matches!(err, Err(PipelineError::Cancelled)));
    }

    #[test]
    fn empty_stream_yields_an_empty_stream() {
        let base = Trace::for_ranks(0);
        let bytes = to_binary_columnar_v3_blocked(&base, 4);
        let chunks: Vec<&[u8]> = vec![&bytes];
        let (out, rep) = synchronize_stream_incremental(
            &chunks,
            &[],
            None,
            &LMIN,
            &cfg(Some(ClcParams::default())),
            16,
        )
        .unwrap();
        assert_eq!(rep.frames, 0);
        assert_eq!(rep.events, 0);
        let back = from_binary_columnar(out.concat().into()).unwrap();
        assert_eq!(back.n_procs(), 0);
    }

    #[test]
    fn small_windows_keep_less_column_state_resident() {
        let base = mixed_trace(4, 200);
        let bytes = to_binary_columnar_v3_blocked(&base, 8);
        let cfg = cfg(Some(ClcParams::default()));
        let (_, small) = run_incremental(&bytes, 4, &cfg, 16);
        let (_, large) = run_incremental(&bytes, 4, &cfg, 65_536);
        let sp = small.stats.peak_resident_column_bytes;
        let lp = large.stats.peak_resident_column_bytes;
        assert!(sp > 0 && lp > 0);
        assert!(
            sp * 4 < lp,
            "expected a much smaller resident peak: window 16 → {sp} B, window 65536 → {lp} B"
        );
    }

    #[test]
    fn local_cycle_is_reported_not_looped() {
        use simclock::Time;
        use tracefmt::{EventKind, Tag};
        let mut t = Trace::for_ranks(1);
        t.procs[0].push(
            Time::from_us(5),
            EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 0 },
        );
        t.procs[0].push(
            Time::from_us(10),
            EventKind::Send { to: Rank(0), tag: Tag(0), bytes: 0 },
        );
        let bytes = to_binary_columnar_v3_blocked(&t, 4);
        let chunks: Vec<&[u8]> = vec![&bytes];
        let err = synchronize_stream_incremental(
            &chunks,
            &[None],
            None,
            &LMIN,
            &cfg(Some(ClcParams::default())),
            16,
        );
        assert!(matches!(err, Err(PipelineError::Clc(ClcError::CyclicTrace))));
    }
}
