//! The end-to-end synchronisation pipeline the paper recommends (§V/§VI):
//! weak pre-synchronisation by linear offset interpolation, then the CLC to
//! remove residual clock-condition violations.
//!
//! [`synchronize`] drives the whole chain on a trace and reports violation
//! counts before, after interpolation, and after the CLC — the numbers the
//! constructive experiments print.
//!
//! # Execution model
//!
//! The pipeline runs sequentially by default. Setting
//! [`PipelineConfig::parallel`] shards the per-rank work — timestamp
//! mapping and the violation censuses — across a scoped worker pool and
//! replaces the serial CLC with the replay-based parallel CLC
//! ([`crate::controlled_logical_clock_parallel`]). Both paths produce
//! **bit-identical** corrected timestamps and reports: the shard merge
//! preserves sequential order, and the parallel CLC re-enacts the serial
//! forward pass exactly.
//!
//! Cross-stage work is computed once and cached: message matching and
//! collective reconstruction are order-based (timestamps never enter
//! them), so one [`TraceAnalysis`] serves every census; the `l_min` model
//! is frozen into a dense [`LatencyTable`] up front so later stages never
//! re-query a potentially expensive model.
//!
//! Every run also returns [`PipelineStats`]: per-stage item counts and
//! throughput, shard counts, and the time the merge side spent waiting on
//! shard results.

mod columnar;
mod parallel;
mod stats;
mod windowed;

pub use parallel::ParallelConfig;
pub use stats::{PipelineStats, StageStats, StageTotals};
pub use windowed::{
    synchronize_stream_incremental, synchronize_stream_incremental_with_cancel,
    synchronize_stream_incremental_with_sink, IncrementalReport,
};

use crate::clc::{ClcError, ClcParams, ClcReport};
use crate::interp::{LinearInterpolation, OffsetAlignment, TimestampMap};
use crate::offset::OffsetMeasurement;
use onlinesync::{KalmanParams, OnlineCorrector, ProbeFix};
use simclock::Time;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tracefmt::io::{CodecError, StreamDecoder, TraceBuilder};
use tracefmt::{
    check_collectives_at, check_p2p_messages_at, match_collectives, match_messages, CensusPlan,
    CollReport, CollectiveInstance, LatencyTable, Matching, MinLatency, P2pReport,
    Rank, TimeSource, Trace, TraceColumns,
};

/// Which pre-synchronisation to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreSync {
    /// Leave timestamps untouched.
    None,
    /// Offset alignment from the initialization measurement only.
    AlignOnly,
    /// Eq. 3 linear interpolation between the init and finalize
    /// measurements (Scalasca's scheme).
    Linear,
}

/// Which timestamp layout the pipeline's hot stages run on.
///
/// Both layouts are guaranteed **bit-identical** in output — corrected
/// timestamps and every violation census. The columnar engine exists
/// purely for throughput: the timestamp-touching stages (presync mapping,
/// CLC amortization, censuses) walk dense `i64` picosecond columns at an
/// 8-byte stride instead of striding over full event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimestampStorage {
    /// Operate on the event records in place (array-of-structs).
    Aos,
    /// Gather timestamps into per-timeline [`TraceColumns`], run every
    /// timestamp stage over dense `&mut [i64]` columns, and scatter the
    /// corrected times back into the records at the end.
    #[default]
    Columnar,
}

/// Which synchronization *method* rewrites the timestamps — the paper's
/// postmortem schemes, or the model-based online corrector.
///
/// The method selects the timestamp-rewriting stages; the censuses around
/// them are method-independent. `Interp` and `Clc` share the presync
/// stage configured by [`PipelineConfig::presync`]; `Online` replaces it
/// (and the CLC) with the recursive filter correction.
#[derive(Debug, Clone, Default)]
pub enum SyncMethod {
    /// Postmortem interpolation only: run the configured presync stage
    /// and stop. [`PipelineConfig::clc`] is ignored.
    Interp,
    /// Postmortem presync followed by the CLC (the default — the exact
    /// behaviour of every earlier revision of this pipeline; the CLC
    /// stage still runs only when [`PipelineConfig::clc`] is `Some`).
    #[default]
    Clc,
    /// Model-based online correction: one per-pair drift Kalman filter
    /// per timeline, fed by that timeline's probe schedule, maps every
    /// timestamp through the filter state current at that event. Presync
    /// and CLC are skipped; the online census lands in
    /// [`PipelineReport::after_presync`].
    Online(OnlineSpec),
}

/// Inputs of [`SyncMethod::Online`]: the per-process probe schedules and
/// the filter tuning.
#[derive(Debug, Clone)]
pub struct OnlineSpec {
    /// Probe schedule per process (index = process). Processes beyond the
    /// end of the vector, or with an empty schedule, get the identity
    /// correction — index 0 (the reference) is normally empty. Behind an
    /// `Arc` so cloning a [`PipelineConfig`] never copies probe data.
    pub probes: Arc<Vec<Vec<OffsetMeasurement>>>,
    /// Filter tuning (process/measurement noise model).
    pub kalman: KalmanParams,
}

impl OnlineSpec {
    /// Spec with the default filter tuning.
    pub fn new(probes: Vec<Vec<OffsetMeasurement>>) -> Self {
        OnlineSpec {
            probes: Arc::new(probes),
            kalman: KalmanParams::default(),
        }
    }

    /// Instantiate the per-timeline correction lanes.
    pub(crate) fn corrector(&self) -> OnlineCorrector {
        OnlineCorrector::new(
            self.probes
                .iter()
                .map(|ps| {
                    ps.iter()
                        .map(|m| ProbeFix::new(m.worker_time, m.offset, m.rtt))
                        .collect()
                })
                .collect(),
            self.kalman,
        )
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Pre-synchronisation stage.
    pub presync: PreSync,
    /// CLC stage (None = skip).
    pub clc: Option<ClcParams>,
    /// Parallel execution (None = sequential, the default). The parallel
    /// path is guaranteed bit-identical to the sequential one.
    pub parallel: Option<ParallelConfig>,
    /// Timestamp storage layout for the hot stages (columnar by default;
    /// bit-identical either way).
    pub storage: TimestampStorage,
    /// Synchronization method (postmortem presync + CLC by default).
    pub method: SyncMethod,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            presync: PreSync::Linear,
            clc: Some(ClcParams::default()),
            parallel: None,
            storage: TimestampStorage::default(),
            method: SyncMethod::default(),
        }
    }
}

impl PipelineConfig {
    /// CLC parameters that will actually run under the configured method.
    pub(crate) fn effective_clc(&self) -> Option<&ClcParams> {
        match self.method {
            SyncMethod::Clc => self.clc.as_ref(),
            _ => None,
        }
    }

    /// The online spec, when the method is [`SyncMethod::Online`].
    pub(crate) fn online(&self) -> Option<&OnlineSpec> {
        match &self.method {
            SyncMethod::Online(spec) => Some(spec),
            _ => None,
        }
    }
}

/// The reconstructed communication structure of a trace: matched
/// point-to-point messages and collective instances.
///
/// Matching uses only per-timeline event *order* (MPI's non-overtaking
/// rule), never timestamps, so the analysis of the raw trace stays valid
/// after every timestamp-rewriting stage — the pipeline computes it once
/// and reuses it for all three censuses.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    /// Matched send/receive pairs (plus any dangling events).
    pub matching: Matching,
    /// Reconstructed collective instances.
    pub instances: Vec<CollectiveInstance>,
}

impl TraceAnalysis {
    /// Reconstruct the communication structure of `trace`.
    pub fn capture(trace: &Trace) -> Result<Self, String> {
        Ok(TraceAnalysis {
            matching: match_messages(trace),
            instances: match_collectives(trace)?,
        })
    }

    /// Census work items: messages plus collective instances.
    fn n_items(&self) -> usize {
        self.matching.messages.len() + self.instances.len()
    }
}

/// Concrete per-process pre-synchronisation map. An enum rather than a
/// boxed trait object so a slice of maps is `Sync` and can be shared by
/// the worker pool without locking.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PresyncMap {
    Identity,
    Align(OffsetAlignment),
    Linear(LinearInterpolation),
}

impl TimestampMap for PresyncMap {
    fn map(&self, t: Time) -> Time {
        match self {
            PresyncMap::Identity => t,
            PresyncMap::Align(m) => m.map(t),
            PresyncMap::Linear(m) => m.map(t),
        }
    }
}

impl PresyncMap {
    /// Apply the map to a dense picosecond column in place.
    ///
    /// The enum dispatch is hoisted out of the loop and each variant runs
    /// its own columnar kernel ([`OffsetAlignment::map_col`] is a packed
    /// integer add, [`LinearInterpolation::map_col`] keeps the exact Eq. 3
    /// float sequence) — both bit-identical to mapping each element
    /// through [`TimestampMap::map`].
    pub(crate) fn map_col(&self, col: &mut [i64]) {
        match self {
            PresyncMap::Identity => {}
            PresyncMap::Align(m) => m.map_col(col),
            PresyncMap::Linear(m) => m.map_col(col),
        }
    }
}

/// Violation census of one pipeline stage.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Point-to-point check.
    pub p2p: P2pReport,
    /// Collective (logical message) check.
    pub coll: CollReport,
}

impl StageReport {
    /// Census a timestamp source (either layout) against a cached analysis
    /// and latency table.
    fn capture_at<S: TimeSource + ?Sized>(
        times: &S,
        analysis: &TraceAnalysis,
        lmin: &dyn MinLatency,
    ) -> Self {
        StageReport {
            p2p: check_p2p_messages_at(times, &analysis.matching.messages, lmin),
            coll: check_collectives_at(times, &analysis.instances, lmin),
        }
    }

    /// Total violated constraints (messages + logical messages).
    pub fn total_violations(&self) -> usize {
        self.p2p.violations.len() + self.coll.logical_violated
    }
}

/// Outcome of the full pipeline.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Census on the raw trace.
    pub raw: StageReport,
    /// Census after pre-synchronisation (equals `raw` when
    /// `PreSync::None`).
    pub after_presync: StageReport,
    /// Census after the CLC (None when the CLC stage was skipped).
    pub after_clc: Option<StageReport>,
    /// CLC statistics (None when skipped).
    pub clc: Option<ClcReport>,
    /// Per-stage throughput and shard instrumentation.
    pub stats: PipelineStats,
}

/// Pipeline failures.
#[derive(Debug, Clone)]
pub enum PipelineError {
    /// A measurement vector does not match the process count.
    BadMeasurements(String),
    /// Trace reconstruction failed.
    BadTrace(String),
    /// The CLC stage failed.
    Clc(ClcError),
    /// Streaming ingest could not decode the trace bytes.
    Codec(CodecError),
    /// The run was cancelled (or its deadline passed) at a cooperative
    /// checkpoint; the trace may be partially rewritten.
    Cancelled,
    /// The requested configuration is not supported by this entry point
    /// (e.g. the online method on the incremental windowed engine).
    Unsupported(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::BadMeasurements(s) => write!(f, "bad measurements: {s}"),
            PipelineError::BadTrace(s) => write!(f, "bad trace: {s}"),
            PipelineError::Clc(e) => write!(f, "CLC failed: {e}"),
            PipelineError::Codec(e) => write!(f, "trace ingest failed: {e}"),
            PipelineError::Cancelled => write!(f, "run cancelled"),
            PipelineError::Unsupported(s) => write!(f, "unsupported configuration: {s}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// An external cancellation source polled at every cooperative checkpoint:
/// return `true` to stop the run there. Services use probes for clock
/// seams (a deadline measured on a virtual clock) and simulation harnesses
/// use them as *yield points* — every probe call marks a schedule decision
/// where a fault (cancellation, injected panic, clock jump) can land
/// deterministically.
pub type CancelProbe = Arc<dyn Fn() -> bool + Send + Sync>;

/// Cooperative cancellation for a pipeline run: an optional shared flag
/// (set by whoever wants the run stopped), an optional deadline, and any
/// number of [`CancelProbe`]s.
///
/// The pipeline polls the token between stages — and, on the streaming
/// path, between input chunks — and bails out with
/// [`PipelineError::Cancelled`] at the next checkpoint after any source
/// trips. Stages themselves run to completion, so a run stops within one
/// stage's latency of the request; nothing is rolled back (callers that
/// need the original timestamps keep their own copy, as [`synchronize`]
/// mutates the trace in place regardless).
#[derive(Clone, Default)]
pub struct CancelToken {
    flag: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
    probes: Vec<CancelProbe>,
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("flag", &self.flag)
            .field("deadline", &self.deadline)
            .field("probes", &self.probes.len())
            .finish()
    }
}

impl CancelToken {
    /// A token that never cancels (what the plain entry points use).
    pub fn none() -> Self {
        CancelToken::default()
    }

    /// Attach a shared cancel flag; setting it to `true` stops the run at
    /// the next checkpoint.
    pub fn with_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.flag = Some(flag);
        self
    }

    /// Attach a deadline; the run stops at the first checkpoint after it.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attach one more [`CancelProbe`]; probes are polled (in attachment
    /// order) at every checkpoint, after the flag and the deadline.
    pub fn with_probe(mut self, probe: CancelProbe) -> Self {
        self.probes.push(probe);
        self
    }

    /// Has the flag been raised, the deadline passed, or a probe tripped?
    pub fn is_cancelled(&self) -> bool {
        if let Some(f) = &self.flag {
            if f.load(Ordering::Relaxed) {
                return true;
            }
        }
        if matches!(self.deadline, Some(d) if Instant::now() >= d) {
            return true;
        }
        self.probes.iter().any(|p| p())
    }

    /// One cooperative checkpoint.
    pub(crate) fn check(&self) -> Result<(), PipelineError> {
        if self.is_cancelled() {
            Err(PipelineError::Cancelled)
        } else {
            Ok(())
        }
    }
}

/// Build the per-process pre-synchronisation maps, or `None` for
/// `PreSync::None`.
fn build_presync_maps(
    presync: PreSync,
    init: &[Option<OffsetMeasurement>],
    fin: Option<&[Option<OffsetMeasurement>]>,
) -> Result<Option<Vec<PresyncMap>>, PipelineError> {
    match presync {
        PreSync::None => Ok(None),
        PreSync::AlignOnly => Ok(Some(
            init.iter()
                .map(|m| match m {
                    Some(m) => PresyncMap::Align(OffsetAlignment::new(m)),
                    None => PresyncMap::Identity,
                })
                .collect(),
        )),
        PreSync::Linear => {
            let fin = fin.ok_or_else(|| {
                PipelineError::BadMeasurements(
                    "linear interpolation requires finalize measurements".into(),
                )
            })?;
            Ok(Some(
                init.iter()
                    .zip(fin)
                    .map(|(a, b)| match (a, b) {
                        (Some(a), Some(b)) => PresyncMap::Linear(LinearInterpolation::new(a, b)),
                        _ => PresyncMap::Identity,
                    })
                    .collect(),
            ))
        }
    }
}

/// Census one stage, sequentially or sharded, and record its stats.
/// Generic over the timestamp layout: `times` is the trace itself on the
/// AoS path and the gathered [`TraceColumns`] on the columnar path.
fn census_stage<S: TimeSource + Sync>(
    name: &'static str,
    times: &S,
    analysis: &TraceAnalysis,
    table: &LatencyTable,
    par: Option<&ParallelConfig>,
    stats: &mut PipelineStats,
) -> StageReport {
    let t0 = Instant::now();
    match par {
        None => {
            let rep = StageReport::capture_at(times, analysis, table);
            stats
                .stages
                .push(StageStats::sequential(name, analysis.n_items(), t0.elapsed()));
            rep
        }
        Some(par) => {
            let (rep, items, shards, wait) = parallel::census_sharded(times, analysis, table, par);
            stats
                .stages
                .push(StageStats::sharded(name, items, t0.elapsed(), shards, wait));
            rep
        }
    }
}

/// [`census_stage`] over a frozen [`CensusPlan`]: borrow the columns' slab
/// as the plan's gather array (zero copies), then run the chunked
/// branchless census kernels (sequentially or range-sharded). The reports
/// are bit-identical to the reference `capture_at` path, which the AoS
/// engine keeps using — the differential tests compare the two end to end.
fn census_stage_planned(
    name: &'static str,
    plan: &CensusPlan,
    cols: &TraceColumns,
    par: Option<&ParallelConfig>,
    stats: &mut PipelineStats,
) -> StageReport {
    let t0 = Instant::now();
    let flat = plan.flat_of(cols);
    let n_items = plan.n_messages() + plan.n_instances();
    match par {
        None => {
            let rep = StageReport {
                p2p: plan.p2p_census(flat),
                coll: plan.collective_census(flat),
            };
            stats
                .stages
                .push(StageStats::sequential(name, n_items, t0.elapsed()));
            rep
        }
        Some(par) => {
            let (rep, items, shards, wait) = parallel::census_sharded_planned(plan, flat, par);
            stats
                .stages
                .push(StageStats::sharded(name, items, t0.elapsed(), shards, wait));
            rep
        }
    }
}

/// The stage outputs shared by both storage engines: raw census, presync
/// census, and the optional CLC census + report.
type StageOutcomes = (
    StageReport,
    StageReport,
    Option<StageReport>,
    Option<ClcReport>,
);

/// Run the pipeline on `trace` in place.
///
/// `init[p]` / `fin[p]` are the offset measurements of process `p` taken at
/// program initialization and finalization (`None` entries for the master,
/// which is never remapped). `fin` may be `None` as a whole when only
/// alignment is requested.
pub fn synchronize(
    trace: &mut Trace,
    init: &[Option<OffsetMeasurement>],
    fin: Option<&[Option<OffsetMeasurement>]>,
    lmin: &dyn MinLatency,
    cfg: &PipelineConfig,
) -> Result<PipelineReport, PipelineError> {
    synchronize_impl(trace, None, init, fin, lmin, cfg, &CancelToken::none())
}

/// [`synchronize`] with a cooperative [`CancelToken`], polled between
/// stages. Long-running services use this to enforce per-job deadlines and
/// user cancellation without tearing down the worker pool.
pub fn synchronize_with_cancel(
    trace: &mut Trace,
    init: &[Option<OffsetMeasurement>],
    fin: Option<&[Option<OffsetMeasurement>]>,
    lmin: &dyn MinLatency,
    cfg: &PipelineConfig,
    cancel: &CancelToken,
) -> Result<PipelineReport, PipelineError> {
    synchronize_impl(trace, None, init, fin, lmin, cfg, cancel)
}

/// Stream-decode a columnar binary trace (the `DTC2` format of
/// [`tracefmt::io::to_binary_columnar`]) chunk by chunk and run the
/// pipeline on the result.
///
/// Unlike decode-then-[`synchronize`], the input never has to be resident
/// as one contiguous buffer: each chunk (any size — a read buffer, a
/// network packet) is fed to the incremental [`StreamDecoder`], and the
/// timestamp columns it produces feed the columnar engine directly, so the
/// gather pass over the materialized records is skipped as well. The
/// decode cost is recorded as an `"ingest"` stage in
/// [`PipelineStats`] (items = events decoded, shards = blocks decoded).
///
/// Returns the decoded, synchronized trace alongside the report.
pub fn synchronize_stream<'a>(
    chunks: impl IntoIterator<Item = &'a [u8]>,
    init: &[Option<OffsetMeasurement>],
    fin: Option<&[Option<OffsetMeasurement>]>,
    lmin: &dyn MinLatency,
    cfg: &PipelineConfig,
) -> Result<(Trace, PipelineReport), PipelineError> {
    synchronize_stream_with_cancel(chunks, init, fin, lmin, cfg, &CancelToken::none())
}

/// [`synchronize_stream`] with a cooperative [`CancelToken`], polled
/// between input chunks during ingest and between pipeline stages after.
pub fn synchronize_stream_with_cancel<'a>(
    chunks: impl IntoIterator<Item = &'a [u8]>,
    init: &[Option<OffsetMeasurement>],
    fin: Option<&[Option<OffsetMeasurement>]>,
    lmin: &dyn MinLatency,
    cfg: &PipelineConfig,
    cancel: &CancelToken,
) -> Result<(Trace, PipelineReport), PipelineError> {
    let t0 = Instant::now();
    let mut decoder = StreamDecoder::new();
    let mut builder = TraceBuilder::new();
    for chunk in chunks {
        cancel.check()?;
        decoder
            .feed_into(chunk, &mut builder)
            .map_err(PipelineError::Codec)?;
    }
    let blocks = decoder.blocks_decoded() as usize;
    decoder.finish().map_err(PipelineError::Codec)?;
    let (mut trace, cols) = builder.finish_parts();
    let ingest = StageStats::sharded("ingest", cols.n_events(), t0.elapsed(), blocks, Duration::ZERO);
    let report = synchronize_impl(&mut trace, Some((cols, ingest)), init, fin, lmin, cfg, cancel)?;
    Ok((trace, report))
}

/// Shared driver behind [`synchronize`] and [`synchronize_stream`]:
/// validate, freeze the latency table, reconstruct the communication
/// structure, then hand the timestamp-touching stages to the configured
/// storage engine.
#[allow(clippy::too_many_arguments)]
fn synchronize_impl(
    trace: &mut Trace,
    ingested: Option<(TraceColumns, StageStats)>,
    init: &[Option<OffsetMeasurement>],
    fin: Option<&[Option<OffsetMeasurement>]>,
    lmin: &dyn MinLatency,
    cfg: &PipelineConfig,
    cancel: &CancelToken,
) -> Result<PipelineReport, PipelineError> {
    let t_total = Instant::now();
    cancel.check()?;
    let n = trace.n_procs();
    if init.len() != n {
        return Err(PipelineError::BadMeasurements(format!(
            "init has {} entries for {} procs",
            init.len(),
            n
        )));
    }
    if let Some(f) = fin {
        if f.len() != n {
            return Err(PipelineError::BadMeasurements(format!(
                "fin has {} entries for {} procs",
                f.len(),
                n
            )));
        }
    }
    let par = cfg.parallel.as_ref();
    let mut stats = PipelineStats {
        workers: par.map_or(1, ParallelConfig::effective_workers),
        ..PipelineStats::default()
    };
    let pre_cols = match ingested {
        Some((cols, ingest_stats)) => {
            stats.stages.push(ingest_stats);
            Some(cols)
        }
        None => None,
    };
    let n_events = trace.n_events();

    // Freeze the latency model into a dense table, shared by every stage.
    // The table is quadratic in the largest rank id, so bound it first:
    // decoders already reject absurd header ids, but a trace built in
    // memory can carry any `Rank`, and a sparse id orders of magnitude
    // beyond the process count is corruption, not topology.
    let ranks: Vec<Rank> = trace.procs.iter().map(|p| p.location.rank).collect();
    let max_rank = ranks.iter().map(|r| r.idx()).max().unwrap_or(0);
    let rank_ceiling = trace.procs.len().saturating_mul(8).max(1 << 12);
    if max_rank >= rank_ceiling {
        return Err(PipelineError::BadTrace(format!(
            "rank id {max_rank} out of range for a {}-process trace",
            trace.procs.len()
        )));
    }
    let table = LatencyTable::freeze(lmin, &ranks);

    // Reconstruct the communication structure once; every census reuses it
    // (matching is order-based, so timestamp rewrites cannot invalidate
    // it). With a real worker pool the per-rank scans shard over it.
    cancel.check()?;
    let t0 = Instant::now();
    let sharded_match = par.is_some_and(|p| p.effective_workers() >= 2);
    let analysis = if sharded_match {
        let (analysis, shards, wait) =
            parallel::capture_analysis_sharded(trace, par.expect("sharded implies parallel"))
                .map_err(PipelineError::BadTrace)?;
        stats
            .stages
            .push(StageStats::sharded("match", n_events, t0.elapsed(), shards, wait));
        analysis
    } else {
        let analysis = TraceAnalysis::capture(trace).map_err(PipelineError::BadTrace)?;
        stats
            .stages
            .push(StageStats::sequential("match", n_events, t0.elapsed()));
        analysis
    };

    // Lower the analysis into the CSR dependency graph whenever a CLC
    // engine that consumes it will run (the columnar kernels and the
    // batched replay; the sequential AoS path keeps the map-based
    // reference implementation). The method gates this: Interp and
    // Online never run a CLC, whatever `cfg.clc` says.
    let replay = sharded_match;
    let graph = if cfg.effective_clc().is_some()
        && (cfg.storage == TimestampStorage::Columnar || replay)
    {
        let t0 = Instant::now();
        let g = crate::clc::graph::DepGraph::from_trace(
            trace,
            &analysis.matching,
            &analysis.instances,
            &table,
        );
        stats
            .stages
            .push(StageStats::sequential("lower", n_events, t0.elapsed()));
        Some(g)
    } else {
        None
    };

    // The online method replaces presync wholesale; don't demand
    // finalize measurements it will never read.
    let maps = if cfg.online().is_some() {
        None
    } else {
        build_presync_maps(cfg.presync, init, fin)?
    };
    cancel.check()?;

    let (raw, after_presync, after_clc, clc) = match cfg.storage {
        TimestampStorage::Aos => run_aos(
            trace, maps, &analysis, graph.as_ref(), &table, cfg, cancel, &mut stats,
        )?,
        TimestampStorage::Columnar => columnar::run(
            trace, pre_cols, maps, &analysis, graph.as_ref(), &table, cfg, cancel, &mut stats,
        )?,
    };

    stats.total_seconds = t_total.elapsed().as_secs_f64();
    Ok(PipelineReport {
        raw,
        after_presync,
        after_clc,
        clc,
        stats,
    })
}

/// The array-of-structs engine: every timestamp-touching stage operates on
/// the event records in place. `graph` is the pre-lowered CSR dependency
/// graph, present whenever the replay CLC will need it.
#[allow(clippy::too_many_arguments)]
fn run_aos(
    trace: &mut Trace,
    maps: Option<Vec<PresyncMap>>,
    analysis: &TraceAnalysis,
    graph: Option<&crate::clc::graph::DepGraph>,
    table: &LatencyTable,
    cfg: &PipelineConfig,
    cancel: &CancelToken,
    stats: &mut PipelineStats,
) -> Result<StageOutcomes, PipelineError> {
    let par = cfg.parallel.as_ref();
    let n_events = trace.n_events();
    let n = trace.n_procs();

    let raw = census_stage("census:raw", &*trace, analysis, table, par, stats);

    // Online correction replaces presync: one stateful lane per timeline,
    // probes interleaved by worker time. The lanes are inherently
    // sequential *within* a timeline (filter state), and `map_times`
    // visits timelines one after another in event order, so this stage
    // always runs on one thread; the censuses still shard.
    if let Some(spec) = cfg.online() {
        cancel.check()?;
        let t0 = Instant::now();
        let mut corr = spec.corrector();
        trace.map_times(|p, t| Time::from_ps(corr.map_next(p, t.as_ps())));
        stats
            .stages
            .push(StageStats::sequential("online", n_events, t0.elapsed()));
        let after_online = census_stage("census:online", &*trace, analysis, table, par, stats);
        return Ok((raw, after_online, None, None));
    }

    // Pre-synchronisation.
    let after_presync = match maps {
        None => raw.clone(),
        Some(maps) => {
            cancel.check()?;
            let t0 = Instant::now();
            match par {
                None => {
                    trace.map_times(|p, t| maps[p].map(t));
                    stats
                        .stages
                        .push(StageStats::sequential("presync", n_events, t0.elapsed()));
                }
                Some(par) => {
                    let (items, shards, wait) = parallel::apply_maps_sharded(trace, &maps, par);
                    stats
                        .stages
                        .push(StageStats::sharded("presync", items, t0.elapsed(), shards, wait));
                }
            }
            census_stage("census:presync", &*trace, analysis, table, par, stats)
        }
    };

    // CLC cleanup (gated on the method: Interp stops after presync).
    let (after_clc, clc) = match cfg.effective_clc() {
        None => (None, None),
        Some(params) => {
            cancel.check()?;
            let t0 = Instant::now();
            // The replay-based parallel CLC runs one worker per process
            // timeline over the pre-lowered CSR graph and is bit-identical
            // to the serial one. With a single-worker pool the replay
            // threads would only time-slice one core, so the serial
            // map-based CLC (the reference implementation) runs instead —
            // same output. The replay wait is the workers' summed stall
            // time on remote dependencies.
            let replay = par.is_some_and(|p| p.effective_workers() >= 2);
            let (rep, wait) = if replay {
                let graph = graph.expect("graph lowered whenever replay runs");
                crate::clc::parallel::controlled_logical_clock_parallel_with_graph(
                    trace, graph, params,
                )
                .map_err(PipelineError::Clc)?
            } else {
                // Feed the cached analysis into the CLC instead of letting
                // it re-match the trace (matching is order-based, so the
                // presync timestamp rewrite cannot have invalidated it).
                let deps = crate::clc::deps_from_parts(&analysis.matching, &analysis.instances);
                let rep = crate::clc::controlled_logical_clock_with_deps(
                    trace, &deps, table, params,
                )
                .map_err(PipelineError::Clc)?;
                (rep, Duration::ZERO)
            };
            stats.stages.push(StageStats::sharded(
                "clc",
                n_events,
                t0.elapsed(),
                if replay { n } else { 1 },
                wait,
            ));
            let census = census_stage("census:clc", &*trace, analysis, table, par, stats);
            (Some(census), Some(rep))
        }
    };

    Ok((raw, after_presync, after_clc, clc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::{Dur, Time};
    use tracefmt::{EventKind, Rank, Tag, UniformLatency};

    const LMIN: UniformLatency = UniformLatency(Dur::from_ps(4_000_000));

    /// Worker clock +500 µs ahead; messages both directions with 10 µs true
    /// transfer. Raw trace: master→worker messages look "too long"
    /// (510 µs), worker→master messages look reversed (−490 µs).
    fn skewed_trace() -> Trace {
        let mut t = Trace::for_ranks(2);
        let off = 500;
        for k in 0..10 {
            let base = k * 1000;
            t.procs[0].push(
                Time::from_us(base),
                EventKind::Send { to: Rank(1), tag: Tag(k as u32), bytes: 0 },
            );
            t.procs[1].push(
                Time::from_us(base + 10 + off),
                EventKind::Recv { from: Rank(0), tag: Tag(k as u32), bytes: 0 },
            );
            t.procs[1].push(
                Time::from_us(base + 500 + off),
                EventKind::Send { to: Rank(0), tag: Tag(1000 + k as u32), bytes: 0 },
            );
            t.procs[0].push(
                Time::from_us(base + 510),
                EventKind::Recv { from: Rank(1), tag: Tag(1000 + k as u32), bytes: 0 },
            );
        }
        t
    }

    fn measurements(offset_us: i64, w: i64) -> Option<OffsetMeasurement> {
        Some(OffsetMeasurement {
            worker_time: Time::from_us(w),
            offset: Dur::from_us(offset_us),
            rtt: Dur::from_us(10),
        })
    }

    #[test]
    fn full_pipeline_repairs_everything() {
        let mut t = skewed_trace();
        // Measured offsets: master - worker = -500 µs (accurate).
        let init = vec![None, measurements(-500, 0)];
        let fin = vec![None, measurements(-500, 10_000)];
        let rep = synchronize(
            &mut t,
            &init,
            Some(&fin),
            &LMIN,
            &PipelineConfig::default(),
        )
        .unwrap();
        // Raw trace: the 10 worker→master messages are reversed.
        assert_eq!(rep.raw.p2p.reversed, 10);
        // Interpolation with accurate offsets already fixes them.
        assert_eq!(rep.after_presync.total_violations(), 0);
        let after = rep.after_clc.unwrap();
        assert_eq!(after.total_violations(), 0);
    }

    #[test]
    fn clc_rescues_inaccurate_interpolation() {
        let mut t = skewed_trace();
        // Offset measurements off by 30 µs (asymmetric probe error): the
        // interpolation leaves violations behind; the CLC must clear them.
        let init = vec![None, measurements(-530, 0)];
        let fin = vec![None, measurements(-530, 10_000)];
        let rep = synchronize(
            &mut t,
            &init,
            Some(&fin),
            &LMIN,
            &PipelineConfig::default(),
        )
        .unwrap();
        assert!(
            rep.after_presync.total_violations() > 0,
            "expected residual violations after bad interpolation"
        );
        assert_eq!(rep.after_clc.unwrap().total_violations(), 0);
        assert!(rep.clc.unwrap().n_jumps() > 0);
    }

    #[test]
    fn align_only_without_finalize() {
        let mut t = skewed_trace();
        let init = vec![None, measurements(-500, 0)];
        let cfg = PipelineConfig {
            presync: PreSync::AlignOnly,
            clc: None,
            parallel: None,
            ..Default::default()
        };
        let rep = synchronize(&mut t, &init, None, &LMIN, &cfg).unwrap();
        assert_eq!(rep.after_presync.total_violations(), 0);
        assert!(rep.after_clc.is_none());
    }

    #[test]
    fn linear_without_finalize_is_an_error() {
        let mut t = skewed_trace();
        let init = vec![None, measurements(-500, 0)];
        let err = synchronize(&mut t, &init, None, &LMIN, &PipelineConfig::default());
        assert!(matches!(err, Err(PipelineError::BadMeasurements(_))));
    }

    #[test]
    fn wrong_measurement_count_is_an_error() {
        let mut t = skewed_trace();
        let err = synchronize(&mut t, &[], None, &LMIN, &PipelineConfig::default());
        assert!(matches!(err, Err(PipelineError::BadMeasurements(_))));
    }

    /// The core differential guarantee, on the canonical small fixture:
    /// the parallel path must be bit-identical to the sequential one.
    #[test]
    fn parallel_path_is_bit_identical() {
        for workers in [1, 2, 4] {
            let init = vec![None, measurements(-530, 0)];
            let fin = vec![None, measurements(-530, 10_000)];

            let mut seq_trace = skewed_trace();
            let seq = synchronize(
                &mut seq_trace,
                &init,
                Some(&fin),
                &LMIN,
                &PipelineConfig::default(),
            )
            .unwrap();

            let mut par_trace = skewed_trace();
            let cfg = PipelineConfig {
                parallel: Some(ParallelConfig { workers, shard_size: 3 }),
                ..PipelineConfig::default()
            };
            let par = synchronize(&mut par_trace, &init, Some(&fin), &LMIN, &cfg).unwrap();

            for (p, (a, b)) in seq_trace.procs.iter().zip(&par_trace.procs).enumerate() {
                for (i, (ea, eb)) in a.events.iter().zip(&b.events).enumerate() {
                    assert_eq!(ea.time, eb.time, "proc {p} event {i} with {workers} workers");
                }
            }
            assert_eq!(seq.raw.p2p.reversed, par.raw.p2p.reversed);
            assert_eq!(
                seq.after_presync.total_violations(),
                par.after_presync.total_violations()
            );
            assert_eq!(
                seq.after_clc.unwrap().total_violations(),
                par.after_clc.unwrap().total_violations()
            );
            assert_eq!(par.stats.workers, workers.max(1));
        }
    }

    #[test]
    fn stats_account_for_all_events() {
        let mut t = skewed_trace();
        let n_events = t.n_events();
        let init = vec![None, measurements(-500, 0)];
        let fin = vec![None, measurements(-500, 10_000)];
        let cfg = PipelineConfig {
            parallel: Some(ParallelConfig { workers: 2, shard_size: 4 }),
            ..PipelineConfig::default()
        };
        let rep = synchronize(&mut t, &init, Some(&fin), &LMIN, &cfg).unwrap();
        let presync = rep.stats.stage("presync").unwrap();
        // Shard accounting: per-shard counts must sum to the event total.
        assert_eq!(presync.items, n_events);
        // 40 events over 2 procs in shards of 4 → 10 shards.
        assert_eq!(presync.shards, 10);
        // Sharded analysis: the match stage scans every event and reports
        // the shard count of its parallel rounds.
        let m = rep.stats.stage("match").unwrap();
        assert_eq!(m.items, n_events);
        assert!(m.shards >= 2, "sharded match ran {} shard(s)", m.shards);
        // CSR lowering runs whenever the CLC does on this path.
        assert_eq!(rep.stats.stage("lower").unwrap().items, n_events);
        // Replay CLC: one worker per timeline, every event replayed once.
        let clc = rep.stats.stage("clc").unwrap();
        assert_eq!(clc.items, n_events);
        assert_eq!(clc.shards, t.n_procs());
        assert!(rep.stats.stage("census:raw").is_some());
        assert!(rep.stats.stage("census:presync").is_some());
        assert!(rep.stats.stage("census:clc").is_some());
    }

    #[test]
    fn pre_cancelled_token_stops_the_run_immediately() {
        let mut t = skewed_trace();
        let init = vec![None, measurements(-500, 0)];
        let fin = vec![None, measurements(-500, 10_000)];
        let flag = Arc::new(AtomicBool::new(true));
        let before: Vec<i64> = t.procs[1].events.iter().map(|e| e.time.as_ps()).collect();
        let err = synchronize_with_cancel(
            &mut t,
            &init,
            Some(&fin),
            &LMIN,
            &PipelineConfig::default(),
            &CancelToken::none().with_flag(flag),
        );
        assert!(matches!(err, Err(PipelineError::Cancelled)));
        // Cancelled at the entry checkpoint: nothing was rewritten yet.
        let after: Vec<i64> = t.procs[1].events.iter().map(|e| e.time.as_ps()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn expired_deadline_cancels_both_storage_engines() {
        for storage in [TimestampStorage::Aos, TimestampStorage::Columnar] {
            let mut t = skewed_trace();
            let init = vec![None, measurements(-500, 0)];
            let fin = vec![None, measurements(-500, 10_000)];
            let cfg = PipelineConfig { storage, ..PipelineConfig::default() };
            let err = synchronize_with_cancel(
                &mut t,
                &init,
                Some(&fin),
                &LMIN,
                &cfg,
                &CancelToken::none().with_deadline(Instant::now() - Duration::from_millis(1)),
            );
            assert!(
                matches!(err, Err(PipelineError::Cancelled)),
                "{storage:?}: expected Cancelled, got {err:?}"
            );
        }
    }

    #[test]
    fn unarmed_token_never_cancels() {
        let token = CancelToken::none();
        assert!(!token.is_cancelled());
        let mut t = skewed_trace();
        let init = vec![None, measurements(-500, 0)];
        let fin = vec![None, measurements(-500, 10_000)];
        let rep = synchronize_with_cancel(
            &mut t,
            &init,
            Some(&fin),
            &LMIN,
            &PipelineConfig::default(),
            &token,
        )
        .unwrap();
        assert_eq!(rep.after_clc.unwrap().total_violations(), 0);
    }

    /// Probe schedule matching `skewed_trace`'s worker: master − worker
    /// is exactly −500 µs the whole run.
    fn worker_probes() -> Vec<Vec<OffsetMeasurement>> {
        let probe = |w_us: i64| OffsetMeasurement {
            worker_time: Time::from_us(w_us),
            offset: Dur::from_us(-500),
            rtt: Dur::from_us(10),
        };
        vec![Vec::new(), vec![probe(0), probe(5_000), probe(11_000)]]
    }

    #[test]
    fn interp_method_skips_the_clc_even_when_configured() {
        let mut t = skewed_trace();
        let init = vec![None, measurements(-530, 0)];
        let fin = vec![None, measurements(-530, 10_000)];
        let cfg = PipelineConfig {
            method: SyncMethod::Interp,
            clc: Some(ClcParams::default()),
            ..PipelineConfig::default()
        };
        let rep = synchronize(&mut t, &init, Some(&fin), &LMIN, &cfg).unwrap();
        // Inaccurate probes leave residual violations — and with the
        // interp method nothing cleans them up.
        assert!(rep.after_presync.total_violations() > 0);
        assert!(rep.after_clc.is_none());
        assert!(rep.clc.is_none());
        assert!(rep.stats.stage("clc").is_none());
        assert!(rep.stats.stage("lower").is_none());
    }

    #[test]
    fn online_method_corrects_through_the_filter() {
        for storage in [TimestampStorage::Aos, TimestampStorage::Columnar] {
            let mut t = skewed_trace();
            let cfg = PipelineConfig {
                method: SyncMethod::Online(OnlineSpec::new(worker_probes())),
                storage,
                ..PipelineConfig::default()
            };
            // No init/fin interpolation data at all: the online method
            // must not demand finalize measurements.
            let rep = synchronize(&mut t, &[None, None], None, &LMIN, &cfg).unwrap();
            assert_eq!(rep.raw.p2p.reversed, 10, "{storage:?}");
            assert_eq!(
                rep.after_presync.total_violations(),
                0,
                "{storage:?}: online census"
            );
            assert!(rep.after_clc.is_none() && rep.clc.is_none());
            assert!(rep.stats.stage("online").is_some());
            assert!(rep.stats.stage("census:online").is_some());
            assert!(rep.stats.stage("presync").is_none());
            assert!(rep.stats.stage("clc").is_none());
        }
    }

    #[test]
    fn online_method_is_bit_identical_across_storages_and_workers() {
        let run = |storage, workers: Option<usize>| {
            let mut t = skewed_trace();
            let cfg = PipelineConfig {
                method: SyncMethod::Online(OnlineSpec::new(worker_probes())),
                storage,
                parallel: workers.map(|w| ParallelConfig { workers: w, shard_size: 3 }),
                ..PipelineConfig::default()
            };
            let rep = synchronize(&mut t, &[None, None], None, &LMIN, &cfg).unwrap();
            (t, rep)
        };
        let (ref_trace, ref_rep) = run(TimestampStorage::Aos, None);
        for storage in [TimestampStorage::Aos, TimestampStorage::Columnar] {
            for workers in [None, Some(2)] {
                let (t, rep) = run(storage, workers);
                for (p, (a, b)) in ref_trace.procs.iter().zip(&t.procs).enumerate() {
                    for (i, (ea, eb)) in a.events.iter().zip(&b.events).enumerate() {
                        assert_eq!(
                            ea.time, eb.time,
                            "proc {p} event {i}: {storage:?} workers={workers:?}"
                        );
                    }
                }
                assert_eq!(
                    ref_rep.after_presync.total_violations(),
                    rep.after_presync.total_violations()
                );
            }
        }
    }

    #[test]
    fn online_method_keeps_timelines_monotone() {
        // A probe schedule that swings the offset estimate down sharply
        // mid-run must not reorder any timeline against itself.
        let mut t = skewed_trace();
        let probes = vec![
            Vec::new(),
            vec![
                OffsetMeasurement {
                    worker_time: Time::from_us(0),
                    offset: Dur::from_us(400),
                    rtt: Dur::from_us(4),
                },
                OffsetMeasurement {
                    worker_time: Time::from_us(5_000),
                    offset: Dur::from_us(-900),
                    rtt: Dur::from_us(4),
                },
            ],
        ];
        let cfg = PipelineConfig {
            method: SyncMethod::Online(OnlineSpec::new(probes)),
            ..PipelineConfig::default()
        };
        synchronize(&mut t, &[None, None], None, &LMIN, &cfg).unwrap();
        assert!(t.is_locally_monotone(), "online correction broke local order");
    }

    #[test]
    fn presync_none_skips_presync_stage() {
        let mut t = skewed_trace();
        let init = vec![None, None];
        let cfg = PipelineConfig {
            presync: PreSync::None,
            clc: None,
            parallel: None,
            ..Default::default()
        };
        let rep = synchronize(&mut t, &init, None, &LMIN, &cfg).unwrap();
        assert!(rep.stats.stage("presync").is_none());
        assert_eq!(
            rep.raw.total_violations(),
            rep.after_presync.total_violations()
        );
    }
}
