//! Columnar execution of the pipeline's timestamp-touching stages.
//!
//! The stages between the censuses only ever read and write *timestamps*;
//! the kind/args payload of each event is dead weight in their working
//! set. This engine gathers the timestamps into dense per-timeline
//! [`TraceColumns`] once, runs pre-synchronisation mapping, the CLC and
//! all three censuses over `&[i64]` / `&mut [i64]` picosecond columns, and
//! scatters the corrected times back into the event records at the end.
//!
//! Equivalence with the AoS engine is structural, not approximate:
//!
//! * the presync map applies the same [`TimestampMap`] arithmetic per
//!   element ([`PresyncMap::map_col`] only hoists the enum dispatch);
//! * the censuses are the same generic code, instantiated with a
//!   [`TraceColumns`] `TimeSource` instead of the trace;
//! * the columnar CLC kernels are statement-level ports of the AoS ones
//!   (differentially tested in `clc::columnar`).
//!
//! [`TimestampMap`]: crate::interp::TimestampMap
//! [`PresyncMap::map_col`]: super::PresyncMap::map_col

use super::{
    census_stage_planned, parallel, CancelToken, PipelineConfig, PipelineError, PipelineStats,
    PresyncMap, StageOutcomes, StageStats, TraceAnalysis,
};
use crate::clc::graph::DepGraph;
use std::time::{Duration, Instant};
use tracefmt::{CensusPlan, LatencyTable, Trace, TraceColumns};

/// Run the timestamp stages on gathered columns.
///
/// `pre_cols` carries columns produced by streaming ingest (already
/// recorded as an `"ingest"` stage); when absent, a `"gather"` stage
/// builds them from the trace. `graph` is the pre-lowered CSR dependency
/// graph (always present when a CLC will actually run under the
/// configured method). The trace's records are only touched again by the
/// final `"scatter"` stage.
#[allow(clippy::too_many_arguments)]
pub(super) fn run(
    trace: &mut Trace,
    pre_cols: Option<TraceColumns>,
    maps: Option<Vec<PresyncMap>>,
    analysis: &TraceAnalysis,
    graph: Option<&DepGraph>,
    table: &LatencyTable,
    cfg: &PipelineConfig,
    cancel: &CancelToken,
    stats: &mut PipelineStats,
) -> Result<StageOutcomes, PipelineError> {
    let par = cfg.parallel.as_ref();
    let n_events = trace.n_events();
    let n = trace.n_procs();

    let mut cols = match pre_cols {
        Some(cols) => cols,
        None => {
            let t0 = Instant::now();
            let cols = TraceColumns::gather(trace);
            stats
                .stages
                .push(StageStats::sequential("gather", n_events, t0.elapsed()));
            cols
        }
    };
    // Batch residency: every timeline's full i64 lane is live at once.
    stats.peak_resident_column_bytes = 8 * n_events as u64;

    // Freeze the timestamp-independent census state once: event ids
    // resolved to flat-array offsets, bounds baked into dense lanes,
    // collectives expanded into logical messages. All three censuses then
    // run the same chunked branchless kernels over snapshots of the
    // columns. (The AoS engine keeps the reference per-item checks, so the
    // differential tests exercise both implementations.)
    let t0 = Instant::now();
    let plan = CensusPlan::for_columns(
        &cols,
        &analysis.matching.messages,
        &analysis.instances,
        table,
    )
    .map_err(|e| PipelineError::BadTrace(e.to_string()))?;
    stats
        .stages
        .push(StageStats::sequential("plan", analysis.n_items(), t0.elapsed()));

    let raw = census_stage_planned("census:raw", &plan, &cols, par, stats);

    // Online correction replaces presync and the CLC: stateful lanes over
    // the dense columns, one timeline after another — the exact same
    // per-timeline call sequence as the AoS engine's `map_times` walk, so
    // the two layouts stay bit-identical. Sequential by construction
    // (filter state); the censuses still shard.
    if let Some(spec) = cfg.online() {
        cancel.check()?;
        let t0 = Instant::now();
        let mut corr = spec.corrector();
        for (p, col) in cols.iter_mut_slices() {
            let lane = corr.lane_mut(p);
            for t in col.iter_mut() {
                *t = lane.map_next(*t);
            }
        }
        stats
            .stages
            .push(StageStats::sequential("online", n_events, t0.elapsed()));
        let after_online = census_stage_planned("census:online", &plan, &cols, par, stats);
        let t0 = Instant::now();
        cols.scatter_into(trace);
        stats
            .stages
            .push(StageStats::sequential("scatter", n_events, t0.elapsed()));
        return Ok((raw, after_online, None, None));
    }

    // Pre-synchronisation: tight per-column loops.
    let after_presync = match maps {
        None => raw.clone(),
        Some(maps) => {
            cancel.check()?;
            let t0 = Instant::now();
            match par {
                None => {
                    for (p, col) in cols.iter_mut_slices() {
                        maps[p].map_col(col);
                    }
                    stats
                        .stages
                        .push(StageStats::sequential("presync", n_events, t0.elapsed()));
                }
                Some(par) => {
                    let (items, shards, wait) =
                        parallel::apply_maps_sharded_cols(&mut cols, &maps, par);
                    stats
                        .stages
                        .push(StageStats::sharded("presync", items, t0.elapsed(), shards, wait));
                }
            }
            census_stage_planned("census:presync", &plan, &cols, par, stats)
        }
    };

    // CLC cleanup on the columns (gated on the method: Interp stops
    // after presync).
    let (after_clc, clc) = match cfg.effective_clc() {
        None => (None, None),
        Some(params) => {
            cancel.check()?;
            let t0 = Instant::now();
            let graph = graph.expect("graph lowered whenever the columnar CLC runs");
            // Same replay policy as the AoS engine: one replay thread per
            // timeline only pays off with a real worker pool. The replay
            // wait is the workers' summed stall time on remote bounds.
            let replay = par.is_some_and(|p| p.effective_workers() >= 2);
            let (rep, wait) = if replay {
                crate::clc::replay::controlled_logical_clock_replay_csr(&mut cols, graph, params)
                    .map_err(PipelineError::Clc)?
            } else {
                let rep = crate::clc::columnar::controlled_logical_clock_columnar_csr(
                    &mut cols, graph, params,
                )
                .map_err(PipelineError::Clc)?;
                (rep, Duration::ZERO)
            };
            stats.stages.push(StageStats::sharded(
                "clc",
                n_events,
                t0.elapsed(),
                if replay { n } else { 1 },
                wait,
            ));
            let census = census_stage_planned("census:clc", &plan, &cols, par, stats);
            (Some(census), Some(rep))
        }
    };

    // Write the corrected timestamps back into the event records.
    let t0 = Instant::now();
    cols.scatter_into(trace);
    stats
        .stages
        .push(StageStats::sequential("scatter", n_events, t0.elapsed()));

    Ok((raw, after_presync, after_clc, clc))
}
