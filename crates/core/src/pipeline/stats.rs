//! Pipeline instrumentation: per-stage throughput, shard accounting, and
//! merge wait times.

use std::collections::BTreeMap;
use std::time::Duration;

/// Instrumentation of one pipeline stage.
#[derive(Debug, Clone)]
pub struct StageStats {
    /// Stage name (`"match"`, `"census:raw"`, `"presync"`, ...).
    pub name: &'static str,
    /// Work items the stage processed — events for the mapping stages
    /// (`"match"`, `"lower"`, `"presync"`, `"clc"`, `"gather"`/`"ingest"`,
    /// `"scatter"`), messages + logical messages for the censuses. For
    /// sharded stages this is the *sum of per-shard counts*, so it doubles
    /// as the shard accounting check: it must equal the sequential item
    /// count. Streamed runs replace `"gather"` with the `"ingest"` stage
    /// recorded during parsing; both count every event exactly once.
    pub items: usize,
    /// Wall-clock seconds the stage took.
    pub seconds: f64,
    /// Number of shards the work was split into (1 when run sequentially).
    /// For the replay `"clc"` stage this is the worker count — one worker
    /// per process timeline.
    pub shards: usize,
    /// Seconds spent blocked on cross-shard coordination (0 when run
    /// sequentially). For fork/join stages (`"match"`, `"presync"`, the
    /// censuses) this is the time the merging thread waited on shard
    /// results. For the replay `"clc"` stage it is the workers' *summed*
    /// stall time waiting on remote bounds from peer timelines — summed
    /// across concurrent workers, so it can legitimately exceed
    /// [`seconds`](Self::seconds).
    pub merge_wait_seconds: f64,
}

impl StageStats {
    pub(crate) fn sequential(name: &'static str, items: usize, took: Duration) -> Self {
        StageStats {
            name,
            items,
            seconds: took.as_secs_f64(),
            shards: 1,
            merge_wait_seconds: 0.0,
        }
    }

    pub(crate) fn sharded(
        name: &'static str,
        items: usize,
        took: Duration,
        shards: usize,
        merge_wait: Duration,
    ) -> Self {
        StageStats {
            name,
            items,
            seconds: took.as_secs_f64(),
            shards,
            merge_wait_seconds: merge_wait.as_secs_f64(),
        }
    }

    /// Stage throughput in items per second (0 when the stage was too fast
    /// to time).
    pub fn items_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.items as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// Cumulative item/time totals of one stage across many pipeline runs
/// (see [`PipelineStats::fold_stage_totals`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTotals {
    /// Items processed across all folded runs.
    pub items: u64,
    /// Wall-clock seconds across all folded runs.
    pub seconds: f64,
}

impl StageTotals {
    /// Aggregate throughput in items per second (0 when no time accrued).
    pub fn items_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.items as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// Instrumentation of a whole [`synchronize`](crate::synchronize) run.
///
/// Collected on both the sequential and the parallel path, so the two can
/// be compared directly; on the sequential path every stage reports one
/// shard and zero merge wait.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// Worker threads used (1 = sequential).
    pub workers: usize,
    /// Per-stage instrumentation, in execution order.
    pub stages: Vec<StageStats>,
    /// Wall-clock seconds for the whole pipeline.
    pub total_seconds: f64,
    /// Peak bytes of timestamp column slabs resident at once. The batch
    /// engines gather every timeline's `i64` lane up front, so this is
    /// `8 × n_events`; the incremental windowed engine retires segments as
    /// their finalization horizon clears and reports its true high-water
    /// mark, which stays O(window) as the trace grows. 0 on the AoS path,
    /// which keeps no separate column slabs.
    pub peak_resident_column_bytes: u64,
}

impl PipelineStats {
    /// Look up a stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageStats> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Total shards across all stages.
    pub fn total_shards(&self) -> usize {
        self.stages.iter().map(|s| s.shards).sum()
    }

    /// Fold this run's stages into cumulative per-stage totals, keyed by
    /// stage name. A long-running service calls this once per completed
    /// job to maintain aggregate per-stage throughput (events/sec over the
    /// service's lifetime) without retaining every report.
    pub fn fold_stage_totals(&self, totals: &mut BTreeMap<&'static str, StageTotals>) {
        for s in &self.stages {
            let t = totals.entry(s.name).or_default();
            t.items += s.items as u64;
            t.seconds += s.seconds;
        }
    }

    /// Render a compact per-stage table (used by the experiments binary).
    pub fn render(&self) -> String {
        let mut out = format!(
            "pipeline: {} worker(s), {:.3}s total, peak columns {} B\n",
            self.workers, self.total_seconds, self.peak_resident_column_bytes
        );
        for s in &self.stages {
            out.push_str(&format!(
                "  {:<16} {:>10} items  {:>8} shards  {:>12.0} items/s  merge wait {:.4}s\n",
                s.name, s.items, s.shards, s.items_per_sec(), s.merge_wait_seconds
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_lookup() {
        let mut stats = PipelineStats {
            workers: 4,
            ..PipelineStats::default()
        };
        stats.stages.push(StageStats::sequential("match", 1000, Duration::from_millis(10)));
        stats.stages.push(StageStats::sharded(
            "presync",
            5000,
            Duration::from_millis(20),
            8,
            Duration::from_millis(2),
        ));
        let m = stats.stage("match").unwrap();
        assert!((m.items_per_sec() - 100_000.0).abs() < 1.0);
        assert_eq!(stats.stage("presync").unwrap().shards, 8);
        assert_eq!(stats.total_shards(), 9);
        assert!(stats.stage("nope").is_none());
        assert!(stats.render().contains("presync"));
    }

    #[test]
    fn zero_time_stage_reports_zero_throughput() {
        let s = StageStats::sequential("census:raw", 10, Duration::ZERO);
        assert_eq!(s.items_per_sec(), 0.0);
    }
}
