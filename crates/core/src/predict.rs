//! Analytical prediction of clock-condition violations.
//!
//! The paper derives the *requirement* (timestamp error below half the
//! message latency) but measures violation rates empirically. This module
//! closes the loop with a first-order analytical model: given the drift
//! physics (random-walk wander) and the interpolation scheme, the residual
//! deviation at run position `t` is approximately Gaussian with a
//! **Brownian-bridge** standard deviation, and a message's violation
//! probability follows from the Gaussian tail beyond its slack.
//!
//! The model intentionally mirrors the simulator's random-walk drift
//! (`simclock::RandomWalkDrift`): the clock's *rate* takes independent
//! `N(0, σ_step²)` increments every `step_s`. Its time integral (the
//! offset) is then an integrated random walk; anchoring a straight line at
//! both ends (Eq. 3) leaves a bridge-like residual process. Tests validate
//! the prediction against Monte-Carlo simulation of the very drift model
//! the experiments use.

use simclock::Dur;

/// Standard normal cumulative distribution function via the Abramowitz &
/// Stegun erf approximation (|error| < 1.5e-7 — far below the model error).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / core::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t
            - 0.284_496_736)
            * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Drift-physics inputs of the prediction.
#[derive(Debug, Clone, Copy)]
pub struct WanderModel {
    /// Rate random-walk step standard deviation (fractional) per sample.
    pub step_sigma: f64,
    /// Seconds between rate samples.
    pub step_s: f64,
}

impl WanderModel {
    /// Variance of the *free* (unanchored) offset deviation after `t`
    /// seconds, in s².
    ///
    /// The offset is the integral of a rate random walk: after `n = t/Δ`
    /// steps its variance is `σ² Δ² · n³/3` (the standard integrated-walk
    /// growth `∝ t³`).
    pub fn free_variance(&self, t_s: f64) -> f64 {
        let n = (t_s / self.step_s).max(0.0);
        let s = self.step_sigma * self.step_s;
        s * s * n * n * n / 3.0
    }

    /// Standard deviation of the residual at position `t` of a run of
    /// length `T` after two-point linear interpolation (offsets pinned at
    /// both ends), in seconds.
    ///
    /// For an integrated random walk conditioned to zero at both ends, the
    /// exact bridge variance has no elementary closed form; the standard
    /// first-order approximation scales the free variance by the Brownian-
    /// bridge factor evaluated on the cubic growth:
    /// `σ²(t) ≈ σ_free²(t) · (1 − t/T)² + σ_free²(T − t) · (t/T)²` —
    /// symmetric, zero at both anchors, maximal mid-run.
    pub fn bridge_std(&self, t_s: f64, run_s: f64) -> f64 {
        if run_s <= 0.0 || t_s <= 0.0 || t_s >= run_s {
            return 0.0;
        }
        let u = t_s / run_s;
        let var = self.free_variance(t_s) * (1.0 - u) * (1.0 - u)
            + self.free_variance(run_s - t_s) * u * u;
        var.sqrt()
    }

    /// Largest bridge standard deviation across the run (mid-run), seconds.
    pub fn peak_bridge_std(&self, run_s: f64) -> f64 {
        self.bridge_std(run_s / 2.0, run_s)
    }
}

/// Probability that a message with `slack` (recorded transfer minus
/// `l_min`, as it would be with perfect clocks) is violated when the
/// deviation between the two clocks is `N(0, σ²)`:
/// `P(deviation > slack)` in the unfavourable direction.
pub fn violation_probability(deviation_std: Dur, slack: Dur) -> f64 {
    let sigma = deviation_std.as_secs_f64();
    if sigma <= 0.0 {
        return if slack.as_secs_f64() < 0.0 { 1.0 } else { 0.0 };
    }
    1.0 - normal_cdf(slack.as_secs_f64() / sigma)
}

/// The paper's §III accuracy requirement, inverted: the longest run (in
/// seconds) for which two-point interpolation keeps the *expected* mid-run
/// deviation below half the message latency.
pub fn safe_run_length(model: &WanderModel, l_min: Dur) -> f64 {
    let target = l_min.as_secs_f64() / 2.0;
    // Monotone in T: bisect on the peak bridge std.
    let (mut lo, mut hi) = (1.0f64, 1e7f64);
    if model.peak_bridge_std(lo) > target {
        return 0.0;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if model.peak_bridge_std(mid) > target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use simclock::{DriftModel, RandomWalkDrift, Time};

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.0) - 0.841_344_7).abs() < 1e-5);
        assert!((normal_cdf(-1.0) - 0.158_655_3).abs() < 1e-5);
        assert!((normal_cdf(2.0) - 0.977_249_9).abs() < 1e-5);
        assert!(normal_cdf(6.0) > 0.999_999);
    }

    #[test]
    fn free_variance_matches_monte_carlo() {
        // Simulate the exact drift model the experiments use and compare
        // the offset variance after 300 s with the formula.
        let model = WanderModel { step_sigma: 1e-8, step_s: 10.0 };
        let t = 300.0;
        let n = 400;
        let mut sum_sq = 0.0;
        for seed in 0..n {
            let mut rng = StdRng::seed_from_u64(seed);
            let d = RandomWalkDrift::generate(&mut rng, model.step_sigma, model.step_s, t * 1.1);
            let dev = d.integrated(Time::from_secs_f64(t));
            sum_sq += dev * dev;
        }
        let mc_var = sum_sq / n as f64;
        let pred = model.free_variance(t);
        let ratio = mc_var / pred;
        assert!(
            (0.6..1.6).contains(&ratio),
            "variance prediction off: MC {mc_var:.3e} vs predicted {pred:.3e}"
        );
    }

    #[test]
    fn bridge_is_zero_at_anchors_and_peaks_mid_run() {
        let m = WanderModel { step_sigma: 1e-8, step_s: 10.0 };
        assert_eq!(m.bridge_std(0.0, 3600.0), 0.0);
        assert_eq!(m.bridge_std(3600.0, 3600.0), 0.0);
        let quarter = m.bridge_std(900.0, 3600.0);
        let mid = m.bridge_std(1800.0, 3600.0);
        assert!(mid > quarter);
        assert!(mid > 0.0);
    }

    #[test]
    fn violation_probability_limits() {
        let sigma = Dur::from_us(10);
        // Huge slack: essentially safe.
        assert!(violation_probability(sigma, Dur::from_us(60)) < 1e-6);
        // Zero slack: coin flip.
        let p = violation_probability(sigma, Dur::ZERO);
        assert!((p - 0.5).abs() < 1e-6);
        // Negative slack: likely violated.
        assert!(violation_probability(sigma, Dur::from_us(-30)) > 0.99);
        // Perfect clocks.
        assert_eq!(violation_probability(Dur::ZERO, Dur::from_us(1)), 0.0);
        assert_eq!(violation_probability(Dur::ZERO, Dur::from_us(-1)), 1.0);
    }

    #[test]
    fn safe_run_length_is_monotone_in_wander() {
        let quiet = WanderModel { step_sigma: 1e-9, step_s: 10.0 };
        let noisy = WanderModel { step_sigma: 1e-8, step_s: 10.0 };
        let l = Dur::from_us_f64(4.29);
        let t_quiet = safe_run_length(&quiet, l);
        let t_noisy = safe_run_length(&noisy, l);
        assert!(
            t_quiet > t_noisy,
            "quieter clocks should allow longer runs: {t_quiet} vs {t_noisy}"
        );
        // The paper's observation: with realistic wander the safe window is
        // minutes, not hours.
        assert!(t_noisy < 3600.0, "safe window {t_noisy} s");
        assert!(t_noisy > 10.0);
    }

    #[test]
    fn prediction_tracks_simulated_mid_run_residuals() {
        // Monte-Carlo the full pipeline: draw a random-walk drift, anchor a
        // line at both ends, compare the mid-run residual's RMS with the
        // predicted bridge std.
        let model = WanderModel { step_sigma: 1e-8, step_s: 10.0 };
        let run = 600.0;
        let n = 300;
        let mut sum_sq = 0.0;
        for seed in 100..100 + n {
            let mut rng = StdRng::seed_from_u64(seed);
            let d = RandomWalkDrift::generate(&mut rng, model.step_sigma, model.step_s, run * 1.2);
            let at = |s: f64| d.integrated(Time::from_secs_f64(s));
            let (o0, o1) = (at(0.0), at(run));
            let mid = at(run / 2.0) - (o0 + 0.5 * (o1 - o0));
            sum_sq += mid * mid;
        }
        let mc_rms = (sum_sq / n as f64).sqrt();
        let pred = model.bridge_std(run / 2.0, run);
        let ratio = mc_rms / pred;
        assert!(
            (0.5..2.0).contains(&ratio),
            "bridge prediction off: MC {mc_rms:.3e} vs predicted {pred:.3e}"
        );
    }
}
