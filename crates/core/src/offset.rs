//! Offset estimation from remote clock-reading round trips (paper Eq. 2).
//!
//! Cristian's probabilistic technique: the master records `t1` when its
//! request leaves and `t2` when the reply arrives; the worker reports its
//! local time `t0` in between. Assuming the two message delays are equal,
//!
//! ```text
//! o = t1 + (t2 − t1)/2 − t0
//! ```
//!
//! estimates the master-minus-worker offset at worker time `t0`. Real
//! networks have *irregular* delays, so the exchange is repeated and the
//! round with the smallest round-trip time wins — that round's delays are
//! the most symmetric with the highest probability.

use simclock::{Dur, Time};

/// The three local timestamps of one request/reply exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeSample {
    /// Master local time at request departure.
    pub t1: Time,
    /// Worker local time at reply.
    pub t0: Time,
    /// Master local time at reply arrival.
    pub t2: Time,
}

impl ProbeSample {
    /// Round-trip time as seen by the master.
    pub fn rtt(&self) -> Dur {
        self.t2 - self.t1
    }

    /// The Eq. 2 offset estimate (master − worker) from this round alone.
    pub fn offset(&self) -> Dur {
        self.t1 + (self.t2 - self.t1) / 2 - self.t0
    }
}

/// An offset measurement anchored at a worker-local time: "at worker time
/// `worker_time`, the master clock was `offset` ahead". The `(w, o)` pairs
/// of the paper's Eq. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffsetMeasurement {
    /// Worker-local anchor time.
    pub worker_time: Time,
    /// Master − worker offset at that anchor.
    pub offset: Dur,
    /// Round-trip of the winning probe (quality indicator; half of it
    /// bounds the estimation error).
    pub rtt: Dur,
}

/// Estimate the offset from repeated probes by Cristian's min-round-trip
/// filter. Returns `None` for an empty slice.
///
/// ```
/// use clocksync::{estimate_offset, ProbeSample};
/// use simclock::{Dur, Time};
///
/// let rounds = [
///     // a jittery round (rtt 40 µs) and a clean one (rtt 10 µs)
///     ProbeSample { t1: Time::from_us(0), t0: Time::from_us(25), t2: Time::from_us(40) },
///     ProbeSample { t1: Time::from_us(100), t0: Time::from_us(105), t2: Time::from_us(110) },
/// ];
/// let m = estimate_offset(&rounds).unwrap();
/// assert_eq!(m.rtt, Dur::from_us(10));   // the clean round won
/// assert_eq!(m.offset, Dur::ZERO);       // Eq. 2 on symmetric delays
/// ```
pub fn estimate_offset(samples: &[ProbeSample]) -> Option<OffsetMeasurement> {
    let best = samples.iter().min_by_key(|s| s.rtt().as_ps())?;
    Some(OffsetMeasurement {
        worker_time: best.t0,
        offset: best.offset(),
        rtt: best.rtt(),
    })
}

/// Error bound of a measurement: the offset cannot be wrong by more than
/// half the round-trip (minus the true minimum latency, which is unknown;
/// this is the conservative bound).
pub fn error_bound(m: &OffsetMeasurement) -> Dur {
    m.rtt / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t1_us: i64, t0_us: i64, t2_us: i64) -> ProbeSample {
        ProbeSample {
            t1: Time::from_us(t1_us),
            t0: Time::from_us(t0_us),
            t2: Time::from_us(t2_us),
        }
    }

    #[test]
    fn eq2_on_symmetric_delays_is_exact() {
        // Worker is 100 µs behind the master; both delays 5 µs.
        // Master sends at t1=1000, true arrival 1005 → t0 = 905.
        // Reply arrives at master 1010.
        let s = sample(1000, 905, 1010);
        assert_eq!(s.offset(), Dur::from_us(100));
        assert_eq!(s.rtt(), Dur::from_us(10));
    }

    #[test]
    fn asymmetry_biases_by_half_the_difference() {
        // Forward delay 5 µs, backward 15 µs; true offset 0.
        // t1=0, worker reads t0 at true 5 → t0=5, reply lands at 20.
        let s = sample(0, 5, 20);
        // Estimate: 0 + 10 - 5 = 5 µs — half the 10 µs asymmetry.
        assert_eq!(s.offset(), Dur::from_us(5));
    }

    #[test]
    fn min_rtt_round_wins() {
        let rounds = vec![
            sample(0, 20, 40),    // rtt 40, jittery
            sample(100, 105, 110), // rtt 10, clean
            sample(200, 230, 260), // rtt 60
        ];
        let m = estimate_offset(&rounds).unwrap();
        assert_eq!(m.rtt, Dur::from_us(10));
        assert_eq!(m.worker_time, Time::from_us(105));
        assert_eq!(m.offset, Dur::from_us(0));
        assert_eq!(error_bound(&m), Dur::from_us(5));
    }

    #[test]
    fn empty_probe_set() {
        assert!(estimate_offset(&[]).is_none());
    }

    #[test]
    fn negative_offsets_are_fine() {
        // Worker ahead of master by 50 µs, symmetric 4 µs delays:
        // t1=0, t0 = 4+50 = 54, t2 = 8.
        let s = sample(0, 54, 8);
        assert_eq!(s.offset(), Dur::from_us(-50));
    }
}
