//! Clock-condition diagnostics (paper Eq. 1).
//!
//! Beyond the binary violated/not-violated verdicts of
//! [`tracefmt::violation`], the experiments need the *distribution* of
//! message slack — how far each receive sits above (or below) its bound —
//! because the paper's requirement "timestamp error smaller than half the
//! message latency" is a statement about margins, not just counts.

use simclock::Dur;
use tracefmt::{Matching, MinLatency, Summary, Trace};

/// Slack of every matched message: `t_recv − t_send − l_min` (negative =
/// violated), in message order.
pub fn message_slacks(trace: &Trace, matching: &Matching, lmin: &dyn MinLatency) -> Vec<Dur> {
    matching
        .messages
        .iter()
        .map(|m| trace.time(m.recv) - trace.time(m.send) - lmin.l_min(m.from, m.to))
        .collect()
}

/// Slack distribution summary.
#[derive(Debug, Clone)]
pub struct SlackStats {
    /// Mean/min/max/std of the slack in microseconds.
    pub summary: Summary,
    /// Number of negative-slack (violated) messages.
    pub violated: usize,
    /// Number of messages inspected.
    pub total: usize,
}

impl SlackStats {
    /// Percentage of violated messages.
    pub fn violated_pct(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.violated as f64 / self.total as f64
        }
    }
}

/// Summarise the slack distribution of a trace.
pub fn slack_stats(trace: &Trace, matching: &Matching, lmin: &dyn MinLatency) -> SlackStats {
    let slacks = message_slacks(trace, matching, lmin);
    let violated = slacks.iter().filter(|s| s.is_negative()).count();
    SlackStats {
        summary: slacks.iter().map(|s| s.as_us_f64()).collect(),
        violated,
        total: slacks.len(),
    }
}

/// The paper's accuracy requirement: to *guarantee* no violations, the
/// timestamp error must stay below half the minimum message latency.
/// Returns that bound for a given `l_min`.
pub fn required_accuracy(l_min: Dur) -> Dur {
    l_min / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::Time;
    use tracefmt::{match_messages, EventKind, Rank, Tag, UniformLatency};

    fn trace_with_transfers(transfers_us: &[i64]) -> Trace {
        let mut t = Trace::for_ranks(2);
        for (i, &d) in transfers_us.iter().enumerate() {
            let base = (i as i64) * 1000;
            t.procs[0].push(
                Time::from_us(base),
                EventKind::Send { to: Rank(1), tag: Tag(i as u32), bytes: 0 },
            );
            t.procs[1].push(
                Time::from_us(base + d),
                EventKind::Recv { from: Rank(0), tag: Tag(i as u32), bytes: 0 },
            );
        }
        t
    }

    #[test]
    fn slacks_are_transfer_minus_lmin() {
        let t = trace_with_transfers(&[10, 4, 2, -5]);
        let m = match_messages(&t);
        let lmin = UniformLatency(Dur::from_us(4));
        let slacks = message_slacks(&t, &m, &lmin);
        assert_eq!(
            slacks,
            vec![
                Dur::from_us(6),
                Dur::from_us(0),
                Dur::from_us(-2),
                Dur::from_us(-9)
            ]
        );
    }

    #[test]
    fn stats_count_violations() {
        let t = trace_with_transfers(&[10, 4, 2, -5]);
        let m = match_messages(&t);
        let s = slack_stats(&t, &m, &UniformLatency(Dur::from_us(4)));
        assert_eq!(s.total, 4);
        assert_eq!(s.violated, 2);
        assert_eq!(s.violated_pct(), 50.0);
        assert_eq!(s.summary.min(), -9.0);
        assert_eq!(s.summary.max(), 6.0);
    }

    #[test]
    fn accuracy_requirement_is_half_latency() {
        assert_eq!(required_accuracy(Dur::from_us_f64(4.29)), Dur::from_us_f64(2.145));
    }
}
