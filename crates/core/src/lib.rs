//! # clocksync — postmortem timestamp synchronisation
//!
//! The algorithmic content of *"Implications of non-constant clock drifts
//! for the timestamps of concurrent events"* (Becker, Rabenseifner, Wolf —
//! CLUSTER 2008):
//!
//! * [`offset`] — Cristian's probabilistic offset estimation from probe
//!   round trips (paper Eq. 2, min-round-trip filtered);
//! * [`interp`] — offset alignment, Eq. 3 linear offset interpolation, and
//!   the piecewise-linear generalisation;
//! * [`condition`] — clock-condition slack diagnostics (Eq. 1);
//! * [`lamport`] / [`vector`] — the classic logical clocks (§V);
//! * [`clc`] — the Controlled Logical Clock with forward and backward
//!   amortization, the collective → point-to-point mapping extension, and a
//!   replay-based parallel implementation;
//! * [`baselines`] — Duda regression & convex hull, Hofmann min/max,
//!   Jézéquel spanning trees, Babaoğlu/Drummond full-exchange bounds;
//! * [`pipeline`] — the recommended chain: linear interpolation for weak
//!   pre-synchronisation, then the CLC for the residual violations;
//! * [`predict`] — analytical violation-probability model (Brownian-bridge
//!   residuals of interpolated random-walk wander), validated against the
//!   simulator.

#![warn(missing_docs)]

pub mod baselines;
pub mod clc;
pub mod condition;
pub mod interp;
pub mod lamport;
pub mod offset;
pub mod pipeline;
pub mod predict;
pub mod vector;

pub use baselines::{AffineMap, Corridor};
pub use clc::domains::{controlled_logical_clock_with_domains, domain_misalignment};
pub use clc::graph::DepGraph;
pub use clc::parallel::controlled_logical_clock_parallel;
pub use clc::pomp::{
    controlled_logical_clock_generic, controlled_logical_clock_pomp, pomp_constraints,
    Constraint,
};
pub use clc::{controlled_logical_clock, ClcError, ClcParams, ClcReport, Jump};
pub use condition::{message_slacks, required_accuracy, slack_stats, SlackStats};
pub use interp::{
    apply_maps, IdentityMap, LinearInterpolation, OffsetAlignment, PiecewiseInterpolation,
    RegressionInterpolation, TimestampMap,
};
pub use lamport::{lamport_timestamps, satisfies_lamport_condition};
pub use offset::{estimate_offset, error_bound, OffsetMeasurement, ProbeSample};
pub use pipeline::{
    synchronize, synchronize_stream, synchronize_stream_incremental,
    synchronize_stream_incremental_with_cancel, synchronize_stream_incremental_with_sink,
    synchronize_stream_with_cancel,
    synchronize_with_cancel, CancelProbe, CancelToken, IncrementalReport, OnlineSpec,
    ParallelConfig, PipelineConfig, PipelineError, PipelineReport, PipelineStats,
    PreSync, StageReport, StageStats, StageTotals, SyncMethod, TimestampStorage, TraceAnalysis,
};
pub use predict::{normal_cdf, safe_run_length, violation_probability, WanderModel};
pub use vector::{vector_timestamps, VectorStamp};
