//! Jézéquel's spanning-tree generalisation (paper reference [20]).
//!
//! Duda's pairwise fit needs two-way traffic between every process and the
//! reference — rarely true on arbitrary topologies. Jézéquel builds a
//! spanning tree over the *communication graph*, fits a pairwise map per
//! tree edge (where traffic exists), and composes the affine maps along
//! each process's tree path to the reference. Edge weight is the number of
//! messages: more messages mean tighter corridors, so a **maximum** spanning
//! tree is used.

use super::duda::{convex_hull_map, regression_map};
use super::{corridor_between, AffineMap};
use tracefmt::{Matching, MinLatency, Trace};

/// Failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The communication graph does not connect every process to the
    /// reference.
    Disconnected(usize),
    /// A tree edge's corridor could not be fitted.
    EdgeFit(usize, usize),
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::Disconnected(p) => write!(f, "process {p} unreachable from reference"),
            TreeError::EdgeFit(a, b) => write!(f, "cannot fit edge {a}–{b}"),
        }
    }
}

impl std::error::Error for TreeError {}

/// Per-process affine maps onto the reference process's axis, composed
/// along a maximum spanning tree of the two-way communication graph.
pub fn spanning_tree_maps(
    trace: &Trace,
    matching: &Matching,
    lmin: &dyn MinLatency,
    reference: usize,
) -> Result<Vec<AffineMap>, TreeError> {
    let n = trace.n_procs();
    // Count messages per unordered pair, in each direction.
    let mut fwd = std::collections::HashMap::<(usize, usize), usize>::new();
    for m in &matching.messages {
        *fwd.entry((m.send.p(), m.recv.p())).or_default() += 1;
    }
    // Two-way weight of an unordered pair: min of the direction counts
    // (a corridor needs both sides).
    let weight = |a: usize, b: usize| -> usize {
        let ab = fwd.get(&(a, b)).copied().unwrap_or(0);
        let ba = fwd.get(&(b, a)).copied().unwrap_or(0);
        ab.min(ba)
    };

    // Prim's algorithm from the reference, maximising edge weight.
    let mut in_tree = vec![false; n];
    let mut parent = vec![usize::MAX; n];
    let mut best = vec![0usize; n];
    in_tree[reference] = true;
    let mut frontier: Vec<usize> = (0..n).filter(|&p| p != reference).collect();
    for p in &frontier {
        best[*p] = weight(reference, *p);
        parent[*p] = reference;
    }
    while !frontier.is_empty() {
        // Pick the frontier node with the heaviest connecting edge.
        let (fi, &p) = frontier
            .iter()
            .enumerate()
            .max_by_key(|(_, &p)| best[p])
            .expect("non-empty frontier");
        if best[p] == 0 {
            return Err(TreeError::Disconnected(p));
        }
        frontier.swap_remove(fi);
        in_tree[p] = true;
        for &q in frontier.iter() {
            let w = weight(p, q);
            if w > best[q] {
                best[q] = w;
                parent[q] = p;
            }
        }
    }

    // Fit each tree edge child→parent, then compose down from the root.
    // Processing order: parents before children (BFS from reference).
    let mut maps: Vec<Option<AffineMap>> = vec![None; n];
    maps[reference] = Some(AffineMap::identity());
    let mut queue = std::collections::VecDeque::from([reference]);
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for p in 0..n {
        if p != reference {
            children[parent[p]].push(p);
        }
    }
    while let Some(p) = queue.pop_front() {
        for &c in &children[p] {
            let corridor = corridor_between(trace, matching, p, c, lmin);
            // Prefer the convex-hull fit: application traces contain
            // wait states, so most bound points carry huge slack and bias
            // a regression; the hull uses only the tightest constraints.
            let pairwise = convex_hull_map(&corridor)
                .or_else(|_| regression_map(&corridor))
                .map_err(|_| TreeError::EdgeFit(p, c))?;
            let parent_map = maps[p].expect("BFS order");
            maps[c] = Some(parent_map.compose(&pairwise));
            queue.push_back(c);
        }
    }
    Ok(maps.into_iter().map(|m| m.expect("spanning tree covers all")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::TimestampMap;
    use simclock::{Dur, Time};
    use tracefmt::{match_messages, EventKind, Rank, Tag, UniformLatency};

    const LMIN: UniformLatency = UniformLatency(Dur::from_ps(4_000_000));

    /// Chain topology 0 – 1 – 2 with known per-process offsets; messages
    /// only between neighbours, many, both directions.
    fn chain_trace(offsets_us: [i64; 3]) -> Trace {
        let mut t = Trace::for_ranks(3);
        let mut tag = 0u32;
        let mut true_now = 0i64;
        for _ in 0..40 {
            for (a, b) in [(0usize, 1usize), (1, 2)] {
                // a -> b, true transfer 10 µs.
                true_now += 37;
                t.procs[a].push(
                    Time::from_us(true_now + offsets_us[a]),
                    EventKind::Send { to: Rank(b as u32), tag: Tag(tag), bytes: 0 },
                );
                t.procs[b].push(
                    Time::from_us(true_now + 10 + offsets_us[b]),
                    EventKind::Recv { from: Rank(a as u32), tag: Tag(tag), bytes: 0 },
                );
                tag += 1;
                // b -> a.
                true_now += 41;
                t.procs[b].push(
                    Time::from_us(true_now + offsets_us[b]),
                    EventKind::Send { to: Rank(a as u32), tag: Tag(tag), bytes: 0 },
                );
                t.procs[a].push(
                    Time::from_us(true_now + 10 + offsets_us[a]),
                    EventKind::Recv { from: Rank(b as u32), tag: Tag(tag), bytes: 0 },
                );
                tag += 1;
            }
        }
        t
    }

    #[test]
    fn chain_offsets_recovered_through_composition() {
        // Process 2 never talks to the reference directly.
        let t = chain_trace([0, 400, -300]);
        let m = match_messages(&t);
        let maps = spanning_tree_maps(&t, &m, &LMIN, 0).unwrap();
        // Corrected times of all procs should land on the true axis
        // (reference offset 0), to within the message jitter (~10 µs).
        let probe = Time::from_us(1000 + 400);
        let corrected = maps[1].map(probe);
        let err = (corrected - Time::from_us(1000)).abs();
        assert!(err < Dur::from_us(12), "proc1 err {err:?}");
        let probe2 = Time::from_us(1000 - 300);
        let err2 = (maps[2].map(probe2) - Time::from_us(1000)).abs();
        assert!(err2 < Dur::from_us(20), "proc2 err {err2:?}");
        // Reference map is the identity.
        assert_eq!(maps[0], AffineMap::identity());
    }

    #[test]
    fn disconnected_process_detected() {
        let mut t = chain_trace([0, 0, 0]);
        // Add an isolated process 3.
        t.procs.push(tracefmt::ProcessTrace::new(tracefmt::Location::rank(3)));
        t.procs[3].push(Time::ZERO, EventKind::Enter { region: tracefmt::RegionId(0) });
        let m = match_messages(&t);
        let err = spanning_tree_maps(&t, &m, &LMIN, 0).unwrap_err();
        assert_eq!(err, TreeError::Disconnected(3));
    }

    #[test]
    fn heavier_edges_win() {
        // 0-1 heavy, 0-2 light, 1-2 heavy: tree should attach 2 via 1.
        // We verify indirectly: fitting succeeds and recovers offsets even
        // though 0-2 has too few messages for a direct fit.
        let mut t = chain_trace([0, 100, 200]);
        // One single pair of messages 0<->2 (not enough for a pairwise fit
        // on its own, weight 1 vs 80 via the chain).
        t.procs[0].push(
            Time::from_us(900_000),
            EventKind::Send { to: Rank(2), tag: Tag(9999), bytes: 0 },
        );
        t.procs[2].push(
            Time::from_us(900_010 + 200),
            EventKind::Recv { from: Rank(0), tag: Tag(9999), bytes: 0 },
        );
        let m = match_messages(&t);
        let maps = spanning_tree_maps(&t, &m, &LMIN, 0).unwrap();
        let probe = Time::from_us(500 + 200);
        let err = (maps[2].map(probe) - Time::from_us(500)).abs();
        assert!(err < Dur::from_us(25), "proc2 err {err:?}");
    }
}
