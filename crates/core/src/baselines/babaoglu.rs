//! Babaoğlu/Drummond "(almost) no cost" synchronisation (paper references
//! [22], [23]).
//!
//! Observation: if the application itself performs **full message
//! exchanges** (all-to-all style collectives) in sufficiently short
//! intervals, those exchanges already carry all the information needed to
//! bound every pairwise clock offset — no extra synchronisation traffic is
//! required. Here the bounds are harvested from the trace's N-to-N
//! collective instances via the flavour mapping and fitted per process with
//! either a single line or Hofmann-style interval midpoints.

use super::hofmann::{minmax_map, MinMaxError};
use super::{corridor_from_collectives, duda, Corridor};
use crate::interp::{IdentityMap, TimestampMap};
use tracefmt::{CollectiveInstance, MinLatency, Trace};

/// How the harvested corridor is fitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FullExchangeFit {
    /// Single regression line (assumes constant drift between exchanges).
    Line,
    /// Piecewise midpoints over `n` intervals (tracks non-constant drift).
    Piecewise(usize),
}

/// Failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FullExchangeError {
    /// A worker shares no N-to-N collectives with the reference.
    NoExchanges(usize),
    /// Fitting failed for a worker.
    Fit(usize, String),
}

impl std::fmt::Display for FullExchangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FullExchangeError::NoExchanges(p) => {
                write!(f, "process {p} shares no full exchanges with the reference")
            }
            FullExchangeError::Fit(p, e) => write!(f, "fit failed for process {p}: {e}"),
        }
    }
}

impl std::error::Error for FullExchangeError {}

/// Build per-process maps onto the reference axis from the trace's
/// collective exchanges.
pub fn full_exchange_maps(
    trace: &Trace,
    insts: &[CollectiveInstance],
    lmin: &dyn MinLatency,
    reference: usize,
    fit: FullExchangeFit,
) -> Result<Vec<Box<dyn TimestampMap>>, FullExchangeError> {
    let mut maps: Vec<Box<dyn TimestampMap>> = Vec::with_capacity(trace.n_procs());
    for p in 0..trace.n_procs() {
        if p == reference {
            maps.push(Box::new(IdentityMap));
            continue;
        }
        let corridor: Corridor = corridor_from_collectives(trace, insts, reference, p, lmin);
        if corridor.is_empty() {
            return Err(FullExchangeError::NoExchanges(p));
        }
        match fit {
            FullExchangeFit::Line => {
                let m = duda::regression_map(&corridor)
                    .map_err(|e| FullExchangeError::Fit(p, e.to_string()))?;
                maps.push(Box::new(m));
            }
            FullExchangeFit::Piecewise(bins) => {
                match minmax_map(&corridor, bins) {
                    Ok(m) => maps.push(Box::new(m)),
                    // Gracefully fall back to a line when the run is too
                    // short for the requested resolution.
                    Err(MinMaxError::TooFewIntervals) => {
                        let m = duda::regression_map(&corridor)
                            .map_err(|e| FullExchangeError::Fit(p, e.to_string()))?;
                        maps.push(Box::new(m));
                    }
                    Err(e) => return Err(FullExchangeError::Fit(p, e.to_string())),
                }
            }
        }
    }
    Ok(maps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::{Dur, Time};
    use tracefmt::{match_collectives, CollOp, CommId, EventKind, UniformLatency};

    const LMIN: UniformLatency = UniformLatency(Dur::from_ps(2_000_000)); // 2 µs

    /// `rounds` barrier instances on 3 ranks; worker clocks offset by the
    /// given amounts. True schedule: everyone begins together, ends 10 µs
    /// later.
    fn exchange_trace(offsets_us: [i64; 3], rounds: usize) -> Trace {
        let mut t = Trace::for_ranks(3);
        for k in 0..rounds {
            let base = (k as i64) * 1000;
            #[allow(clippy::needless_range_loop)]
            for p in 0..3 {
                t.procs[p].push(
                    Time::from_us(base + offsets_us[p]),
                    EventKind::CollBegin {
                        op: CollOp::Barrier,
                        comm: CommId::WORLD,
                        root: None,
                        bytes: 0,
                    },
                );
                t.procs[p].push(
                    Time::from_us(base + 10 + offsets_us[p]),
                    EventKind::CollEnd {
                        op: CollOp::Barrier,
                        comm: CommId::WORLD,
                        root: None,
                        bytes: 0,
                    },
                );
            }
        }
        t
    }

    #[test]
    fn full_exchanges_recover_offsets() {
        let t = exchange_trace([0, 250, -120], 30);
        let insts = match_collectives(&t).unwrap();
        let maps = full_exchange_maps(&t, &insts, &LMIN, 0, FullExchangeFit::Line).unwrap();
        // Corrected worker times should land near the reference axis;
        // the corridor half-width here is ~(10-2)=8 µs.
        let probe = Time::from_us(15_000 + 250);
        let err = (maps[1].map(probe) - Time::from_us(15_000)).abs();
        assert!(err < Dur::from_us(9), "proc1 err {err:?}");
        let probe2 = Time::from_us(15_000 - 120);
        let err2 = (maps[2].map(probe2) - Time::from_us(15_000)).abs();
        assert!(err2 < Dur::from_us(9), "proc2 err {err2:?}");
    }

    #[test]
    fn piecewise_fit_also_works() {
        let t = exchange_trace([0, 100, -50], 40);
        let insts = match_collectives(&t).unwrap();
        let maps =
            full_exchange_maps(&t, &insts, &LMIN, 0, FullExchangeFit::Piecewise(5)).unwrap();
        let probe = Time::from_us(20_000 + 100);
        let err = (maps[1].map(probe) - Time::from_us(20_000)).abs();
        assert!(err < Dur::from_us(9), "err {err:?}");
    }

    #[test]
    fn missing_exchanges_detected() {
        // Rank 2 participates in nothing; ranks 0/1 share several barriers
        // on a subcommunicator (enough for a pairwise fit).
        let mut t = Trace::for_ranks(3);
        for k in 0..5i64 {
            for p in 0..2 {
                t.procs[p].push(
                    Time::from_us(k * 100),
                    EventKind::CollBegin {
                        op: CollOp::Barrier,
                        comm: CommId(1),
                        root: None,
                        bytes: 0,
                    },
                );
                t.procs[p].push(
                    Time::from_us(k * 100 + 10),
                    EventKind::CollEnd {
                        op: CollOp::Barrier,
                        comm: CommId(1),
                        root: None,
                        bytes: 0,
                    },
                );
            }
        }
        t.procs[2].push(Time::ZERO, EventKind::Enter { region: tracefmt::RegionId(0) });
        let insts = match_collectives(&t).unwrap();
        let err = match full_exchange_maps(&t, &insts, &LMIN, 0, FullExchangeFit::Line) {
            Err(e) => e,
            Ok(_) => panic!("expected NoExchanges error"),
        };
        assert!(matches!(err, FullExchangeError::NoExchanges(2)));
    }

    #[test]
    fn piecewise_falls_back_to_line_on_short_runs() {
        let t = exchange_trace([0, 60, -60], 6);
        let insts = match_collectives(&t).unwrap();
        // 200 bins over 6 rounds: most empty → fallback path.
        let maps =
            full_exchange_maps(&t, &insts, &LMIN, 0, FullExchangeFit::Piecewise(200));
        assert!(maps.is_ok());
    }
}
