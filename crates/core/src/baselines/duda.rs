//! Duda's global-time estimation: regression and convex-hull fitting
//! (Duda, Harrus, Haddad, Bernard 1987 — paper reference [19]).
//!
//! Both methods fit a *line* `o(t) = slope·t + intercept` into the offset
//! corridor of a process pair:
//!
//! * **regression** — least-squares lines through the lower-bound and
//!   upper-bound point sets separately, averaged;
//! * **convex hull** — the geometrically tight variant: only hull vertices
//!   can support the best line, so the upper hull of the lower bounds and
//!   the lower hull of the upper bounds are computed and the line is placed
//!   midway between the two hulls' closest approach.

use super::{to_xy, AffineMap, Corridor};
use tracefmt::fit_line;

/// Fitting failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer than two points on one side of the corridor.
    TooFewPoints,
    /// All points share one abscissa (no slope information).
    DegenerateAbscissa,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewPoints => write!(f, "too few constraint points"),
            FitError::DegenerateAbscissa => write!(f, "constraints lack time spread"),
        }
    }
}

impl std::error::Error for FitError {}

/// Least-squares corridor midline.
pub fn regression_map(c: &Corridor) -> Result<AffineMap, FitError> {
    if c.lower.len() < 2 || c.upper.len() < 2 {
        return Err(FitError::TooFewPoints);
    }
    let lo = fit_line(&to_xy(&c.lower)).ok_or(FitError::DegenerateAbscissa)?;
    let hi = fit_line(&to_xy(&c.upper)).ok_or(FitError::DegenerateAbscissa)?;
    Ok(AffineMap::from_offset_line(
        0.5 * (lo.slope + hi.slope),
        0.5 * (lo.intercept + hi.intercept),
    ))
}

/// Monotone-chain upper hull (callers flip signs for the lower hull).
/// Input must be sorted by x.
fn upper_hull(points: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut hull: Vec<(f64, f64)> = Vec::with_capacity(points.len());
    for &p in points {
        while hull.len() >= 2 {
            let a = hull[hull.len() - 2];
            let b = hull[hull.len() - 1];
            // Keep right turns (clockwise) for an upper hull.
            let cross = (b.0 - a.0) * (p.1 - a.1) - (b.1 - a.1) * (p.0 - a.0);
            if cross >= 0.0 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(p);
    }
    hull
}

fn lower_hull(points: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let flipped: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x, -y)).collect();
    upper_hull(&flipped)
        .into_iter()
        .map(|(x, y)| (x, -y))
        .collect()
}

/// Evaluate the piecewise-linear hull function at `x` (constant
/// extrapolation outside).
fn hull_at(hull: &[(f64, f64)], x: f64) -> f64 {
    match hull.iter().position(|p| p.0 >= x) {
        Some(0) => hull[0].1,
        None => hull.last().expect("non-empty hull").1,
        Some(i) => {
            let (x0, y0) = hull[i - 1];
            let (x1, y1) = hull[i];
            if x1 == x0 {
                y0.max(y1)
            } else {
                y0 + (y1 - y0) * (x - x0) / (x1 - x0)
            }
        }
    }
}

/// Convex-hull separating line.
///
/// Computes the upper hull `U` of the lower-bound points and the lower hull
/// `L` of the upper-bound points, evaluates both at the corridor's extreme
/// abscissae, and returns the line through the midpoints of the corridor at
/// those two ends. When measurement noise makes the hulls cross (no exact
/// separating line exists), the midline still minimises the worst-case
/// violation and is returned anyway — matching how the technique degrades
/// on real data.
pub fn convex_hull_map(c: &Corridor) -> Result<AffineMap, FitError> {
    if c.lower.len() < 2 || c.upper.len() < 2 {
        return Err(FitError::TooFewPoints);
    }
    let lo_pts = to_xy(&c.lower);
    let hi_pts = to_xy(&c.upper);
    let lo_hull = upper_hull(&lo_pts);
    let hi_hull = lower_hull(&hi_pts);
    let lo_span = lo_pts.last().unwrap().0 - lo_pts[0].0;
    let hi_span = hi_pts.last().unwrap().0 - hi_pts[0].0;
    let x_min = lo_pts[0].0.min(hi_pts[0].0);
    let x_max = lo_pts.last().unwrap().0.max(hi_pts.last().unwrap().0);
    if x_max <= x_min || lo_span <= 0.0 || hi_span <= 0.0 {
        return Err(FitError::DegenerateAbscissa);
    }
    // Evaluate the envelopes at interior quantiles: the hull's extreme
    // vertices are simply the first/last input points (with arbitrary
    // slack), whereas the envelope interior interpolates only the tight
    // supporting constraints.
    let x0 = x_min + 0.2 * (x_max - x_min);
    let x1 = x_min + 0.8 * (x_max - x_min);
    let y0 = 0.5 * (hull_at(&lo_hull, x0) + hull_at(&hi_hull, x0));
    let y1 = 0.5 * (hull_at(&lo_hull, x1) + hull_at(&hi_hull, x1));
    let slope = (y1 - y0) / (x1 - x0);
    Ok(AffineMap::from_offset_line(slope, y0 - slope * x0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::TimestampMap;
    use simclock::{Dur, Time};

    /// Corridor around a true offset line o(t) = drift·t + off, with the
    /// lower bounds `margin` below and upper bounds `margin` above.
    fn synthetic_corridor(drift: f64, off: f64, margin: f64, n: usize) -> Corridor {
        let mut c = Corridor::default();
        for i in 0..n {
            let t = i as f64 * 10.0;
            let o = drift * t + off;
            // Jitter the margins asymmetrically but boundedly.
            let jl = margin * (1.0 + 0.3 * ((i * 7 % 11) as f64 / 11.0));
            let ju = margin * (1.0 + 0.3 * ((i * 5 % 13) as f64 / 13.0));
            c.lower.push((Time::from_secs_f64(t), Dur::from_secs_f64(o - jl)));
            c.upper.push((Time::from_secs_f64(t), Dur::from_secs_f64(o + ju)));
        }
        c
    }

    #[test]
    fn regression_recovers_drift_and_offset() {
        let c = synthetic_corridor(2e-6, 5e-4, 3e-6, 50);
        let m = regression_map(&c).unwrap();
        assert!((m.gain - (1.0 + 2e-6)).abs() < 5e-7, "gain {}", m.gain);
        assert!((m.offset_s - 5e-4).abs() < 3e-6, "offset {}", m.offset_s);
    }

    #[test]
    fn convex_hull_recovers_drift_and_offset() {
        let c = synthetic_corridor(-1.5e-6, -2e-4, 3e-6, 50);
        let m = convex_hull_map(&c).unwrap();
        assert!((m.gain - (1.0 - 1.5e-6)).abs() < 5e-7, "gain {}", m.gain);
        assert!((m.offset_s + 2e-4).abs() < 4e-6, "offset {}", m.offset_s);
    }

    #[test]
    fn hull_fit_stays_inside_a_clean_corridor() {
        let c = synthetic_corridor(1e-6, 1e-4, 5e-6, 30);
        let m = convex_hull_map(&c).unwrap();
        for (t, lo) in &c.lower {
            let o = m.map(*t) - *t;
            assert!(o >= *lo - Dur::from_ns(1), "below lower bound at {t:?}");
        }
        for (t, hi) in &c.upper {
            let o = m.map(*t) - *t;
            assert!(o <= *hi + Dur::from_ns(1), "above upper bound at {t:?}");
        }
    }

    #[test]
    fn too_few_points_rejected() {
        let mut c = Corridor::default();
        c.lower.push((Time::ZERO, Dur::ZERO));
        c.upper.push((Time::ZERO, Dur::ZERO));
        assert_eq!(regression_map(&c), Err(FitError::TooFewPoints));
        assert_eq!(convex_hull_map(&c), Err(FitError::TooFewPoints));
    }

    #[test]
    fn degenerate_abscissa_rejected() {
        let mut c = Corridor::default();
        for _ in 0..3 {
            c.lower.push((Time::from_secs(5), Dur::from_us(-1)));
            c.upper.push((Time::from_secs(5), Dur::from_us(1)));
        }
        assert_eq!(regression_map(&c), Err(FitError::DegenerateAbscissa));
    }

    #[test]
    fn hull_helpers_are_correct() {
        let pts = vec![(0.0, 0.0), (1.0, 2.0), (2.0, 1.0), (3.0, 3.0), (4.0, 0.0)];
        let uh = upper_hull(&pts);
        // Upper hull: (0,0) -> (1,2) -> (3,3) -> (4,0).
        assert_eq!(uh, vec![(0.0, 0.0), (1.0, 2.0), (3.0, 3.0), (4.0, 0.0)]);
        let lh = lower_hull(&pts);
        assert_eq!(lh, vec![(0.0, 0.0), (4.0, 0.0)]);
        assert!((hull_at(&uh, 2.0) - 2.5).abs() < 1e-12);
        assert_eq!(hull_at(&uh, -1.0), 0.0);
        assert_eq!(hull_at(&uh, 9.0), 0.0);
    }
}
