//! Hofmann's interval min/max strategy (paper reference [21]).
//!
//! Instead of forcing a single line through the whole run — which fails
//! exactly when drifts are non-constant — the run is partitioned into time
//! intervals. Within each interval the tightest bounds are extracted (the
//! **max** of the lower bounds and the **min** of the upper bounds) and
//! their midpoint becomes an anchor; anchors connect into a piecewise-
//! linear correction. This simple scheme tracks NTP kinks and thermal
//! wander that defeat Eq. 3, at the cost of needing message traffic spread
//! over the whole run.

use super::Corridor;
use crate::interp::PiecewiseInterpolation;
use crate::offset::OffsetMeasurement;
use simclock::{Dur, Time};

/// Failure modes of the min/max fitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MinMaxError {
    /// Need at least two populated intervals for a piecewise map.
    TooFewIntervals,
    /// The corridor has no two-sided constraints at all.
    EmptyCorridor,
}

impl std::fmt::Display for MinMaxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MinMaxError::TooFewIntervals => write!(f, "fewer than two populated intervals"),
            MinMaxError::EmptyCorridor => write!(f, "corridor has no constraints"),
        }
    }
}

impl std::error::Error for MinMaxError {}

/// Fit a piecewise-linear correction with `bins` equal-width intervals.
///
/// Intervals that contain bounds from only one direction are skipped (their
/// midpoint would be unbounded on one side).
pub fn minmax_map(c: &Corridor, bins: usize) -> Result<PiecewiseInterpolation, MinMaxError> {
    assert!(bins >= 1, "need at least one interval");
    if c.lower.is_empty() || c.upper.is_empty() {
        return Err(MinMaxError::EmptyCorridor);
    }
    let t_min = c.lower[0].0.min(c.upper[0].0);
    let t_max = c
        .lower
        .last()
        .map(|p| p.0)
        .unwrap_or(t_min)
        .max(c.upper.last().map(|p| p.0).unwrap_or(t_min));
    let span = (t_max - t_min).max(Dur::from_ns(1));
    let width = span / bins as i64;

    #[derive(Clone)]
    struct Bin {
        lo: Option<Dur>,
        hi: Option<Dur>,
        t_sum: i64,
        n: i64,
    }
    let mut acc = vec![
        Bin { lo: None, hi: None, t_sum: 0, n: 0 };
        bins
    ];
    let idx = |t: Time| -> usize {
        let i = ((t - t_min).as_ps() / width.as_ps().max(1)) as usize;
        i.min(bins - 1)
    };
    for &(t, b) in &c.lower {
        let bin = &mut acc[idx(t)];
        bin.lo = Some(bin.lo.map_or(b, |x: Dur| x.max(b)));
        bin.t_sum += t.as_ps();
        bin.n += 1;
    }
    for &(t, b) in &c.upper {
        let bin = &mut acc[idx(t)];
        bin.hi = Some(bin.hi.map_or(b, |x: Dur| x.min(b)));
        bin.t_sum += t.as_ps();
        bin.n += 1;
    }

    let mut anchors = Vec::new();
    for bin in &acc {
        if let (Some(lo), Some(hi)) = (bin.lo, bin.hi) {
            let mid = (lo + hi) / 2;
            let t = Time::from_ps(bin.t_sum / bin.n.max(1));
            anchors.push(OffsetMeasurement {
                worker_time: t,
                offset: mid,
                rtt: (hi - lo).abs(),
            });
        }
    }
    anchors.dedup_by_key(|a| a.worker_time);
    if anchors.len() < 2 {
        return Err(MinMaxError::TooFewIntervals);
    }
    Ok(PiecewiseInterpolation::new(anchors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::TimestampMap;

    /// Corridor around a *kinked* offset (constant drift that doubles
    /// halfway) — the shape a single line cannot fit.
    fn kinked_corridor(n: usize) -> Corridor {
        let mut c = Corridor::default();
        for i in 0..n {
            let t = i as f64; // one point set per second
            let o = if t < 50.0 {
                1e-6 * t
            } else {
                5e-5 + 3e-6 * (t - 50.0)
            };
            c.lower
                .push((Time::from_secs_f64(t), Dur::from_secs_f64(o - 2e-6)));
            c.upper
                .push((Time::from_secs_f64(t), Dur::from_secs_f64(o + 2e-6)));
        }
        c
    }

    #[test]
    fn piecewise_tracks_a_kink() {
        let c = kinked_corridor(100);
        let pw = minmax_map(&c, 10).unwrap();
        // Mid-segment checks on both sides of the kink.
        for &(t_s, o_true) in &[(20.0, 2e-5), (80.0, 5e-5 + 3e-6 * 30.0)] {
            let t = Time::from_secs_f64(t_s);
            let got = (pw.map(t) - t).as_secs_f64();
            assert!(
                (got - o_true).abs() < 5e-6,
                "at {t_s}s: got {got}, want {o_true}"
            );
        }
    }

    #[test]
    fn single_line_cannot_do_what_minmax_does() {
        // Compare against the Duda regression on the same kinked corridor:
        // min/max's error at the kink is much smaller.
        let c = kinked_corridor(100);
        let pw = minmax_map(&c, 10).unwrap();
        let line = super::super::duda::regression_map(&c).unwrap();
        let t = Time::from_secs_f64(50.0);
        let true_o = 5e-5;
        let pw_err = ((pw.map(t) - t).as_secs_f64() - true_o).abs();
        let line_err = ((line.map(t) - t).as_secs_f64() - true_o).abs();
        assert!(
            pw_err * 3.0 < line_err,
            "piecewise {pw_err} should beat line {line_err} at the kink"
        );
    }

    #[test]
    fn one_sided_bins_are_skipped() {
        let mut c = Corridor::default();
        // Only lower bounds early, only upper bounds late, overlap in the
        // middle: just the middle bins qualify → too few anchors.
        for i in 0..10 {
            c.lower.push((Time::from_secs(i), Dur::from_us(-5)));
        }
        for i in 9..19 {
            c.upper.push((Time::from_secs(i), Dur::from_us(5)));
        }
        let res = minmax_map(&c, 10);
        assert!(matches!(res, Err(MinMaxError::TooFewIntervals)));
    }

    #[test]
    fn empty_corridor_rejected() {
        assert!(matches!(
            minmax_map(&Corridor::default(), 4),
            Err(MinMaxError::EmptyCorridor)
        ));
    }
}
