//! Classic error-estimation baselines (paper §V).
//!
//! These techniques predate the CLC and estimate a *correction function*
//! per process pair from the messages exchanged between them: every message
//! constrains the relative clock offset from one side (a receive cannot
//! precede its send plus `l_min`), so the offset is confined to a
//! **corridor** between lower and upper bound points. The baselines differ
//! in how they fit a function into the corridor:
//!
//! * [`duda`] — least-squares regression and convex-hull separating line
//!   (Duda et al. 1987),
//! * [`hofmann`] — interval-wise min/max midpoints, piecewise linear
//!   (Hofmann 1993),
//! * [`jezequel`] — spanning-tree composition over arbitrary topologies
//!   (Jézéquel 1989),
//! * [`babaoglu`] — bounds harvested from full message exchanges
//!   (Babaoğlu/Drummond 1987).

pub mod babaoglu;
pub mod duda;
pub mod hofmann;
pub mod jezequel;

use crate::interp::TimestampMap;
use simclock::{Dur, Time};
use tracefmt::{CollFlavor, CollectiveInstance, Matching, MinLatency, Trace};

/// Offset-bound points for one ordered process pair `(ref_proc, worker)`.
///
/// The corridor constrains the correction `o(t)` that maps worker time `t`
/// onto the reference axis (`corrected = t + o(t)`):
/// * messages reference → worker yield **lower** bounds (`o(t_recv) ≥
///   t_send + l_min − t_recv`),
/// * messages worker → reference yield **upper** bounds (`o(t_send) ≤
///   t_recv − l_min − t_send`).
#[derive(Debug, Clone, Default)]
pub struct Corridor {
    /// `(worker_time, bound)` lower-bound points.
    pub lower: Vec<(Time, Dur)>,
    /// `(worker_time, bound)` upper-bound points.
    pub upper: Vec<(Time, Dur)>,
}

impl Corridor {
    /// Both bound directions present (required by most fitters).
    pub fn is_two_sided(&self) -> bool {
        !self.lower.is_empty() && !self.upper.is_empty()
    }

    /// Total number of constraint points.
    pub fn len(&self) -> usize {
        self.lower.len() + self.upper.len()
    }

    /// True if no constraints were found.
    pub fn is_empty(&self) -> bool {
        self.lower.is_empty() && self.upper.is_empty()
    }

    /// Merge another corridor's points (e.g. p2p + collective bounds).
    pub fn merge(&mut self, other: Corridor) {
        self.lower.extend(other.lower);
        self.upper.extend(other.upper);
    }
}

/// Extract the corridor for `(ref_proc, worker)` from matched point-to-point
/// messages.
pub fn corridor_between(
    trace: &Trace,
    matching: &Matching,
    ref_proc: usize,
    worker: usize,
    lmin: &dyn MinLatency,
) -> Corridor {
    let mut c = Corridor::default();
    for m in &matching.messages {
        let bound = lmin.l_min(m.from, m.to);
        if m.send.p() == ref_proc && m.recv.p() == worker {
            // o(recv) >= send + l - recv
            let t = trace.time(m.recv);
            c.lower.push((t, trace.time(m.send) + bound - t));
        } else if m.send.p() == worker && m.recv.p() == ref_proc {
            // o(send) <= recv - l - send
            let t = trace.time(m.send);
            c.upper.push((t, trace.time(m.recv) - bound - t));
        }
    }
    c.lower.sort_by_key(|p| p.0);
    c.upper.sort_by_key(|p| p.0);
    c
}

/// Extract a corridor from collective instances by the flavour mapping
/// (each logical message constrains like a p2p message). This is the data
/// source of the Babaoğlu/Drummond full-exchange technique.
pub fn corridor_from_collectives(
    trace: &Trace,
    insts: &[CollectiveInstance],
    ref_proc: usize,
    worker: usize,
    lmin: &dyn MinLatency,
) -> Corridor {
    let mut c = Corridor::default();
    for inst in insts {
        // Find the two members (if both participate).
        let find = |p: usize| {
            inst.members
                .iter()
                .find(|m| m.begin.p() == p)
                .map(|m| (m.rank, m.begin, m.end))
        };
        let (Some((r_rank, r_begin, r_end)), Some((w_rank, w_begin, w_end))) =
            (find(ref_proc), find(worker))
        else {
            continue;
        };
        // Which logical messages exist depends on the flavour.
        let ref_sends = match inst.op.flavor() {
            CollFlavor::NToN => true,
            CollFlavor::OneToN => inst.root == Some(r_rank),
            CollFlavor::NToOne => inst.root == Some(w_rank),
            CollFlavor::Prefix => r_rank < w_rank,
        };
        let worker_sends = match inst.op.flavor() {
            CollFlavor::NToN => true,
            CollFlavor::OneToN => inst.root == Some(w_rank),
            CollFlavor::NToOne => inst.root == Some(r_rank),
            CollFlavor::Prefix => w_rank < r_rank,
        };
        if ref_sends {
            // ref begin -> worker end: lower bound at worker end time.
            let t = trace.time(w_end);
            c.lower
                .push((t, trace.time(r_begin) + lmin.l_min(r_rank, w_rank) - t));
        }
        if worker_sends {
            // worker begin -> ref end: upper bound at worker begin time.
            let t = trace.time(w_begin);
            c.upper
                .push((t, trace.time(r_end) - lmin.l_min(w_rank, r_rank) - t));
        }
    }
    c.lower.sort_by_key(|p| p.0);
    c.upper.sort_by_key(|p| p.0);
    c
}

/// An affine timestamp map `m(t) = gain·t + offset` — the closed form of
/// every line-based fitter, exactly composable along spanning-tree paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineMap {
    /// Multiplicative rate correction.
    pub gain: f64,
    /// Additive offset in seconds.
    pub offset_s: f64,
}

impl AffineMap {
    /// The identity.
    pub fn identity() -> Self {
        AffineMap {
            gain: 1.0,
            offset_s: 0.0,
        }
    }

    /// From an offset line `o(t) = slope·t + intercept` (the fitters
    /// produce offsets, not absolute maps): `m(t) = t + o(t)`.
    pub fn from_offset_line(slope: f64, intercept_s: f64) -> Self {
        AffineMap {
            gain: 1.0 + slope,
            offset_s: intercept_s,
        }
    }

    /// `self ∘ inner`: apply `inner` first, then `self`.
    pub fn compose(&self, inner: &AffineMap) -> AffineMap {
        AffineMap {
            gain: self.gain * inner.gain,
            offset_s: self.gain * inner.offset_s + self.offset_s,
        }
    }
}

impl TimestampMap for AffineMap {
    fn map(&self, t: Time) -> Time {
        Time::from_secs_f64(self.gain * t.as_secs_f64() + self.offset_s)
    }
}

/// Convert corridor points to `(seconds, seconds)` pairs for the fitters.
pub(crate) fn to_xy(points: &[(Time, Dur)]) -> Vec<(f64, f64)> {
    points
        .iter()
        .map(|&(t, d)| (t.as_secs_f64(), d.as_secs_f64()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::Time;
    use tracefmt::{match_messages, EventKind, Rank, Tag, UniformLatency};

    fn us(n: i64) -> Time {
        Time::from_us(n)
    }

    /// Two processes, worker clock exactly +100 µs ahead of the reference
    /// (so the correct o = −100 µs), messages both ways with 10 µs true
    /// transfer and l_min = 4 µs.
    fn two_way_trace() -> Trace {
        let mut t = Trace::for_ranks(2);
        // ref sends at 0 (true), worker receives at true 10 → records 110.
        t.procs[0].push(us(0), EventKind::Send { to: Rank(1), tag: Tag(0), bytes: 0 });
        t.procs[1].push(us(110), EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 0 });
        // worker sends at true 50 → records 150; ref receives at true 60.
        t.procs[1].push(us(150), EventKind::Send { to: Rank(0), tag: Tag(1), bytes: 0 });
        t.procs[0].push(us(60), EventKind::Recv { from: Rank(1), tag: Tag(1), bytes: 0 });
        t
    }

    #[test]
    fn corridor_brackets_the_true_offset() {
        let t = two_way_trace();
        let m = match_messages(&t);
        let c = corridor_between(&t, &m, 0, 1, &UniformLatency(Dur::from_us(4)));
        assert!(c.is_two_sided());
        assert_eq!(c.lower.len(), 1);
        assert_eq!(c.upper.len(), 1);
        // Lower: 0 + 4 - 110 = -106; upper: 60 - 4 - 150 = -94.
        assert_eq!(c.lower[0].1, Dur::from_us(-106));
        assert_eq!(c.upper[0].1, Dur::from_us(-94));
        // True offset -100 µs lies inside.
        assert!(c.lower[0].1 <= Dur::from_us(-100));
        assert!(c.upper[0].1 >= Dur::from_us(-100));
    }

    #[test]
    fn affine_compose_is_function_composition() {
        let a = AffineMap { gain: 2.0, offset_s: 1.0 };
        let b = AffineMap { gain: 0.5, offset_s: -3.0 };
        let t = Time::from_secs(10);
        let via_compose = a.compose(&b).map(t);
        let via_apply = a.map(b.map(t));
        assert_eq!(via_compose, via_apply);
        // Identity composes neutrally.
        assert_eq!(AffineMap::identity().compose(&a), a);
    }

    #[test]
    fn from_offset_line_matches_linear_interpolation_semantics() {
        // o(t) = 2e-6 t + 100 µs.
        let m = AffineMap::from_offset_line(2e-6, 100e-6);
        let t = Time::from_secs(50);
        let expected = t + Dur::from_us(100) + Dur::from_us(100); // 50 s * 2 µs/s
        assert!((m.map(t) - expected).abs() < Dur::from_ns(1));
    }

    #[test]
    fn corridor_merge() {
        let mut a = Corridor::default();
        a.lower.push((us(0), Dur::from_us(1)));
        let mut b = Corridor::default();
        b.upper.push((us(5), Dur::from_us(2)));
        assert!(!a.is_two_sided());
        a.merge(b);
        assert!(a.is_two_sided());
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }
}
