//! The end-to-end synchronisation pipeline the paper recommends (§V/§VI):
//! weak pre-synchronisation by linear offset interpolation, then the CLC to
//! remove residual clock-condition violations.
//!
//! [`synchronize`] drives the whole chain on a trace and reports violation
//! counts before, after interpolation, and after the CLC — the numbers the
//! constructive experiments print.

use crate::clc::{controlled_logical_clock, ClcError, ClcParams, ClcReport};
use crate::interp::{IdentityMap, LinearInterpolation, OffsetAlignment, TimestampMap};
use crate::offset::OffsetMeasurement;
use tracefmt::{
    check_collectives, check_p2p, match_collectives, match_messages, CollReport, MinLatency,
    P2pReport, Trace,
};

/// Which pre-synchronisation to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreSync {
    /// Leave timestamps untouched.
    None,
    /// Offset alignment from the initialization measurement only.
    AlignOnly,
    /// Eq. 3 linear interpolation between the init and finalize
    /// measurements (Scalasca's scheme).
    Linear,
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Pre-synchronisation stage.
    pub presync: PreSync,
    /// CLC stage (None = skip).
    pub clc: Option<ClcParams>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            presync: PreSync::Linear,
            clc: Some(ClcParams::default()),
        }
    }
}

/// Violation census of one pipeline stage.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Point-to-point check.
    pub p2p: P2pReport,
    /// Collective (logical message) check.
    pub coll: CollReport,
}

impl StageReport {
    fn capture(trace: &Trace, lmin: &dyn MinLatency) -> Result<Self, String> {
        let m = match_messages(trace);
        let insts = match_collectives(trace)?;
        Ok(StageReport {
            p2p: check_p2p(trace, &m, lmin),
            coll: check_collectives(trace, &insts, lmin),
        })
    }

    /// Total violated constraints (messages + logical messages).
    pub fn total_violations(&self) -> usize {
        self.p2p.violations.len() + self.coll.logical_violated
    }
}

/// Outcome of the full pipeline.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Census on the raw trace.
    pub raw: StageReport,
    /// Census after pre-synchronisation (equals `raw` when
    /// `PreSync::None`).
    pub after_presync: StageReport,
    /// Census after the CLC (None when the CLC stage was skipped).
    pub after_clc: Option<StageReport>,
    /// CLC statistics (None when skipped).
    pub clc: Option<ClcReport>,
}

/// Pipeline failures.
#[derive(Debug, Clone)]
pub enum PipelineError {
    /// A measurement vector does not match the process count.
    BadMeasurements(String),
    /// Trace reconstruction failed.
    BadTrace(String),
    /// The CLC stage failed.
    Clc(ClcError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::BadMeasurements(s) => write!(f, "bad measurements: {s}"),
            PipelineError::BadTrace(s) => write!(f, "bad trace: {s}"),
            PipelineError::Clc(e) => write!(f, "CLC failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Run the pipeline on `trace` in place.
///
/// `init[p]` / `fin[p]` are the offset measurements of process `p` taken at
/// program initialization and finalization (`None` entries for the master,
/// which is never remapped). `fin` may be `None` as a whole when only
/// alignment is requested.
pub fn synchronize(
    trace: &mut Trace,
    init: &[Option<OffsetMeasurement>],
    fin: Option<&[Option<OffsetMeasurement>]>,
    lmin: &dyn MinLatency,
    cfg: &PipelineConfig,
) -> Result<PipelineReport, PipelineError> {
    let n = trace.n_procs();
    if init.len() != n {
        return Err(PipelineError::BadMeasurements(format!(
            "init has {} entries for {} procs",
            init.len(),
            n
        )));
    }
    if let Some(f) = fin {
        if f.len() != n {
            return Err(PipelineError::BadMeasurements(format!(
                "fin has {} entries for {} procs",
                f.len(),
                n
            )));
        }
    }

    let raw = StageReport::capture(trace, lmin).map_err(PipelineError::BadTrace)?;

    // Pre-synchronisation.
    match cfg.presync {
        PreSync::None => {}
        PreSync::AlignOnly => {
            let maps: Vec<Box<dyn TimestampMap>> = init
                .iter()
                .map(|m| -> Box<dyn TimestampMap> {
                    match m {
                        Some(m) => Box::new(OffsetAlignment::new(m)),
                        None => Box::new(IdentityMap),
                    }
                })
                .collect();
            crate::interp::apply_maps(trace, &maps);
        }
        PreSync::Linear => {
            let fin = fin.ok_or_else(|| {
                PipelineError::BadMeasurements(
                    "linear interpolation requires finalize measurements".into(),
                )
            })?;
            let maps: Vec<Box<dyn TimestampMap>> = init
                .iter()
                .zip(fin)
                .map(|(a, b)| -> Box<dyn TimestampMap> {
                    match (a, b) {
                        (Some(a), Some(b)) => Box::new(LinearInterpolation::new(a, b)),
                        _ => Box::new(IdentityMap),
                    }
                })
                .collect();
            crate::interp::apply_maps(trace, &maps);
        }
    }
    let after_presync = StageReport::capture(trace, lmin).map_err(PipelineError::BadTrace)?;

    // CLC cleanup.
    let (after_clc, clc) = match &cfg.clc {
        None => (None, None),
        Some(params) => {
            let rep =
                controlled_logical_clock(trace, lmin, params).map_err(PipelineError::Clc)?;
            let census = StageReport::capture(trace, lmin).map_err(PipelineError::BadTrace)?;
            (Some(census), Some(rep))
        }
    };

    Ok(PipelineReport {
        raw,
        after_presync,
        after_clc,
        clc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::{Dur, Time};
    use tracefmt::{EventKind, Rank, Tag, UniformLatency};

    const LMIN: UniformLatency = UniformLatency(Dur::from_ps(4_000_000));

    /// Worker clock +500 µs ahead; messages both directions with 10 µs true
    /// transfer. Raw trace: master→worker messages look "too long"
    /// (510 µs), worker→master messages look reversed (−490 µs).
    fn skewed_trace() -> Trace {
        let mut t = Trace::for_ranks(2);
        let off = 500;
        for k in 0..10 {
            let base = k * 1000;
            t.procs[0].push(
                Time::from_us(base),
                EventKind::Send { to: Rank(1), tag: Tag(k as u32), bytes: 0 },
            );
            t.procs[1].push(
                Time::from_us(base + 10 + off),
                EventKind::Recv { from: Rank(0), tag: Tag(k as u32), bytes: 0 },
            );
            t.procs[1].push(
                Time::from_us(base + 500 + off),
                EventKind::Send { to: Rank(0), tag: Tag(1000 + k as u32), bytes: 0 },
            );
            t.procs[0].push(
                Time::from_us(base + 510),
                EventKind::Recv { from: Rank(1), tag: Tag(1000 + k as u32), bytes: 0 },
            );
        }
        t
    }

    fn measurements(offset_us: i64, w: i64) -> Option<OffsetMeasurement> {
        Some(OffsetMeasurement {
            worker_time: Time::from_us(w),
            offset: Dur::from_us(offset_us),
            rtt: Dur::from_us(10),
        })
    }

    #[test]
    fn full_pipeline_repairs_everything() {
        let mut t = skewed_trace();
        // Measured offsets: master - worker = -500 µs (accurate).
        let init = vec![None, measurements(-500, 0)];
        let fin = vec![None, measurements(-500, 10_000)];
        let rep = synchronize(
            &mut t,
            &init,
            Some(&fin),
            &LMIN,
            &PipelineConfig::default(),
        )
        .unwrap();
        // Raw trace: the 10 worker→master messages are reversed.
        assert_eq!(rep.raw.p2p.reversed, 10);
        // Interpolation with accurate offsets already fixes them.
        assert_eq!(rep.after_presync.total_violations(), 0);
        let after = rep.after_clc.unwrap();
        assert_eq!(after.total_violations(), 0);
    }

    #[test]
    fn clc_rescues_inaccurate_interpolation() {
        let mut t = skewed_trace();
        // Offset measurements off by 30 µs (asymmetric probe error): the
        // interpolation leaves violations behind; the CLC must clear them.
        let init = vec![None, measurements(-530, 0)];
        let fin = vec![None, measurements(-530, 10_000)];
        let rep = synchronize(
            &mut t,
            &init,
            Some(&fin),
            &LMIN,
            &PipelineConfig::default(),
        )
        .unwrap();
        assert!(
            rep.after_presync.total_violations() > 0,
            "expected residual violations after bad interpolation"
        );
        assert_eq!(rep.after_clc.unwrap().total_violations(), 0);
        assert!(rep.clc.unwrap().n_jumps() > 0);
    }

    #[test]
    fn align_only_without_finalize() {
        let mut t = skewed_trace();
        let init = vec![None, measurements(-500, 0)];
        let cfg = PipelineConfig {
            presync: PreSync::AlignOnly,
            clc: None,
        };
        let rep = synchronize(&mut t, &init, None, &LMIN, &cfg).unwrap();
        assert_eq!(rep.after_presync.total_violations(), 0);
        assert!(rep.after_clc.is_none());
    }

    #[test]
    fn linear_without_finalize_is_an_error() {
        let mut t = skewed_trace();
        let init = vec![None, measurements(-500, 0)];
        let err = synchronize(&mut t, &init, None, &LMIN, &PipelineConfig::default());
        assert!(matches!(err, Err(PipelineError::BadMeasurements(_))));
    }

    #[test]
    fn wrong_measurement_count_is_an_error() {
        let mut t = skewed_trace();
        let err = synchronize(&mut t, &[], None, &LMIN, &PipelineConfig::default());
        assert!(matches!(err, Err(PipelineError::BadMeasurements(_))));
    }
}
