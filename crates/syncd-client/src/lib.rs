//! Blocking client for the `syncd` network protocol.

#![warn(missing_docs)]

mod client;

pub use client::{ClientError, JobOutcome, JobRequest, JobSummary, SyncClient};
