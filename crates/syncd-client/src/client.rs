//! The blocking connection: handshake, credit-bound upload, result
//! collection.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use syncd_wire::{
    ErrorCode, Frame, FrameScanner, WireError, WireJobConfig, WireJobResult, WireJump,
    CHUNK_PAYLOAD, MAGIC, VERSION,
};

/// The result summary of one network job. This is exactly the terminal
/// [`Frame::JobResult`] payload.
pub type JobSummary = WireJobResult;

/// Everything that can end a client call.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, or peer hangup).
    Io(String),
    /// The byte stream violated the frame protocol.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Remote {
        /// The error class.
        code: ErrorCode,
        /// Server-provided detail.
        detail: String,
    },
    /// The server sent a frame the protocol state does not allow.
    Protocol(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Remote { code, detail } => write!(f, "server error {code:?}: {detail}"),
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e.to_string())
    }
}

/// One job to submit: the wire config plus the DTC2/DTC3 stream bytes.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Pipeline + scheduling header.
    pub config: WireJobConfig,
    /// Input stream chunks (any chunking; the client re-slices to
    /// [`CHUNK_PAYLOAD`]-sized wire frames).
    pub chunks: Vec<Vec<u8>>,
}

/// The collected outcome of one successful network job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Terminal summary frame.
    pub summary: JobSummary,
    /// The corrected output stream, in arrival order: batch jobs deliver
    /// it as `Chunk` frames after completion, incremental jobs as indexed
    /// `CorrectedFrame`s while running. Either way these bytes decode
    /// with `tracefmt::io::from_binary_columnar`.
    pub stream: Vec<Vec<u8>>,
    /// The full CLC jump set.
    pub jumps: Vec<WireJump>,
}

/// A blocking `syncd` connection. One job runs at a time; the connection
/// can be reused for any number of sequential jobs.
pub struct SyncClient {
    stream: TcpStream,
    scanner: FrameScanner,
    pending: VecDeque<Frame>,
    /// Chunk-payload bytes we may still send before waiting for a grant.
    credit: u64,
}

impl SyncClient {
    /// Connect and complete the Hello/HelloAck handshake.
    pub fn connect<A: ToSocketAddrs>(addr: A, token: &str) -> Result<SyncClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // Generous safety-net timeout: every legal wait in the protocol is
        // bounded by server-side deadlines far below this.
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        let _ = stream.set_nodelay(true);
        let mut client = SyncClient {
            stream,
            scanner: FrameScanner::new(),
            pending: VecDeque::new(),
            credit: 0,
        };
        client.send(&Frame::Hello {
            magic: MAGIC,
            version: VERSION,
            token: token.to_string(),
        })?;
        match client.recv()? {
            Frame::HelloAck { version: _, credit } => {
                client.credit = credit;
                Ok(client)
            }
            Frame::Error { code, detail } => Err(ClientError::Remote { code, detail }),
            _ => Err(ClientError::Protocol("expected HelloAck")),
        }
    }

    /// Remaining send credit in bytes (test/diagnostic visibility).
    pub fn credit(&self) -> u64 {
        self.credit
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        self.stream.write_all(&frame.encode())?;
        Ok(())
    }

    /// Next frame from the server, reading as needed.
    fn recv(&mut self) -> Result<Frame, ClientError> {
        loop {
            if let Some(f) = self.pending.pop_front() {
                return Ok(f);
            }
            let mut buf = [0u8; 64 * 1024];
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                self.scanner.finish()?;
                return Err(ClientError::Io("connection closed by server".into()));
            }
            self.pending.extend(self.scanner.feed(&buf[..n])?);
        }
    }

    /// Consume credit for `need` bytes, blocking on `Credit` grants. Any
    /// terminal `Error` frame that arrives instead aborts the upload.
    fn take_credit(&mut self, need: u64) -> Result<(), ClientError> {
        while self.credit < need {
            match self.recv()? {
                Frame::Credit { grant } => self.credit += grant,
                Frame::Error { code, detail } => {
                    return Err(ClientError::Remote { code, detail })
                }
                _ => return Err(ClientError::Protocol("expected Credit during upload")),
            }
        }
        self.credit -= need;
        Ok(())
    }

    /// Submit one job and block until its terminal frame.
    pub fn submit(&mut self, req: &JobRequest) -> Result<JobOutcome, ClientError> {
        self.send(&Frame::JobConfig(Box::new(req.config.clone())))?;
        for chunk in &req.chunks {
            for slice in chunk.chunks(CHUNK_PAYLOAD.max(1)) {
                self.take_credit(slice.len() as u64)?;
                self.send(&Frame::Chunk(slice.to_vec()))?;
            }
        }
        self.send(&Frame::ChunkEnd)?;
        self.collect()
    }

    /// Upload a job but hang up after `upload_bytes` stream bytes: the
    /// disconnect tests use this to abandon a job mid-stream.
    pub fn submit_truncated(
        mut self,
        req: &JobRequest,
        upload_bytes: usize,
    ) -> Result<(), ClientError> {
        self.send(&Frame::JobConfig(Box::new(req.config.clone())))?;
        let mut sent = 0usize;
        'outer: for chunk in &req.chunks {
            for slice in chunk.chunks(CHUNK_PAYLOAD.max(1)) {
                if sent >= upload_bytes {
                    break 'outer;
                }
                let cut = slice.len().min(upload_bytes - sent);
                self.take_credit(cut as u64)?;
                self.send(&Frame::Chunk(slice[..cut].to_vec()))?;
                sent += cut;
            }
        }
        // Drop without ChunkEnd: the server must release every admission
        // charge this connection held.
        Ok(())
    }

    /// Submit and then drop the connection after receiving `keep` result
    /// frames — a client that disappears mid-download.
    pub fn submit_abandon_result(
        mut self,
        req: &JobRequest,
        keep: usize,
    ) -> Result<(), ClientError> {
        self.send(&Frame::JobConfig(Box::new(req.config.clone())))?;
        for chunk in &req.chunks {
            for slice in chunk.chunks(CHUNK_PAYLOAD.max(1)) {
                self.take_credit(slice.len() as u64)?;
                self.send(&Frame::Chunk(slice.to_vec()))?;
            }
        }
        self.send(&Frame::ChunkEnd)?;
        for _ in 0..keep {
            match self.recv() {
                Ok(Frame::JobResult(_)) | Ok(Frame::Error { .. }) | Err(_) => return Ok(()),
                Ok(_) => {}
            }
        }
        Ok(())
    }

    /// Send a cancel for the in-flight job (fire and forget; the terminal
    /// frame still arrives through the normal path).
    pub fn cancel(&mut self) -> Result<(), ClientError> {
        self.send(&Frame::Cancel)
    }

    fn collect(&mut self) -> Result<JobOutcome, ClientError> {
        let mut stream = Vec::new();
        let mut jumps = Vec::new();
        let mut next_idx = 0u64;
        loop {
            match self.recv()? {
                Frame::Chunk(bytes) => stream.push(bytes),
                Frame::CorrectedFrame { index, bytes } => {
                    // A transparent server-side retry may legally resend
                    // nothing below the high-water mark; a gap is a bug.
                    if index == next_idx {
                        stream.push(bytes);
                        next_idx += 1;
                    } else if index > next_idx {
                        return Err(ClientError::Protocol("corrected frame gap"));
                    }
                }
                Frame::Jumps(batch) => jumps.extend(batch),
                Frame::Credit { grant } => self.credit += grant,
                Frame::JobResult(summary) => {
                    return Ok(JobOutcome { summary, stream, jumps })
                }
                Frame::Error { code, detail } => {
                    return Err(ClientError::Remote { code, detail })
                }
                _ => return Err(ClientError::Protocol("unexpected frame in result stream")),
            }
        }
    }
}
