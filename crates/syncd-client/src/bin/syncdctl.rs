//! `syncdctl` — the small network CLI for `syncd`.
//!
//! ```text
//! syncdctl ping   --addr HOST:PORT --token TOKEN
//! syncdctl submit --addr HOST:PORT --token TOKEN [--procs N] [--msgs N]
//!                 [--seed N] [--incremental WINDOW] [--presync none|align|linear]
//!                 [--method interp|clc|online] [--churn]
//!                 [--workers N] [--v3] [--priority high|normal|low]
//! ```
//!
//! `submit` generates a synthetic drifted trace (the same construction the
//! integration fixtures use: true-timeline messages recorded through
//! drifting clocks), uploads it, and prints the job summary — a one-command
//! end-to-end smoke of the wire path.
//!
//! `--method` selects the synchronization method the service runs: `interp`
//! (offset interpolation only), `clc` (presync + controlled logical clock,
//! the default), or `online` (the recursive drift/offset filter; the fixture's
//! per-process probe schedules ride along in the job config). `--churn` swaps
//! the static fixture for a dynamic-membership scenario: NTP islands behind
//! WAN links, nodes joining and leaving mid-trace, and probe noise composed
//! along an evolving sync spanning tree.

use clocksync::OffsetMeasurement;
use onlinesync::NetworkConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simclock::{ConstantDrift, DriftModel, Dur, SinusoidalDrift, Time};
use syncd_client::{JobRequest, SyncClient};
use syncd_wire::{WireJobConfig, WireLatency, WireMeasurement, WireMode};
use tracefmt::io::{to_binary_columnar_blocked, to_binary_columnar_v3_blocked};
use tracefmt::{EventKind, Rank, Tag, Trace};
use workloads::churn_scenario;

struct Args {
    map: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Args {
        let mut map = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    map.push((name.to_string(), argv[i + 1].clone()));
                    i += 2;
                } else {
                    flags.push(name.to_string());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Args { map, flags }
    }
    fn get(&self, name: &str) -> Option<&str> {
        self.map
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
    fn num(&self, name: &str, default: u64) -> u64 {
        self.get(name).map_or(default, |v| {
            v.parse().unwrap_or_else(|_| die(&format!("--{name} wants a number, got {v}")))
        })
    }
    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

fn die(msg: &str) -> ! {
    eprintln!("syncdctl: {msg}");
    std::process::exit(2);
}

/// Everything `submit` needs from a generated fixture.
struct Fixture {
    trace: Trace,
    init: Vec<Option<OffsetMeasurement>>,
    fin: Vec<Option<OffsetMeasurement>>,
    /// Per-process probe schedules for `--method online`.
    probes: Vec<Vec<OffsetMeasurement>>,
    lmin_ps: i64,
}

/// A causally valid message trace recorded through drifting clocks, plus
/// init/finalize offset probes — a compact cousin of the test fixtures.
fn drifted_fixture(procs: usize, msgs: usize, seed: u64) -> Fixture {
    let mut rng = StdRng::seed_from_u64(seed);
    let drifts: Vec<Option<Box<dyn DriftModel>>> = (0..procs)
        .map(|p| -> Option<Box<dyn DriftModel>> {
            if p == 0 {
                None
            } else if p % 2 == 0 {
                Some(Box::new(ConstantDrift::new(rng.gen_range(-40e-6..40e-6))))
            } else {
                Some(Box::new(SinusoidalDrift::new(
                    rng.gen_range(1e-6..20e-6),
                    rng.gen_range(0.5..3.0),
                    rng.gen_range(0.0..1.0),
                )))
            }
        })
        .collect();
    let offsets: Vec<i64> = (0..procs)
        .map(|p| if p == 0 { 0 } else { rng.gen_range(-800i64..800) })
        .collect();
    let local_at = |p: usize, true_us: i64| -> i64 {
        let wander = drifts[p]
            .as_ref()
            .map_or(0, |d| (d.integrated(Time::from_us(true_us)) * 1e6).round() as i64);
        true_us + offsets[p] + wander
    };
    let lmin_us = rng.gen_range(2i64..15);
    let mut trace = Trace::for_ranks(procs);
    let mut now = vec![0i64; procs];
    for m in 0..msgs {
        let from = rng.gen_range(0usize..procs);
        let to = (from + rng.gen_range(1usize..procs)) % procs;
        let send_true = now[from] + rng.gen_range(5i64..80);
        now[from] = send_true;
        let recv_true = send_true.max(now[to]) + lmin_us + rng.gen_range(0i64..40);
        now[to] = recv_true;
        trace.procs[from].push(
            Time::from_us(local_at(from, send_true)),
            EventKind::Send { to: Rank(to as u32), tag: Tag(m as u32), bytes: 64 },
        );
        trace.procs[to].push(
            Time::from_us(local_at(to, recv_true)),
            EventKind::Recv { from: Rank(from as u32), tag: Tag(m as u32), bytes: 64 },
        );
    }
    let end = *now.iter().max().unwrap_or(&0) + 100;
    let measure = |p: usize, true_us: i64, err: i64| {
        if p == 0 {
            return None;
        }
        let local = local_at(p, true_us);
        Some(OffsetMeasurement {
            worker_time: Time::from_us(local),
            offset: Dur::from_us(true_us - local + err),
            rtt: Dur::from_us(12),
        })
    };
    let errs: Vec<i64> = (0..procs).map(|_| rng.gen_range(-6i64..6)).collect();
    let init = (0..procs).map(|p| measure(p, 0, errs[p])).collect();
    let fin = (0..procs).map(|p| measure(p, end, -errs[p])).collect();
    // A periodic probe schedule per worker for the online method, spanning
    // the whole run (the interp path keeps using only init/fin).
    let step = (end / 24).max(50);
    let mut probes: Vec<Vec<OffsetMeasurement>> = vec![Vec::new(); procs];
    for (p, lane) in probes.iter_mut().enumerate().skip(1) {
        let mut at = step / 2;
        while at <= end {
            lane.extend(measure(p, at, rng.gen_range(-4i64..4)));
            at += step;
        }
    }
    Fixture { trace, init, fin, probes, lmin_ps: Dur::from_us(lmin_us).as_ps() }
}

/// A dynamic-membership fixture: the `workloads::churn` scenario reduced
/// to the same shape the wire path ships.
fn churn_fixture(procs: usize, msgs: usize, seed: u64) -> Fixture {
    let cfg = NetworkConfig { nodes: procs.max(3), ..NetworkConfig::default() };
    let s = churn_scenario(cfg, msgs, seed);
    let conv = |m: &workloads::ProbeMeasurement| OffsetMeasurement {
        worker_time: m.worker_time,
        offset: m.offset,
        rtt: m.rtt,
    };
    Fixture {
        trace: s.trace,
        init: s.init.iter().map(|m| m.as_ref().map(conv)).collect(),
        fin: s.fin.iter().map(|m| m.as_ref().map(conv)).collect(),
        probes: s.probes.iter().map(|ps| ps.iter().map(conv).collect()).collect(),
        lmin_ps: s.lmin.0.as_ps(),
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = argv.first().map(String::as_str).unwrap_or("");
    let args = Args::parse(&argv[argv.len().min(1)..]);
    let addr = args.get("addr").unwrap_or("127.0.0.1:7440").to_string();
    let token = args.get("token").unwrap_or("default").to_string();
    match cmd {
        "ping" => {
            let client = SyncClient::connect(&addr, &token)
                .unwrap_or_else(|e| die(&format!("connect {addr}: {e}")));
            println!("syncd at {addr}: ok, initial credit {} bytes", client.credit());
        }
        "submit" => {
            let procs = args.num("procs", 8) as usize;
            let msgs = args.num("msgs", 2000) as usize;
            let seed = args.num("seed", 42);
            let fixture = if args.flag("churn") {
                churn_fixture(procs.max(3), msgs, seed)
            } else {
                drifted_fixture(procs.max(2), msgs, seed)
            };
            let method: u8 = match args.get("method").unwrap_or("clc") {
                "interp" => 0,
                "clc" => 1,
                "online" => 2,
                other => die(&format!("unknown method {other}")),
            };
            let stream = if args.flag("v3") {
                to_binary_columnar_v3_blocked(&fixture.trace, 256).to_vec()
            } else {
                to_binary_columnar_blocked(&fixture.trace, 256).to_vec()
            };
            let mut config = WireJobConfig {
                mode: if let Some(w) = args.get("incremental") {
                    if method == 2 {
                        die("--method online is batch-only (the incremental engine rejects it)");
                    }
                    WireMode::Incremental {
                        window_events: w.parse().unwrap_or_else(|_| die("bad --incremental")),
                    }
                } else {
                    WireMode::Batch
                },
                priority: match args.get("priority").unwrap_or("normal") {
                    "high" => 0,
                    "normal" => 1,
                    "low" => 2,
                    other => die(&format!("unknown priority {other}")),
                },
                presync: match args.get("presync").unwrap_or("linear") {
                    "none" => 0,
                    "align" => 1,
                    "linear" => 2,
                    other => die(&format!("unknown presync {other}")),
                },
                lmin: WireLatency::Uniform(fixture.lmin_ps),
                method,
                ..WireJobConfig::new(&Default::default(), WireLatency::Uniform(0))
            };
            if method == 2 {
                config.probes = fixture
                    .probes
                    .iter()
                    .map(|ps| ps.iter().map(WireMeasurement::from_measurement).collect())
                    .collect();
            }
            if let Some(w) = args.get("workers") {
                config.parallel = Some(syncd_wire::WireParallel {
                    workers: w.parse().unwrap_or_else(|_| die("bad --workers")),
                    shard_size: 512,
                });
            }
            config = config.with_measurements(&fixture.init, Some(&fixture.fin));
            let mut client = SyncClient::connect(&addr, &token)
                .unwrap_or_else(|e| die(&format!("connect {addr}: {e}")));
            let req = JobRequest { config, chunks: vec![stream] };
            match client.submit(&req) {
                Ok(outcome) => {
                    let s = outcome.summary;
                    println!(
                        "job ok: attempts={} queue_wait_us={} run_time_us={} \
                         jumps={} max_jump_ps={} moved={}/{} frames={} \
                         out_chunks={} out_bytes={}",
                        s.attempts,
                        s.queue_wait_us,
                        s.run_time_us,
                        s.n_jumps,
                        s.max_jump_ps,
                        s.events_moved,
                        s.events_total,
                        s.frames,
                        outcome.stream.len(),
                        outcome.stream.iter().map(Vec::len).sum::<usize>(),
                    );
                    if s.census_present {
                        if method == 2 {
                            // The online census rides in the presync slot.
                            println!(
                                "censuses: raw={} online={}",
                                s.raw_violations, s.after_presync_violations,
                            );
                        } else if s.after_clc_violations == u64::MAX {
                            // u64::MAX marks the stage as skipped (interp-only).
                            println!(
                                "censuses: raw={} after_presync={}",
                                s.raw_violations, s.after_presync_violations,
                            );
                        } else {
                            println!(
                                "censuses: raw={} after_presync={} after_clc={}",
                                s.raw_violations,
                                s.after_presync_violations,
                                s.after_clc_violations,
                            );
                        }
                    }
                }
                Err(e) => die(&format!("submit failed: {e}")),
            }
        }
        other => {
            die(&format!(
                "unknown command {other:?}; usage: syncdctl <ping|submit> --addr HOST:PORT \
                 --token TOKEN [options]"
            ));
        }
    }
}
