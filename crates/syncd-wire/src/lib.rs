//! # syncd-wire — the framed network protocol `syncd` speaks
//!
//! Everything that crosses a `syncd` connection is a **frame**:
//!
//! ```text
//! frame := u32 len (LE) | u8 kind | payload[len - 1]
//! ```
//!
//! `len` counts the kind byte plus the payload, so a frame occupies
//! `4 + len` bytes on the wire. The declared length is bounded by
//! [`MAX_FRAME_PAYLOAD`]; anything larger is a typed
//! [`WireError::Oversized`] *before* any allocation happens, so a hostile
//! peer cannot make the other side reserve gigabytes with four bytes.
//!
//! A connection opens with a [`Frame::Hello`] carrying the protocol
//! [`MAGIC`] and [`VERSION`] plus the tenant's auth token; the server
//! answers [`Frame::HelloAck`] with the negotiated version and the initial
//! byte **credit**. From then on the client may send at most as many
//! `Chunk` payload bytes as it holds credit for; the server replenishes
//! credit with [`Frame::Credit`] grants as (and only as) its admission
//! budget allows. That ties connection flow control directly to the
//! service's byte-denominated memory budget: a slow or hostile client
//! stalls *its own* connection, never the server's memory.
//!
//! Frame scanning reuses the partial-frame buffering discipline of
//! [`tracefmt::io::StreamDecoder`]: chunks of any size are scanned in
//! place, and at most one incomplete frame is ever buffered
//! ([`FrameScanner`]).
//!
//! The crate is sans-io on purpose: it never touches a socket. The server
//! (`syncd::net`) and the client (`syncd-client`) both drive these types
//! over whatever transport they have — including the deterministic
//! in-memory transports the simulation harness uses to inject
//! connection-level faults.

#![warn(missing_docs)]

mod frame;
mod scan;

pub use frame::{
    ErrorCode, Frame, FrameKind, WireClc, WireError, WireJobConfig, WireJobResult, WireJump,
    WireLatency, WireMeasurement, WireMode, WireParallel, HELLO_SIZE_HINT,
};
pub use scan::FrameScanner;

/// Protocol magic carried in every [`Frame::Hello`]: `"DSW\0"` with the
/// version negotiated separately.
pub const MAGIC: u32 = 0x0057_5344;

/// Protocol version this crate speaks.
pub const VERSION: u16 = 2;

/// Upper bound on a frame's declared payload length (kind byte included).
/// Large objects — trace streams, corrected traces — are chunked into
/// many frames well below this bound; a declared length above it is
/// rejected as [`WireError::Oversized`] before any buffering.
pub const MAX_FRAME_PAYLOAD: usize = 8 * 1024 * 1024;

/// Chunk payload size the reference client and server slice streams into.
/// Small enough to interleave credit grants and cancellation promptly,
/// large enough that framing overhead (5 bytes) is negligible.
pub const CHUNK_PAYLOAD: usize = 256 * 1024;

/// Encode one frame: length prefix, kind, payload.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    frame.encode()
}
