//! Incremental frame scanning over arbitrarily-chunked byte streams.
//!
//! Sockets deliver bytes in whatever chunks the kernel felt like; frames
//! do not align with reads. [`FrameScanner`] follows the same discipline
//! as `tracefmt`'s `StreamDecoder`: every *complete* frame inside a fed
//! chunk is scanned **in place** (the payload slice handed to the callback
//! borrows straight from the caller's buffer — no intermediate copy), and
//! at most one *incomplete* trailing frame is buffered across calls. The
//! buffer never grows past one frame, and a frame header declaring more
//! than [`crate::MAX_FRAME_PAYLOAD`] bytes is rejected before any
//! buffering, so hostile peers cannot inflate resident memory.

use crate::frame::{Frame, WireError};
use crate::MAX_FRAME_PAYLOAD;

/// The per-frame callback [`FrameScanner::feed_raw`] drives: receives
/// `(kind, payload)` for every complete frame; an `Err` aborts the scan.
pub type RawFrameEmit<'a> = dyn FnMut(u8, &[u8]) -> Result<(), WireError> + 'a;

/// Streaming frame boundary scanner. See the module docs.
#[derive(Debug, Default)]
pub struct FrameScanner {
    /// Bytes of the one incomplete frame carried across `feed` calls
    /// (length prefix included). Empty ⇔ the stream is at a frame
    /// boundary.
    partial: Vec<u8>,
    /// Complete frames scanned so far.
    frames: u64,
    /// Total bytes consumed so far.
    consumed: u64,
}

/// Validate a frame header's declared length: `len` counts the kind byte
/// plus payload, so it must cover at least the kind byte and stay within
/// the protocol bound. Returns the payload length (kind byte excluded).
fn check_len(declared: u32) -> Result<usize, WireError> {
    let declared = declared as usize;
    if declared == 0 || declared > 1 + MAX_FRAME_PAYLOAD {
        return Err(WireError::Oversized { declared: declared as u64 });
    }
    Ok(declared - 1)
}

impl FrameScanner {
    /// A scanner at a frame boundary.
    pub fn new() -> FrameScanner {
        FrameScanner::default()
    }

    /// Complete frames scanned so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Total bytes consumed so far (both complete and buffered).
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Bytes needed before the next complete frame can be produced: a
    /// useful read-size hint. At a frame boundary this is the header size.
    pub fn wanted(&self) -> usize {
        if self.partial.len() < 4 {
            4 + 1 - self.partial.len()
        } else {
            let declared =
                u32::from_le_bytes(self.partial[..4].try_into().unwrap()) as usize;
            (4 + declared).saturating_sub(self.partial.len()).max(1)
        }
    }

    /// True when the stream sits exactly at a frame boundary (no partial
    /// frame buffered) — the only place EOF is legal.
    pub fn at_boundary(&self) -> bool {
        self.partial.is_empty()
    }

    /// Scan `chunk`, invoking `emit(kind, payload)` for every complete
    /// frame. Payload slices borrow from `chunk` (or from the internal
    /// partial buffer when a frame straddled a chunk seam). A typed error
    /// from the scanner or from `emit` aborts the scan; the scanner must
    /// not be fed again after an error.
    pub fn feed_raw(
        &mut self,
        chunk: &[u8],
        emit: &mut RawFrameEmit<'_>,
    ) -> Result<(), WireError> {
        self.consumed += chunk.len() as u64;
        let mut rest = chunk;

        // Stage 1: complete the straddling frame, if any.
        if !self.partial.is_empty() {
            // First make the header whole so the declared length is known
            // (and bounded) before buffering any payload.
            if self.partial.len() < 4 {
                let need = 4 - self.partial.len();
                let take = need.min(rest.len());
                self.partial.extend_from_slice(&rest[..take]);
                rest = &rest[take..];
                if self.partial.len() < 4 {
                    return Ok(());
                }
                check_len(u32::from_le_bytes(self.partial[..4].try_into().unwrap()))?;
            }
            let declared =
                u32::from_le_bytes(self.partial[..4].try_into().unwrap()) as usize;
            let need = 4 + declared - self.partial.len();
            let take = need.min(rest.len());
            self.partial.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.partial.len() < 4 + declared {
                return Ok(());
            }
            self.frames += 1;
            emit(self.partial[4], &self.partial[5..])?;
            self.partial.clear();
        }

        // Stage 2: scan complete frames in place.
        while rest.len() >= 5 {
            let declared = u32::from_le_bytes(rest[..4].try_into().unwrap());
            check_len(declared)?;
            let total = 4 + declared as usize;
            if rest.len() < total {
                break;
            }
            self.frames += 1;
            emit(rest[4], &rest[5..total])?;
            rest = &rest[total..];
        }

        // Stage 3: buffer the incomplete tail (if its header is whole,
        // bound-check it first so we never buffer toward an absurd length).
        if !rest.is_empty() {
            if rest.len() >= 4 {
                check_len(u32::from_le_bytes(rest[..4].try_into().unwrap()))?;
            }
            self.partial.extend_from_slice(rest);
        }
        Ok(())
    }

    /// Like [`FrameScanner::feed_raw`], but decodes each frame to its
    /// typed form and collects them.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<Vec<Frame>, WireError> {
        let mut out = Vec::new();
        self.feed_raw(chunk, &mut |kind, payload| {
            out.push(Frame::decode(kind, payload)?);
            Ok(())
        })?;
        Ok(out)
    }

    /// Declare end of stream: typed [`WireError::Truncated`] unless the
    /// stream ended exactly at a frame boundary.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.partial.is_empty() {
            Ok(())
        } else {
            Err(WireError::Truncated)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{ErrorCode, WireJump};

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { magic: crate::MAGIC, version: 1, token: "t0".into() },
            Frame::Credit { grant: 8192 },
            Frame::Chunk(vec![7u8; 301]),
            Frame::Jumps(vec![WireJump { proc: 1, idx: 2, size_ps: -5 }]),
            Frame::ChunkEnd,
            Frame::Error { code: ErrorCode::Cancelled, detail: "bye".into() },
        ]
    }

    fn stream(frames: &[Frame]) -> Vec<u8> {
        frames.iter().flat_map(|f| f.encode()).collect()
    }

    #[test]
    fn every_chunking_yields_the_same_frames() {
        let frames = sample_frames();
        let bytes = stream(&frames);
        for step in 1..=bytes.len() {
            let mut scanner = FrameScanner::new();
            let mut got = Vec::new();
            for chunk in bytes.chunks(step) {
                got.extend(scanner.feed(chunk).expect("clean stream"));
            }
            assert_eq!(got, frames, "chunk size {step}");
            scanner.finish().expect("ended at boundary");
            assert_eq!(scanner.frames(), frames.len() as u64);
            assert_eq!(scanner.consumed(), bytes.len() as u64);
        }
    }

    #[test]
    fn truncation_at_every_offset_is_typed() {
        let bytes = stream(&sample_frames());
        for cut in 0..bytes.len() {
            let mut scanner = FrameScanner::new();
            let fed = scanner.feed(&bytes[..cut]).expect("prefix scans clean");
            match scanner.finish() {
                Ok(()) => assert!(scanner.at_boundary(), "cut {cut}"),
                Err(WireError::Truncated) => assert!(!scanner.at_boundary(), "cut {cut}"),
                Err(e) => panic!("cut {cut}: unexpected {e:?}"),
            }
            assert!(fed.len() <= sample_frames().len());
        }
    }

    #[test]
    fn oversized_declared_length_rejected_before_buffering() {
        // One byte shy of a whole header, then the rest: the bound check
        // fires the moment the length field completes.
        let bad = (1 + MAX_FRAME_PAYLOAD as u32 + 1).to_le_bytes();
        let mut scanner = FrameScanner::new();
        scanner.feed(&bad[..3]).expect("incomplete header is fine");
        let err = scanner.feed(&bad[3..]).unwrap_err();
        assert!(matches!(err, WireError::Oversized { .. }));

        // Whole header in one chunk.
        let mut scanner = FrameScanner::new();
        assert!(matches!(
            scanner.feed(&bad).unwrap_err(),
            WireError::Oversized { .. }
        ));

        // Zero-length frames cannot even hold a kind byte.
        let mut scanner = FrameScanner::new();
        let mut zero = 0u32.to_le_bytes().to_vec();
        zero.push(9);
        assert!(matches!(
            scanner.feed(&zero).unwrap_err(),
            WireError::Oversized { declared: 0 }
        ));
    }

    #[test]
    fn wanted_is_a_truthful_read_hint() {
        let frame = Frame::Chunk(vec![1u8; 64]).encode();
        let mut scanner = FrameScanner::new();
        assert_eq!(scanner.wanted(), 5);
        scanner.feed(&frame[..2]).unwrap();
        assert_eq!(scanner.wanted(), 3); // header completion first
        scanner.feed(&frame[2..10]).unwrap();
        assert_eq!(scanner.wanted(), frame.len() - 10);
        let got = scanner.feed(&frame[10..]).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(scanner.wanted(), 5);
    }
}
