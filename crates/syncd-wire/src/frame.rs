//! Typed frames and their byte encodings.
//!
//! Every multi-byte integer is little-endian. Payload encodings are
//! position-based (no self-describing tags beyond the frame kind), so a
//! malformed payload fails with a typed [`WireError::BadPayload`] naming
//! the field that could not be read — never a panic.

use clocksync::{
    ClcParams, OffsetMeasurement, OnlineSpec, ParallelConfig, PipelineConfig, PreSync,
    SyncMethod, TimestampStorage,
};
use onlinesync::KalmanParams;
use simclock::{Dur, Time};
use std::sync::Arc;
use tracefmt::{LatencyTable, MinLatency, Rank, UniformLatency};

/// Sizing hint for a Hello frame (used by handshake readers that cap the
/// first read).
pub const HELLO_SIZE_HINT: usize = 4 + 1 + 4 + 2 + 2 + 256;

/// Everything that can go wrong while encoding, scanning, or decoding
/// frames. All variants are *typed* protocol outcomes — the scanner and
/// decoders never panic on hostile bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The Hello frame's magic was not [`crate::MAGIC`].
    BadMagic(u32),
    /// The peer speaks a protocol version this side does not.
    UnsupportedVersion(u16),
    /// A frame header declared an unknown kind byte.
    UnknownKind(u8),
    /// A frame header declared a payload larger than
    /// [`crate::MAX_FRAME_PAYLOAD`] (or zero, which cannot even hold the
    /// kind byte).
    Oversized {
        /// The declared length (kind byte included).
        declared: u64,
    },
    /// A frame payload did not decode; names the field that failed.
    BadPayload(&'static str),
    /// The byte stream ended mid-frame.
    Truncated,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad protocol magic {m:#010x}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Oversized { declared } => {
                write!(f, "frame declares {declared} bytes, above the protocol bound")
            }
            WireError::BadPayload(field) => write!(f, "malformed frame payload: {field}"),
            WireError::Truncated => write!(f, "byte stream truncated mid-frame"),
        }
    }
}

impl std::error::Error for WireError {}

/// Frame kind bytes (the discriminants on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server connection opener: magic, version, auth token.
    Hello = 1,
    /// Server → client handshake accept: version, initial credit.
    HelloAck = 2,
    /// Client → server job header: full pipeline + scheduling config.
    JobConfig = 3,
    /// Raw stream bytes. Client → server: DTC2/DTC3 input (credit-bound).
    /// Server → client: the corrected batch-mode output stream.
    Chunk = 4,
    /// Client → server: end of the input stream; run the job.
    ChunkEnd = 5,
    /// Server → client: one corrected output chunk of an *incremental*
    /// job, streamed while the job runs. Indexed so a transparent retry
    /// never re-delivers a chunk the client already has.
    CorrectedFrame = 6,
    /// Server → client: CLC jump batch (may repeat for large jump sets).
    Jumps = 7,
    /// Server → client: terminal job summary (success).
    JobResult = 8,
    /// Either direction: typed terminal error.
    Error = 9,
    /// Server → client: flow-control credit grant (bytes).
    Credit = 10,
    /// Client → server: cancel the in-flight job.
    Cancel = 11,
}

impl FrameKind {
    fn from_u8(k: u8) -> Result<FrameKind, WireError> {
        Ok(match k {
            1 => FrameKind::Hello,
            2 => FrameKind::HelloAck,
            3 => FrameKind::JobConfig,
            4 => FrameKind::Chunk,
            5 => FrameKind::ChunkEnd,
            6 => FrameKind::CorrectedFrame,
            7 => FrameKind::Jumps,
            8 => FrameKind::JobResult,
            9 => FrameKind::Error,
            10 => FrameKind::Credit,
            11 => FrameKind::Cancel,
            other => return Err(WireError::UnknownKind(other)),
        })
    }
}

/// Typed terminal error codes carried by [`Frame::Error`]. The mapping to
/// and from the service's own error enums lives with the server/client;
/// the wire only fixes the vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The auth token was not recognized.
    AuthFailed = 1,
    /// Handshake version mismatch.
    VersionMismatch = 2,
    /// A frame arrived that the connection state does not allow (or the
    /// client overdrew its credit).
    Protocol = 3,
    /// The job's stream bytes are malformed (typed codec failure).
    Malformed = 4,
    /// The service submission queue is full.
    QueueFull = 5,
    /// Admission would exceed the service memory budget.
    OverBudget = 6,
    /// The service (or node) is shutting down.
    Shutdown = 7,
    /// The pipeline failed typed on the final attempt.
    Pipeline = 8,
    /// The final attempt panicked (isolated; the message survives).
    Panicked = 9,
    /// The job was cancelled (client request, disconnect, or slow-reader
    /// backpressure cutoff).
    Cancelled = 10,
    /// The job's deadline passed.
    DeadlineExceeded = 11,
    /// A per-tenant quota was exceeded.
    QuotaExceeded = 12,
    /// An internal server invariant failed (never expected; typed so the
    /// client still gets a frame instead of a dead socket).
    Internal = 13,
}

impl ErrorCode {
    fn from_u8(c: u8) -> Result<ErrorCode, WireError> {
        Ok(match c {
            1 => ErrorCode::AuthFailed,
            2 => ErrorCode::VersionMismatch,
            3 => ErrorCode::Protocol,
            4 => ErrorCode::Malformed,
            5 => ErrorCode::QueueFull,
            6 => ErrorCode::OverBudget,
            7 => ErrorCode::Shutdown,
            8 => ErrorCode::Pipeline,
            9 => ErrorCode::Panicked,
            10 => ErrorCode::Cancelled,
            11 => ErrorCode::DeadlineExceeded,
            12 => ErrorCode::QuotaExceeded,
            13 => ErrorCode::Internal,
            _ => return Err(WireError::BadPayload("error code")),
        })
    }
}

/// How the job runs server-side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMode {
    /// Decode the whole stream, run the batch pipeline, send the corrected
    /// trace back as one `Chunk` sequence after the job completes.
    Batch,
    /// Run the incremental windowed engine; corrected stream chunks come
    /// back as [`Frame::CorrectedFrame`]s **while the job runs**, with
    /// O(window) server-resident columns.
    Incremental {
        /// Window size in events (≥ 1).
        window_events: u64,
    },
}

/// One optional per-process offset measurement on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireMeasurement {
    /// Worker-local anchor time, picoseconds.
    pub worker_time_ps: i64,
    /// Master − worker offset, picoseconds.
    pub offset_ps: i64,
    /// Winning probe round-trip, picoseconds.
    pub rtt_ps: i64,
}

impl WireMeasurement {
    /// To the pipeline's measurement type.
    pub fn to_measurement(self) -> OffsetMeasurement {
        OffsetMeasurement {
            worker_time: Time::from_ps(self.worker_time_ps),
            offset: Dur::from_ps(self.offset_ps),
            rtt: Dur::from_ps(self.rtt_ps),
        }
    }

    /// From the pipeline's measurement type.
    pub fn from_measurement(m: &OffsetMeasurement) -> Self {
        WireMeasurement {
            worker_time_ps: m.worker_time.as_ps(),
            offset_ps: m.offset.as_ps(),
            rtt_ps: m.rtt.as_ps(),
        }
    }
}

/// The minimum-latency model, serialized.
#[derive(Debug, Clone, PartialEq)]
pub enum WireLatency {
    /// The same minimum latency between every pair of ranks (ps).
    Uniform(i64),
    /// A dense per-pair table: `entries[a * n + b]` = l_min(a → b) in ps.
    Table {
        /// Ranks covered.
        n: u32,
        /// Row-major `n × n` picosecond entries.
        entries: Vec<i64>,
    },
}

impl WireLatency {
    /// Materialize the model the pipeline consumes.
    pub fn to_model(&self) -> Arc<dyn MinLatency + Send + Sync> {
        match self {
            WireLatency::Uniform(ps) => Arc::new(UniformLatency(Dur::from_ps(*ps))),
            WireLatency::Table { n, entries } => {
                let n = *n as usize;
                let entries = entries.clone();
                let table = LatencyTable::freeze(
                    &move |a: Rank, b: Rank| {
                        let (a, b) = (a.idx(), b.idx());
                        if a < n && b < n {
                            Dur::from_ps(entries[a * n + b])
                        } else {
                            Dur::ZERO
                        }
                    },
                    &(0..n as u32).map(Rank).collect::<Vec<_>>(),
                );
                Arc::new(table)
            }
        }
    }
}

/// CLC stage parameters on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireClc {
    /// Amortization factor μ.
    pub mu: f64,
    /// Apply backward amortization.
    pub backward: bool,
    /// Backward window factor.
    pub backward_window_factor: f64,
}

/// Parallel pipeline execution on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireParallel {
    /// Requested worker count (the service clamps it to its fair share).
    pub workers: u32,
    /// Shard size in events.
    pub shard_size: u32,
}

/// Online drift-filter tuning on the wire (read when the method byte
/// selects the online method; carried — at 24 bytes — either way).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireKalman {
    /// Drift random-walk intensity, ppm²/s.
    pub drift_noise_ppm2_per_s: f64,
    /// Offset white-noise floor, µs²/s.
    pub offset_noise_us2_per_s: f64,
    /// Probe measurement-noise floor, µs.
    pub probe_noise_floor_us: f64,
}

impl Default for WireKalman {
    fn default() -> Self {
        let p = KalmanParams::default();
        WireKalman {
            drift_noise_ppm2_per_s: p.drift_noise_ppm2_per_s,
            offset_noise_us2_per_s: p.offset_noise_us2_per_s,
            probe_noise_floor_us: p.probe_noise_floor_us,
        }
    }
}

impl WireKalman {
    /// The filter-facing parameter struct.
    pub fn to_params(self) -> KalmanParams {
        KalmanParams {
            drift_noise_ppm2_per_s: self.drift_noise_ppm2_per_s,
            offset_noise_us2_per_s: self.offset_noise_us2_per_s,
            probe_noise_floor_us: self.probe_noise_floor_us,
        }
    }

    /// From the filter-facing parameter struct.
    pub fn from_params(p: KalmanParams) -> Self {
        WireKalman {
            drift_noise_ppm2_per_s: p.drift_noise_ppm2_per_s,
            offset_noise_us2_per_s: p.offset_noise_us2_per_s,
            probe_noise_floor_us: p.probe_noise_floor_us,
        }
    }
}

/// The complete job header: everything the server needs to build a
/// `JobSpec` except the stream bytes themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct WireJobConfig {
    /// Batch or incremental execution.
    pub mode: WireMode,
    /// Scheduling class: 0 high, 1 normal, 2 low.
    pub priority: u8,
    /// Deadline from submission in microseconds (`u64::MAX` = none).
    pub deadline_us: u64,
    /// Retry budget override (`u32::MAX` = service default).
    pub max_retries: u32,
    /// Pre-synchronisation stage: 0 none, 1 align-only, 2 linear.
    pub presync: u8,
    /// Timestamp storage: 0 AoS, 1 columnar.
    pub storage: u8,
    /// CLC stage (None = skip).
    pub clc: Option<WireClc>,
    /// Parallel execution (None = sequential).
    pub parallel: Option<WireParallel>,
    /// Minimum-latency model.
    pub lmin: WireLatency,
    /// Init offset measurements, one slot per process.
    pub init: Vec<Option<WireMeasurement>>,
    /// Finalize measurements (None = align-only data).
    pub fin: Option<Vec<Option<WireMeasurement>>>,
    /// Synchronization method: 0 interp-only, 1 presync + CLC, 2 online.
    pub method: u8,
    /// Online filter tuning (meaningful when `method == 2`).
    pub kalman: WireKalman,
    /// Per-process probe schedules for the online method (index =
    /// process; empty unless `method == 2`).
    pub probes: Vec<Vec<WireMeasurement>>,
}

impl WireJobConfig {
    /// A config with service-default scheduling from pipeline pieces.
    pub fn new(cfg: &PipelineConfig, lmin: WireLatency) -> Self {
        WireJobConfig {
            mode: WireMode::Batch,
            priority: 1,
            deadline_us: u64::MAX,
            max_retries: u32::MAX,
            presync: match cfg.presync {
                PreSync::None => 0,
                PreSync::AlignOnly => 1,
                PreSync::Linear => 2,
            },
            storage: match cfg.storage {
                TimestampStorage::Aos => 0,
                TimestampStorage::Columnar => 1,
            },
            clc: cfg.clc.as_ref().map(|c| WireClc {
                mu: c.mu,
                backward: c.backward,
                backward_window_factor: c.backward_window_factor,
            }),
            parallel: cfg.parallel.as_ref().map(|p| WireParallel {
                workers: p.workers as u32,
                shard_size: p.shard_size as u32,
            }),
            lmin,
            init: Vec::new(),
            fin: None,
            method: match &cfg.method {
                SyncMethod::Interp => 0,
                SyncMethod::Clc => 1,
                SyncMethod::Online(_) => 2,
            },
            kalman: match &cfg.method {
                SyncMethod::Online(spec) => WireKalman::from_params(spec.kalman),
                _ => WireKalman::default(),
            },
            probes: match &cfg.method {
                SyncMethod::Online(spec) => spec
                    .probes
                    .iter()
                    .map(|ps| ps.iter().map(WireMeasurement::from_measurement).collect())
                    .collect(),
                _ => Vec::new(),
            },
        }
    }

    /// Attach measurements (consuming builder style).
    pub fn with_measurements(
        mut self,
        init: &[Option<OffsetMeasurement>],
        fin: Option<&[Option<OffsetMeasurement>]>,
    ) -> Self {
        fn conv(ms: &[Option<OffsetMeasurement>]) -> Vec<Option<WireMeasurement>> {
            ms.iter()
                .map(|m| m.as_ref().map(WireMeasurement::from_measurement))
                .collect()
        }
        self.init = conv(init);
        self.fin = fin.map(conv);
        self
    }

    /// Rebuild the pipeline configuration this header describes.
    pub fn pipeline_config(&self) -> Result<PipelineConfig, WireError> {
        Ok(PipelineConfig {
            presync: match self.presync {
                0 => PreSync::None,
                1 => PreSync::AlignOnly,
                2 => PreSync::Linear,
                _ => return Err(WireError::BadPayload("presync")),
            },
            storage: match self.storage {
                0 => TimestampStorage::Aos,
                1 => TimestampStorage::Columnar,
                _ => return Err(WireError::BadPayload("storage")),
            },
            clc: self.clc.map(|c| ClcParams {
                mu: c.mu,
                backward: c.backward,
                backward_window_factor: c.backward_window_factor,
            }),
            parallel: self.parallel.map(|p| ParallelConfig {
                workers: p.workers as usize,
                shard_size: (p.shard_size as usize).max(1),
            }),
            method: match self.method {
                0 => SyncMethod::Interp,
                1 => SyncMethod::Clc,
                2 => SyncMethod::Online(OnlineSpec {
                    probes: Arc::new(
                        self.probes
                            .iter()
                            .map(|ps| {
                                ps.iter()
                                    .map(|m| m.to_measurement())
                                    .collect::<Vec<_>>()
                            })
                            .collect(),
                    ),
                    kalman: self.kalman.to_params(),
                }),
                _ => return Err(WireError::BadPayload("method")),
            },
        })
    }

    /// Measurement vectors in the pipeline's types.
    pub fn measurements(
        &self,
    ) -> (
        Vec<Option<OffsetMeasurement>>,
        Option<Vec<Option<OffsetMeasurement>>>,
    ) {
        let conv = |ms: &[Option<WireMeasurement>]| {
            ms.iter()
                .map(|m| m.map(WireMeasurement::to_measurement))
                .collect()
        };
        (conv(&self.init), self.fin.as_deref().map(conv))
    }
}

/// One CLC correction on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireJump {
    /// Timeline index within the trace.
    pub proc: u32,
    /// Event index within the timeline.
    pub idx: u32,
    /// Jump size in picoseconds.
    pub size_ps: i64,
}

/// Terminal success summary of one wire job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireJobResult {
    /// Attempts the service needed (1 = no retry).
    pub attempts: u32,
    /// Queue wait in microseconds.
    pub queue_wait_us: u64,
    /// Run time of the successful attempt in microseconds.
    pub run_time_us: u64,
    /// Total CLC jumps (the `Jumps` frames carry the set itself).
    pub n_jumps: u64,
    /// Largest single correction, picoseconds.
    pub max_jump_ps: i64,
    /// Events whose timestamp changed.
    pub events_moved: u64,
    /// Events inspected.
    pub events_total: u64,
    /// Output frames (incremental mode; 0 for batch).
    pub frames: u64,
    /// Whether violation censuses ran (batch mode only).
    pub census_present: bool,
    /// Violated constraints in the raw trace.
    pub raw_violations: u64,
    /// Violated constraints after pre-synchronisation.
    pub after_presync_violations: u64,
    /// Violated constraints after the CLC (`u64::MAX` = stage skipped).
    pub after_clc_violations: u64,
}

/// A typed protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Connection opener.
    Hello {
        /// Protocol magic ([`crate::MAGIC`]).
        magic: u32,
        /// Protocol version the client speaks.
        version: u16,
        /// Tenant auth token.
        token: String,
    },
    /// Handshake accept.
    HelloAck {
        /// Version the server selected.
        version: u16,
        /// Initial chunk-byte credit.
        credit: u64,
    },
    /// Job header.
    JobConfig(Box<WireJobConfig>),
    /// Raw stream bytes (input or batch output).
    Chunk(Vec<u8>),
    /// End of the input stream.
    ChunkEnd,
    /// Streamed corrected chunk of an incremental job.
    CorrectedFrame {
        /// Monotone chunk index from 0 (magic chunk) to `frames + 1`
        /// (trailer chunk); lets a transparent server-side retry skip
        /// chunks the client already received.
        index: u64,
        /// The chunk bytes.
        bytes: Vec<u8>,
    },
    /// CLC jump batch.
    Jumps(Vec<WireJump>),
    /// Terminal success summary.
    JobResult(WireJobResult),
    /// Typed terminal error.
    Error {
        /// The error class.
        code: ErrorCode,
        /// Human-oriented detail (bounded).
        detail: String,
    },
    /// Flow-control credit grant.
    Credit {
        /// Additional chunk-payload bytes the client may send.
        grant: u64,
    },
    /// Cancel the in-flight job.
    Cancel,
}

/// Little-endian write helpers.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new(kind: FrameKind) -> Enc {
        // Length placeholder; patched in `finish`.
        Enc { buf: vec![0, 0, 0, 0, kind as u8] }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
    fn finish(mut self) -> Vec<u8> {
        let len = (self.buf.len() - 4) as u32;
        self.buf[..4].copy_from_slice(&len.to_le_bytes());
        self.buf
    }
}

/// Little-endian read cursor with typed underflow errors.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::BadPayload(field));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self, f: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, f)?[0])
    }
    fn u16(&mut self, f: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2, f)?.try_into().unwrap()))
    }
    fn u32(&mut self, f: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, f)?.try_into().unwrap()))
    }
    fn u64(&mut self, f: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, f)?.try_into().unwrap()))
    }
    fn i64(&mut self, f: &'static str) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8, f)?.try_into().unwrap()))
    }
    fn f64(&mut self, f: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8, f)?.try_into().unwrap()))
    }
    fn finish(self, f: &'static str) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::BadPayload(f))
        }
    }
}

fn enc_measurements(e: &mut Enc, ms: &[Option<WireMeasurement>]) {
    e.u32(ms.len() as u32);
    for m in ms {
        match m {
            None => e.u8(0),
            Some(m) => {
                e.u8(1);
                e.i64(m.worker_time_ps);
                e.i64(m.offset_ps);
                e.i64(m.rtt_ps);
            }
        }
    }
}

fn dec_measurements(d: &mut Dec) -> Result<Vec<Option<WireMeasurement>>, WireError> {
    let n = d.u32("measurement count")? as usize;
    // A count that cannot fit in the remaining payload is hostile.
    if n > d.buf.len() {
        return Err(WireError::BadPayload("measurement count"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(match d.u8("measurement flag")? {
            0 => None,
            1 => Some(WireMeasurement {
                worker_time_ps: d.i64("measurement worker_time")?,
                offset_ps: d.i64("measurement offset")?,
                rtt_ps: d.i64("measurement rtt")?,
            }),
            _ => return Err(WireError::BadPayload("measurement flag")),
        });
    }
    Ok(out)
}

impl Frame {
    /// This frame's kind byte.
    pub fn kind(&self) -> FrameKind {
        match self {
            Frame::Hello { .. } => FrameKind::Hello,
            Frame::HelloAck { .. } => FrameKind::HelloAck,
            Frame::JobConfig(_) => FrameKind::JobConfig,
            Frame::Chunk(_) => FrameKind::Chunk,
            Frame::ChunkEnd => FrameKind::ChunkEnd,
            Frame::CorrectedFrame { .. } => FrameKind::CorrectedFrame,
            Frame::Jumps(_) => FrameKind::Jumps,
            Frame::JobResult(_) => FrameKind::JobResult,
            Frame::Error { .. } => FrameKind::Error,
            Frame::Credit { .. } => FrameKind::Credit,
            Frame::Cancel => FrameKind::Cancel,
        }
    }

    /// Encode to wire bytes (length prefix included).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new(self.kind());
        match self {
            Frame::Hello { magic, version, token } => {
                e.u32(*magic);
                e.u16(*version);
                let token = &token.as_bytes()[..token.len().min(u16::MAX as usize)];
                e.u16(token.len() as u16);
                e.bytes(token);
            }
            Frame::HelloAck { version, credit } => {
                e.u16(*version);
                e.u64(*credit);
            }
            Frame::JobConfig(cfg) => {
                match cfg.mode {
                    WireMode::Batch => {
                        e.u8(0);
                        e.u64(0);
                    }
                    WireMode::Incremental { window_events } => {
                        e.u8(1);
                        e.u64(window_events);
                    }
                }
                e.u8(cfg.priority);
                e.u64(cfg.deadline_us);
                e.u32(cfg.max_retries);
                e.u8(cfg.presync);
                e.u8(cfg.storage);
                match &cfg.clc {
                    None => e.u8(0),
                    Some(c) => {
                        e.u8(1);
                        e.f64(c.mu);
                        e.u8(c.backward as u8);
                        e.f64(c.backward_window_factor);
                    }
                }
                match &cfg.parallel {
                    None => e.u8(0),
                    Some(p) => {
                        e.u8(1);
                        e.u32(p.workers);
                        e.u32(p.shard_size);
                    }
                }
                match &cfg.lmin {
                    WireLatency::Uniform(ps) => {
                        e.u8(0);
                        e.i64(*ps);
                    }
                    WireLatency::Table { n, entries } => {
                        e.u8(1);
                        e.u32(*n);
                        for v in entries {
                            e.i64(*v);
                        }
                    }
                }
                enc_measurements(&mut e, &cfg.init);
                match &cfg.fin {
                    None => e.u8(0),
                    Some(fin) => {
                        e.u8(1);
                        enc_measurements(&mut e, fin);
                    }
                }
                e.u8(cfg.method);
                e.f64(cfg.kalman.drift_noise_ppm2_per_s);
                e.f64(cfg.kalman.offset_noise_us2_per_s);
                e.f64(cfg.kalman.probe_noise_floor_us);
                e.u32(cfg.probes.len() as u32);
                for ps in &cfg.probes {
                    e.u32(ps.len() as u32);
                    for m in ps {
                        e.i64(m.worker_time_ps);
                        e.i64(m.offset_ps);
                        e.i64(m.rtt_ps);
                    }
                }
            }
            Frame::Chunk(bytes) => e.bytes(bytes),
            Frame::ChunkEnd | Frame::Cancel => {}
            Frame::CorrectedFrame { index, bytes } => {
                e.u64(*index);
                e.bytes(bytes);
            }
            Frame::Jumps(jumps) => {
                e.u32(jumps.len() as u32);
                for j in jumps {
                    e.u32(j.proc);
                    e.u32(j.idx);
                    e.i64(j.size_ps);
                }
            }
            Frame::JobResult(r) => {
                e.u32(r.attempts);
                e.u64(r.queue_wait_us);
                e.u64(r.run_time_us);
                e.u64(r.n_jumps);
                e.i64(r.max_jump_ps);
                e.u64(r.events_moved);
                e.u64(r.events_total);
                e.u64(r.frames);
                e.u8(r.census_present as u8);
                e.u64(r.raw_violations);
                e.u64(r.after_presync_violations);
                e.u64(r.after_clc_violations);
            }
            Frame::Error { code, detail } => {
                e.u8(*code as u8);
                let detail = &detail.as_bytes()[..detail.len().min(1024)];
                e.u16(detail.len() as u16);
                e.bytes(detail);
            }
            Frame::Credit { grant } => e.u64(*grant),
        }
        e.finish()
    }

    /// Decode a frame from its kind byte and payload (as the scanner
    /// produced them).
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Frame, WireError> {
        let kind = FrameKind::from_u8(kind)?;
        let mut d = Dec::new(payload);
        let frame = match kind {
            FrameKind::Hello => {
                let magic = d.u32("hello magic")?;
                let version = d.u16("hello version")?;
                let tlen = d.u16("hello token length")? as usize;
                let token = d.take(tlen, "hello token")?;
                let token = std::str::from_utf8(token)
                    .map_err(|_| WireError::BadPayload("hello token utf8"))?
                    .to_string();
                Frame::Hello { magic, version, token }
            }
            FrameKind::HelloAck => Frame::HelloAck {
                version: d.u16("ack version")?,
                credit: d.u64("ack credit")?,
            },
            FrameKind::JobConfig => {
                let mode = match d.u8("mode")? {
                    0 => {
                        d.u64("window")?;
                        WireMode::Batch
                    }
                    1 => WireMode::Incremental { window_events: d.u64("window")? },
                    _ => return Err(WireError::BadPayload("mode")),
                };
                let priority = d.u8("priority")?;
                if priority > 2 {
                    return Err(WireError::BadPayload("priority"));
                }
                let deadline_us = d.u64("deadline")?;
                let max_retries = d.u32("max_retries")?;
                let presync = d.u8("presync")?;
                let storage = d.u8("storage")?;
                let clc = match d.u8("clc flag")? {
                    0 => None,
                    1 => Some(WireClc {
                        mu: d.f64("clc mu")?,
                        backward: d.u8("clc backward")? != 0,
                        backward_window_factor: d.f64("clc window factor")?,
                    }),
                    _ => return Err(WireError::BadPayload("clc flag")),
                };
                let parallel = match d.u8("parallel flag")? {
                    0 => None,
                    1 => Some(WireParallel {
                        workers: d.u32("parallel workers")?,
                        shard_size: d.u32("parallel shard")?,
                    }),
                    _ => return Err(WireError::BadPayload("parallel flag")),
                };
                let lmin = match d.u8("lmin tag")? {
                    0 => WireLatency::Uniform(d.i64("lmin uniform")?),
                    1 => {
                        let n = d.u32("lmin table n")?;
                        let total = (n as u64).saturating_mul(n as u64);
                        if total.saturating_mul(8) > payload.len() as u64 {
                            return Err(WireError::BadPayload("lmin table n"));
                        }
                        let mut entries = Vec::with_capacity(total as usize);
                        for _ in 0..total {
                            entries.push(d.i64("lmin table entry")?);
                        }
                        WireLatency::Table { n, entries }
                    }
                    _ => return Err(WireError::BadPayload("lmin tag")),
                };
                let init = dec_measurements(&mut d)?;
                let fin = match d.u8("fin flag")? {
                    0 => None,
                    1 => Some(dec_measurements(&mut d)?),
                    _ => return Err(WireError::BadPayload("fin flag")),
                };
                let method = d.u8("method")?;
                if method > 2 {
                    return Err(WireError::BadPayload("method"));
                }
                let kalman = WireKalman {
                    drift_noise_ppm2_per_s: d.f64("kalman drift noise")?,
                    offset_noise_us2_per_s: d.f64("kalman offset noise")?,
                    probe_noise_floor_us: d.f64("kalman probe floor")?,
                };
                let n_lists = d.u32("probe proc count")? as usize;
                if n_lists > payload.len() {
                    return Err(WireError::BadPayload("probe proc count"));
                }
                let mut probes = Vec::with_capacity(n_lists);
                for _ in 0..n_lists {
                    let k = d.u32("probe count")? as usize;
                    if k.saturating_mul(24) > payload.len() {
                        return Err(WireError::BadPayload("probe count"));
                    }
                    let mut list = Vec::with_capacity(k);
                    for _ in 0..k {
                        list.push(WireMeasurement {
                            worker_time_ps: d.i64("probe worker_time")?,
                            offset_ps: d.i64("probe offset")?,
                            rtt_ps: d.i64("probe rtt")?,
                        });
                    }
                    probes.push(list);
                }
                d.finish("job config trailing bytes")?;
                Frame::JobConfig(Box::new(WireJobConfig {
                    mode,
                    priority,
                    deadline_us,
                    max_retries,
                    presync,
                    storage,
                    clc,
                    parallel,
                    lmin,
                    init,
                    fin,
                    method,
                    kalman,
                    probes,
                }))
            }
            FrameKind::Chunk => Frame::Chunk(payload.to_vec()),
            FrameKind::ChunkEnd => {
                d.finish("chunk-end trailing bytes")?;
                Frame::ChunkEnd
            }
            FrameKind::CorrectedFrame => {
                let index = d.u64("corrected index")?;
                Frame::CorrectedFrame { index, bytes: payload[8..].to_vec() }
            }
            FrameKind::Jumps => {
                let n = d.u32("jump count")? as usize;
                if n.saturating_mul(16) > payload.len() {
                    return Err(WireError::BadPayload("jump count"));
                }
                let mut jumps = Vec::with_capacity(n);
                for _ in 0..n {
                    jumps.push(WireJump {
                        proc: d.u32("jump proc")?,
                        idx: d.u32("jump idx")?,
                        size_ps: d.i64("jump size")?,
                    });
                }
                d.finish("jumps trailing bytes")?;
                Frame::Jumps(jumps)
            }
            FrameKind::JobResult => {
                let r = WireJobResult {
                    attempts: d.u32("result attempts")?,
                    queue_wait_us: d.u64("result queue wait")?,
                    run_time_us: d.u64("result run time")?,
                    n_jumps: d.u64("result jumps")?,
                    max_jump_ps: d.i64("result max jump")?,
                    events_moved: d.u64("result events moved")?,
                    events_total: d.u64("result events total")?,
                    frames: d.u64("result frames")?,
                    census_present: d.u8("result census flag")? != 0,
                    raw_violations: d.u64("result raw violations")?,
                    after_presync_violations: d.u64("result presync violations")?,
                    after_clc_violations: d.u64("result clc violations")?,
                };
                d.finish("result trailing bytes")?;
                Frame::JobResult(r)
            }
            FrameKind::Error => {
                let code = ErrorCode::from_u8(d.u8("error code")?)?;
                let dlen = d.u16("error detail length")? as usize;
                let detail = d.take(dlen, "error detail")?;
                let detail = String::from_utf8_lossy(detail).into_owned();
                Frame::Error { code, detail }
            }
            FrameKind::Credit => {
                let grant = d.u64("credit grant")?;
                d.finish("credit trailing bytes")?;
                Frame::Credit { grant }
            }
            FrameKind::Cancel => {
                d.finish("cancel trailing bytes")?;
                Frame::Cancel
            }
        };
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let bytes = f.encode();
        let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        assert_eq!(bytes.len(), 4 + len);
        let back = Frame::decode(bytes[4], &bytes[5..]).expect("decode");
        assert_eq!(f, back);
    }

    fn config() -> WireJobConfig {
        WireJobConfig {
            mode: WireMode::Incremental { window_events: 64 },
            priority: 0,
            deadline_us: 12_000,
            max_retries: 3,
            presync: 2,
            storage: 1,
            clc: Some(WireClc { mu: 0.99, backward: true, backward_window_factor: 50.0 }),
            parallel: Some(WireParallel { workers: 4, shard_size: 512 }),
            lmin: WireLatency::Table { n: 2, entries: vec![0, 4_000_000, 4_000_000, 0] },
            init: vec![None, Some(WireMeasurement { worker_time_ps: 1, offset_ps: -2, rtt_ps: 3 })],
            fin: Some(vec![None, None]),
            method: 1,
            kalman: WireKalman::default(),
            probes: Vec::new(),
        }
    }

    fn online_config() -> WireJobConfig {
        WireJobConfig {
            method: 2,
            kalman: WireKalman {
                drift_noise_ppm2_per_s: 2.5,
                offset_noise_us2_per_s: 0.5,
                probe_noise_floor_us: 3.0,
            },
            probes: vec![
                Vec::new(),
                vec![
                    WireMeasurement { worker_time_ps: 10, offset_ps: 20, rtt_ps: 30 },
                    WireMeasurement { worker_time_ps: 40, offset_ps: -50, rtt_ps: 60 },
                ],
            ],
            ..config()
        }
    }

    #[test]
    fn every_frame_kind_round_trips() {
        roundtrip(Frame::Hello { magic: crate::MAGIC, version: 1, token: "tenant-a".into() });
        roundtrip(Frame::HelloAck { version: 1, credit: 1 << 20 });
        roundtrip(Frame::JobConfig(Box::new(config())));
        roundtrip(Frame::JobConfig(Box::new(online_config())));
        roundtrip(Frame::Chunk(vec![1, 2, 3, 255]));
        roundtrip(Frame::Chunk(Vec::new()));
        roundtrip(Frame::ChunkEnd);
        roundtrip(Frame::CorrectedFrame { index: 7, bytes: vec![9; 33] });
        roundtrip(Frame::Jumps(vec![
            WireJump { proc: 0, idx: 4, size_ps: 123 },
            WireJump { proc: 3, idx: 0, size_ps: -1 },
        ]));
        roundtrip(Frame::JobResult(WireJobResult {
            attempts: 2,
            queue_wait_us: 5,
            run_time_us: 1000,
            n_jumps: 3,
            max_jump_ps: 777,
            events_moved: 12,
            events_total: 100,
            frames: 0,
            census_present: true,
            raw_violations: 9,
            after_presync_violations: 2,
            after_clc_violations: 0,
        }));
        roundtrip(Frame::Error { code: ErrorCode::OverBudget, detail: "no room".into() });
        roundtrip(Frame::Credit { grant: 4096 });
        roundtrip(Frame::Cancel);
    }

    #[test]
    fn job_config_restores_pipeline_pieces() {
        let cfg = config();
        let pipeline = cfg.pipeline_config().expect("valid");
        assert_eq!(pipeline.presync, PreSync::Linear);
        assert_eq!(pipeline.storage, TimestampStorage::Columnar);
        let clc = pipeline.clc.expect("clc present");
        assert_eq!(clc.mu, 0.99);
        assert!(clc.backward);
        let par = pipeline.parallel.expect("parallel present");
        assert_eq!(par.workers, 4);
        let (init, fin) = cfg.measurements();
        assert_eq!(init.len(), 2);
        assert!(init[0].is_none() && init[1].is_some());
        assert_eq!(fin.expect("fin").len(), 2);
        let model = cfg.lmin.to_model();
        assert_eq!(model.l_min(Rank(0), Rank(1)), Dur::from_us(4));
        assert_eq!(model.l_min(Rank(0), Rank(0)), Dur::ZERO);
    }

    #[test]
    fn online_job_config_restores_method_probes_and_tuning() {
        let cfg = online_config();
        let pipeline = cfg.pipeline_config().expect("valid");
        match &pipeline.method {
            SyncMethod::Online(spec) => {
                assert_eq!(spec.kalman.drift_noise_ppm2_per_s, 2.5);
                assert_eq!(spec.kalman.probe_noise_floor_us, 3.0);
                assert_eq!(spec.probes.len(), 2);
                assert!(spec.probes[0].is_empty());
                assert_eq!(spec.probes[1].len(), 2);
                assert_eq!(spec.probes[1][0].worker_time.as_ps(), 10);
            }
            other => panic!("expected online method, got {other:?}"),
        }
        // Round trip back through WireJobConfig::new preserves the method
        // byte, tuning, and every probe.
        let back = WireJobConfig::new(&pipeline, cfg.lmin.clone());
        assert_eq!(back.method, 2);
        assert_eq!(back.kalman, cfg.kalman);
        assert_eq!(back.probes, cfg.probes);
    }

    #[test]
    fn unknown_method_byte_is_rejected() {
        let cfg = WireJobConfig { method: 3, ..config() };
        assert!(matches!(
            cfg.pipeline_config(),
            Err(WireError::BadPayload("method"))
        ));
    }

    #[test]
    fn truncated_payloads_fail_typed_for_every_prefix() {
        let frames = [
            Frame::Hello { magic: crate::MAGIC, version: 1, token: "t".into() },
            Frame::JobConfig(Box::new(config())),
            Frame::Jumps(vec![WireJump { proc: 1, idx: 2, size_ps: 3 }]),
            Frame::JobResult(WireJobResult {
                attempts: 1,
                queue_wait_us: 0,
                run_time_us: 0,
                n_jumps: 0,
                max_jump_ps: 0,
                events_moved: 0,
                events_total: 0,
                frames: 0,
                census_present: false,
                raw_violations: 0,
                after_presync_violations: 0,
                after_clc_violations: u64::MAX,
            }),
            Frame::Error { code: ErrorCode::Pipeline, detail: "x".into() },
            Frame::Credit { grant: 1 },
        ];
        for f in frames {
            let bytes = f.encode();
            let payload = &bytes[5..];
            for cut in 0..payload.len() {
                match Frame::decode(bytes[4], &payload[..cut]) {
                    Err(WireError::BadPayload(_)) => {}
                    Ok(g) => {
                        // Only variable-tail frames (Chunk-like) may decode
                        // a prefix; typed frames must not.
                        panic!("prefix {cut} of {:?} decoded as {g:?}", f.kind())
                    }
                    Err(e) => panic!("unexpected error {e:?}"),
                }
            }
        }
    }

    #[test]
    fn hostile_counts_are_rejected_without_allocation() {
        // A Jumps frame claiming u32::MAX entries in a 10-byte payload.
        let mut payload = vec![0u8; 10];
        payload[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Frame::decode(FrameKind::Jumps as u8, &payload),
            Err(WireError::BadPayload("jump count"))
        );
        // A latency table claiming 2^31 ranks.
        let cfg = Frame::JobConfig(Box::new(config())).encode();
        let kind = cfg[4];
        let mut p = cfg[5..].to_vec();
        // lmin tag offset: mode(1+8) prio(1) deadline(8) retries(4)
        // presync(1) storage(1) clc(1+17) parallel(1+8) = 51.
        assert_eq!(p[51], 1, "lmin tag expected at offset 51");
        p[52..56].copy_from_slice(&0x8000_0000u32.to_le_bytes());
        assert_eq!(
            Frame::decode(kind, &p),
            Err(WireError::BadPayload("lmin table n"))
        );
    }

    #[test]
    fn unknown_kind_and_code_fail_typed() {
        assert_eq!(Frame::decode(200, &[]), Err(WireError::UnknownKind(200)));
        assert_eq!(
            Frame::decode(FrameKind::Error as u8, &[99, 0, 0]),
            Err(WireError::BadPayload("error code"))
        );
    }
}
