//! Deterministic fault injection for DTC2 byte streams.
//!
//! The service's robustness claims ("a poisoned job fails typed, retries,
//! and never takes the service down") need poisoned inputs on demand. A
//! [`FaultInjector`] corrupts an encoded stream at absolute byte offsets
//! — truncation, bit flips, dropped chunks — so tests and the demo can
//! produce the same broken stream every run.

/// One corruption applied to the concatenated byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Cut the stream at absolute byte offset `at` (everything from `at`
    /// on, including later chunks, is dropped).
    Truncate {
        /// Absolute byte offset of the cut.
        at: usize,
    },
    /// XOR the byte at absolute offset `at` with `xor` (no-op if the
    /// offset is past the end or `xor == 0`).
    FlipByte {
        /// Absolute byte offset of the flipped byte.
        at: usize,
        /// Mask XOR-ed into that byte.
        xor: u8,
    },
    /// Remove the chunk at `index` entirely (no-op if out of range).
    DropChunk {
        /// Chunk index in the original chunk list.
        index: usize,
    },
}

/// An ordered list of [`Fault`]s applied to a chunked stream.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    faults: Vec<Fault>,
}

impl FaultInjector {
    /// No faults yet.
    pub fn new() -> Self {
        FaultInjector::default()
    }

    /// Append one fault (applied in insertion order).
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Apply every fault to `chunks`, preserving the chunk structure of
    /// whatever survives. Byte offsets are over the concatenation of the
    /// *current* intermediate stream, so stacked faults compose the way
    /// they read.
    pub fn apply(&self, chunks: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let mut out: Vec<Vec<u8>> = chunks.to_vec();
        for fault in &self.faults {
            match *fault {
                Fault::DropChunk { index } => {
                    if index < out.len() {
                        out.remove(index);
                    }
                }
                Fault::FlipByte { at, xor } => {
                    let mut base = 0usize;
                    for chunk in out.iter_mut() {
                        if at < base + chunk.len() {
                            chunk[at - base] ^= xor;
                            break;
                        }
                        base += chunk.len();
                    }
                }
                Fault::Truncate { at } => {
                    let mut base = 0usize;
                    let mut keep = 0usize;
                    for chunk in out.iter_mut() {
                        if at <= base {
                            break;
                        }
                        let end = base + chunk.len();
                        if at < end {
                            chunk.truncate(at - base);
                        }
                        base = end;
                        keep += 1;
                    }
                    out.truncate(keep);
                    out.retain(|c| !c.is_empty());
                }
            }
        }
        out
    }
}

/// Split `bytes` into chunks of `chunk_size` (the last may be shorter) —
/// the shape a network reader would hand the streaming decoder.
pub fn chunked(bytes: &[u8], chunk_size: usize) -> Vec<Vec<u8>> {
    assert!(chunk_size > 0, "chunk_size must be positive");
    bytes.chunks(chunk_size).map(<[u8]>::to_vec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> Vec<Vec<u8>> {
        chunked(&(0u8..=19).collect::<Vec<_>>(), 7)
    }

    fn flat(chunks: &[Vec<u8>]) -> Vec<u8> {
        chunks.concat()
    }

    #[test]
    fn truncate_cuts_across_chunk_boundaries() {
        let out = FaultInjector::new()
            .with(Fault::Truncate { at: 10 })
            .apply(&stream());
        assert_eq!(flat(&out), (0u8..10).collect::<Vec<_>>());
        // Chunk structure of the surviving prefix is preserved.
        assert_eq!(out[0].len(), 7);
        assert_eq!(out[1].len(), 3);
    }

    #[test]
    fn flip_targets_the_absolute_offset() {
        let out = FaultInjector::new()
            .with(Fault::FlipByte { at: 8, xor: 0xFF })
            .apply(&stream());
        let bytes = flat(&out);
        assert_eq!(bytes[8], 8 ^ 0xFF);
        assert_eq!(bytes[7], 7);
        assert_eq!(bytes[9], 9);
    }

    #[test]
    fn drop_chunk_removes_exactly_one() {
        let out = FaultInjector::new()
            .with(Fault::DropChunk { index: 1 })
            .apply(&stream());
        let mut expect: Vec<u8> = (0u8..7).collect();
        expect.extend(14u8..=19);
        assert_eq!(flat(&out), expect);
    }

    #[test]
    fn out_of_range_faults_are_noops() {
        let s = stream();
        let out = FaultInjector::new()
            .with(Fault::FlipByte { at: 999, xor: 0xAA })
            .with(Fault::DropChunk { index: 99 })
            .with(Fault::Truncate { at: 999 })
            .apply(&s);
        assert_eq!(flat(&out), flat(&s));
    }

    #[test]
    fn faults_compose_in_order() {
        // Truncate first, then flip inside the survivor.
        let out = FaultInjector::new()
            .with(Fault::Truncate { at: 5 })
            .with(Fault::FlipByte { at: 2, xor: 0x01 })
            .apply(&stream());
        assert_eq!(flat(&out), vec![0, 1, 3, 3, 4]);
    }
}
