//! Admission control: memory-cost estimation and the bounded priority
//! queue.
//!
//! Cost estimation is deliberately cheap. For an in-memory trace the
//! event count is already known; for a DTC2 stream the estimator runs
//! [`estimate_columnar_stream`] — a header-only scan that reads 16 bytes
//! per block and skips every payload — so admission never decodes (or
//! allocates for) a stream it is about to reject.

use crate::job::{JobInput, Priority};
use std::collections::VecDeque;
use tracefmt::io::estimate_columnar_stream;
use tracefmt::EventRecord;

/// Working-set estimate of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobCost {
    /// Estimated peak bytes the job will pin while running.
    pub bytes: u64,
    /// Events the estimate is based on.
    pub events: u64,
    /// Whether the estimate saw the whole input (a truncated stream scan
    /// yields a lower bound; the run itself will then fail typed).
    pub complete: bool,
    /// The stream glues two incompatible wire versions together (a `DTC3`
    /// magic after a `DTC2` trailer or vice versa). Such input can never
    /// decode; the service rejects it at submit with a typed
    /// [`CodecError::MixedVersions`](tracefmt::io::CodecError) instead of
    /// admitting a job that is guaranteed to burn its whole retry budget.
    pub mixed: bool,
}

/// Per-event working-set charge: the decoded record itself plus the
/// columnar timestamp copy, replay scratch, and matching entries the
/// pipeline allocates per event.
const PER_EVENT_OVERHEAD: u64 = 32;

/// Flat charge per job (queue entry, report, per-proc maps).
const PER_JOB_BASE: u64 = 16 * 1024;

/// Estimate what admitting `input` will cost, without decoding it.
pub fn estimate_job_cost(input: &JobInput) -> JobCost {
    let record = std::mem::size_of::<EventRecord>() as u64 + PER_EVENT_OVERHEAD;
    match input {
        JobInput::Trace(trace) => {
            let events = trace.n_events() as u64;
            JobCost {
                bytes: PER_JOB_BASE + events * record,
                events,
                complete: true,
                mixed: false,
            }
        }
        JobInput::Stream(chunks) => stream_cost(chunks, false),
        JobInput::StreamIncremental { chunks, .. } => stream_cost(chunks, true),
    }
}

/// Header-scan pricing shared by both stream job modes.
///
/// `emits_frames` is the incremental mode: the windowed engine keeps only
/// O(window) timestamp columns resident, but it re-encodes the whole
/// stream as corrected frames that accumulate until the submitter takes
/// them, so the job pins roughly input + output bytes. The per-event
/// record charge stays — message matching and the CSR dependency graph
/// are O(trace) structural metadata on that path too.
fn stream_cost(chunks: &[Vec<u8>], emits_frames: bool) -> JobCost {
    let record = std::mem::size_of::<EventRecord>() as u64 + PER_EVENT_OVERHEAD;
    let est = estimate_columnar_stream(chunks.iter().map(|c| c.as_slice()));
    // A stream whose headers were unreadable (or cut off) still occupies
    // its own bytes; floor the event estimate on the encoded size so
    // garbage input cannot claim to be free. A *clean* complete scan is
    // authoritative — v3 frames carry more bytes per event than the
    // floor's divisor assumes, so flooring it would overcharge — but
    // `complete` alone is not clean: bytes after the trailer mean the
    // decoder will reject the stream, so a dirty tail keeps the floor
    // (trailing garbage must never under-charge the budget).
    let events = if est.complete && est.trailing_bytes == 0 {
        est.events
    } else {
        est.events.max(est.bytes / 24)
    };
    let stream_bytes = if emits_frames {
        est.bytes.saturating_mul(2)
    } else {
        est.bytes
    };
    JobCost {
        bytes: PER_JOB_BASE + stream_bytes + events * record,
        events,
        complete: est.complete,
        mixed: est.mixed,
    }
}

/// One queued entry: the job plus its admission cost (generic so the
/// queue is testable without a full service around it).
#[derive(Debug)]
pub(crate) struct Queued<T> {
    pub(crate) job: T,
    pub(crate) cost: u64,
}

/// A bounded, strict-priority, FIFO-within-class queue.
///
/// Not internally synchronized — the service wraps it in its state mutex,
/// which it needs anyway for the condition variable.
#[derive(Debug)]
pub(crate) struct PriorityQueue<T> {
    classes: [VecDeque<Queued<T>>; Priority::COUNT],
    len: usize,
    capacity: usize,
}

impl<T> PriorityQueue<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        PriorityQueue {
            classes: std::array::from_fn(|_| VecDeque::new()),
            len: 0,
            capacity,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub(crate) fn is_full(&self) -> bool {
        self.len >= self.capacity
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Push at the back of `priority`'s class. The caller must have
    /// checked `is_full` under the same lock.
    pub(crate) fn push(&mut self, priority: Priority, entry: Queued<T>) {
        debug_assert!(self.len < self.capacity);
        self.classes[priority.index()].push_back(entry);
        self.len += 1;
    }

    /// Pop the oldest entry of the highest non-empty class.
    pub(crate) fn pop(&mut self) -> Option<Queued<T>> {
        for class in self.classes.iter_mut() {
            if let Some(entry) = class.pop_front() {
                self.len -= 1;
                return Some(entry);
            }
        }
        None
    }

    /// Remove up to `n` entries from the *back* of the *lowest* non-empty
    /// class first — the inverse of [`PriorityQueue::pop`], so work
    /// stealing takes the jobs this node would run last and leaves its
    /// urgent head-of-line work alone.
    pub(crate) fn steal_back(&mut self, n: usize) -> Vec<Queued<T>> {
        let mut out = Vec::new();
        for class in self.classes.iter_mut().rev() {
            while out.len() < n {
                match class.pop_back() {
                    Some(entry) => {
                        self.len -= 1;
                        out.push(entry);
                    }
                    None => break,
                }
            }
            if out.len() >= n {
                break;
            }
        }
        out
    }

    /// Drain everything (used at shutdown to fail queued jobs typed).
    pub(crate) fn drain(&mut self) -> Vec<Queued<T>> {
        let mut out = Vec::with_capacity(self.len);
        while let Some(entry) = self.pop() {
            out.push(entry);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::Time;
    use tracefmt::io::{to_binary_columnar_blocked, to_binary_columnar_v3_blocked};
    use tracefmt::{EventKind, RegionId, Trace};

    fn tiny_trace(events_per_proc: usize) -> Trace {
        let mut t = Trace::for_ranks(2);
        for r in 0..2 {
            for i in 0..events_per_proc {
                t.procs[r].push(
                    Time::from_ps((i as i64 + 1) * 1000),
                    EventKind::Enter { region: RegionId(1) },
                );
            }
        }
        t
    }

    #[test]
    fn trace_cost_scales_with_events() {
        let small = estimate_job_cost(&JobInput::Trace(tiny_trace(10)));
        let large = estimate_job_cost(&JobInput::Trace(tiny_trace(1000)));
        assert_eq!(small.events, 20);
        assert_eq!(large.events, 2000);
        assert!(large.bytes > small.bytes);
        assert!(small.complete && large.complete);
    }

    #[test]
    fn stream_cost_comes_from_headers_and_flags_truncation() {
        let trace = tiny_trace(64);
        let bytes = to_binary_columnar_blocked(&trace, 16);
        let whole = estimate_job_cost(&JobInput::Stream(vec![bytes.to_vec()]));
        assert_eq!(whole.events, 128);
        assert!(whole.complete);

        let cut = bytes.len() / 2;
        let truncated = estimate_job_cost(&JobInput::Stream(vec![bytes[..cut].to_vec()]));
        assert!(!truncated.complete);
        assert!(truncated.bytes > 0);
    }

    #[test]
    fn v3_stream_cost_comes_from_headers_too() {
        let trace = tiny_trace(64);
        let bytes = to_binary_columnar_v3_blocked(&trace, 16);
        let cost = estimate_job_cost(&JobInput::Stream(vec![bytes.to_vec()]));
        assert_eq!(cost.events, 128);
        assert!(cost.complete);
        assert!(!cost.mixed);
    }

    #[test]
    fn concatenated_v2_and_v3_streams_are_flagged_mixed() {
        let trace = tiny_trace(8);
        let mut glued = to_binary_columnar_blocked(&trace, 16).to_vec();
        glued.extend_from_slice(&to_binary_columnar_v3_blocked(&trace, 16));
        let cost = estimate_job_cost(&JobInput::Stream(vec![glued]));
        assert!(cost.mixed);
        // The other order is just as mixed.
        let mut glued = to_binary_columnar_v3_blocked(&trace, 16).to_vec();
        glued.extend_from_slice(&to_binary_columnar_blocked(&trace, 16));
        assert!(estimate_job_cost(&JobInput::Stream(vec![glued])).mixed);
        // Same-version self-concatenation is odd but not *mixed*.
        let v2 = to_binary_columnar_blocked(&trace, 16).to_vec();
        let doubled = [v2.clone(), v2].concat();
        assert!(!estimate_job_cost(&JobInput::Stream(vec![doubled])).mixed);
    }

    #[test]
    fn garbage_streams_are_never_free() {
        let garbage = vec![vec![0xAB; 4096]];
        let cost = estimate_job_cost(&JobInput::Stream(garbage));
        assert!(!cost.complete);
        assert!(cost.events >= 4096 / 24);
        assert!(cost.bytes > 4096);
    }

    #[test]
    fn trailing_garbage_cannot_under_charge() {
        // Regression: a tiny valid stream with a large garbage tail scans
        // `complete` (the trailer WAS seen), but the decoder will reject
        // it — admission must price the tail, not trust the few events
        // the headers announce.
        let small = tiny_trace(4);
        let valid = to_binary_columnar_blocked(&small, 16).to_vec();
        let mut dirty = valid.clone();
        dirty.extend(std::iter::repeat_n(0xA5u8, 64 * 1024));
        let total = dirty.len() as u64;
        let cost = estimate_job_cost(&JobInput::Stream(vec![dirty]));
        assert!(cost.complete, "trailer was present, scan is complete");
        assert!(
            cost.events >= total / 24,
            "byte floor must hold: {} events for {} bytes",
            cost.events,
            total
        );
        // And it must charge strictly more than the clean stream alone.
        let clean = estimate_job_cost(&JobInput::Stream(vec![valid]));
        assert!(cost.bytes > clean.bytes + 64 * 1024);
    }

    #[test]
    fn incremental_job_cost_covers_input_and_output() {
        let trace = tiny_trace(64);
        let chunks = vec![to_binary_columnar_v3_blocked(&trace, 16).to_vec()];
        let stream = estimate_job_cost(&JobInput::Stream(chunks.clone()));
        let incremental = estimate_job_cost(&JobInput::StreamIncremental {
            chunks,
            window_events: 32,
        });
        assert_eq!(incremental.events, stream.events);
        assert!(incremental.complete && !incremental.mixed);
        // The incremental job accumulates corrected output frames on top
        // of its pinned input, so it must be priced above the plain
        // stream job.
        assert!(incremental.bytes > stream.bytes);
    }

    #[test]
    fn pop_order_is_strict_priority_then_fifo() {
        let mut q: PriorityQueue<u32> = PriorityQueue::new(8);
        q.push(Priority::Low, Queued { job: 1, cost: 0 });
        q.push(Priority::Normal, Queued { job: 2, cost: 0 });
        q.push(Priority::High, Queued { job: 3, cost: 0 });
        q.push(Priority::Normal, Queued { job: 4, cost: 0 });
        q.push(Priority::High, Queued { job: 5, cost: 0 });
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.job)).collect();
        assert_eq!(order, vec![3, 5, 2, 4, 1]);
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_is_tracked_across_push_and_pop() {
        let mut q: PriorityQueue<u32> = PriorityQueue::new(2);
        assert!(!q.is_full());
        q.push(Priority::Normal, Queued { job: 1, cost: 0 });
        q.push(Priority::Low, Queued { job: 2, cost: 0 });
        assert!(q.is_full());
        assert_eq!(q.len(), 2);
        assert_eq!(q.capacity(), 2);
        q.pop();
        assert!(!q.is_full());
        let drained = q.drain();
        assert_eq!(drained.len(), 1);
        assert!(q.is_empty());
    }
}
