//! Step-mode execution: the service's scheduling loop with the threads
//! taken out.
//!
//! A [`StepService`] owns the same [`Shared`](crate::service) state as a
//! running [`SyncService`](crate::SyncService) — same admission control,
//! same priority queue, same retry/deadline/cancellation logic via
//! [`JobRun`](crate::service) — but nothing runs until a caller *steps* a
//! logical executor. Each step is one atomic transition of the real
//! executor loop:
//!
//! * **dispatch** — pop the highest-priority job off the queue,
//! * **attempt** — run one pipeline attempt to its conclusion (retryable
//!   failure parks the executor in backoff; terminal outcomes do all the
//!   bookkeeping),
//! * **wake** — a parked executor whose backoff expired re-attempts,
//! * **exit** — an idle executor observes shutdown and drains the queue.
//!
//! Which executor steps next is the caller's choice, which is the whole
//! point: the deterministic simulation harness (`crates/simsched`) feeds
//! that choice from a seeded PRNG, so every interleaving of dispatches,
//! retries, cancellations, and shutdown that the threaded service could
//! produce becomes a *replayable* schedule. Within an attempt, the
//! optional [`AttemptProbe`] is polled at every pipeline checkpoint,
//! giving the caller deterministic mid-attempt yield points for fault
//! injection (cancel, crash, clock jump).
//!
//! Outside of tests and simulation there is no reason to use this type —
//! it executes jobs on the caller's thread.

use crate::job::{JobHandle, JobId, JobSpec, SubmitError};
use crate::metrics::MetricsSnapshot;
use crate::runtime::{AttemptProbe, Runtime};
use crate::service::{JobRun, RunStep, ServiceConfig, Shared, Take};
use std::sync::Arc;
use std::time::Duration;

/// Where one logical executor is in its loop.
enum ExecPhase {
    /// Between jobs: the next step tries the queue.
    Idle,
    /// Holding a popped job whose next attempt has not started yet.
    Dispatched(Box<JobRun>),
    /// Holding a job in retry backoff until the runtime clock reaches
    /// `wake`.
    Parked { run: Box<JobRun>, wake: Duration },
    /// Observed shutdown and exited the loop.
    Stopped,
}

/// What stepping an executor did. Every variant that names a job carries
/// its [`JobId`] so a harness can correlate steps with submissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// The queue was empty (and the service not shut down); a threaded
    /// executor would now block on the condition variable.
    Idle,
    /// Popped `job` off the queue. Its first attempt has *not* run yet —
    /// that is the next step, so two executors can both hold dispatched
    /// jobs before either runs, exactly as threads can.
    Dispatched {
        /// The popped job.
        job: JobId,
    },
    /// An attempt failed retryably; the executor is parked until `until`
    /// on the runtime clock (exponential backoff).
    BackoffStarted {
        /// The retrying job.
        job: JobId,
        /// Absolute wake time on the runtime clock.
        until: Duration,
    },
    /// The executor is parked and the clock has not reached `until`; no
    /// progress was made.
    Parked {
        /// The parked job.
        job: JobId,
        /// Absolute wake time on the runtime clock.
        until: Duration,
    },
    /// The job reached a terminal outcome (delivered to its handle, all
    /// accounting done).
    Finished {
        /// The finished job.
        job: JobId,
        /// `true` for success, `false` for any [`crate::JobError`].
        ok: bool,
    },
    /// The executor observed shutdown and exited; if the queue was being
    /// abandoned it failed `drained` still-queued jobs typed.
    Exited {
        /// Queued jobs failed with [`crate::JobError::Shutdown`].
        drained: usize,
    },
    /// The executor had already exited.
    Stopped,
}

/// A [`SyncService`](crate::SyncService) with the executor threads
/// replaced by explicitly-stepped state machines. See the [module
/// docs](self).
pub struct StepService {
    shared: Arc<Shared>,
    execs: Vec<ExecPhase>,
}

impl StepService {
    /// A stopped-clock service: `cfg.executors` logical executors over
    /// `runtime` (typically a virtual clock). No threads are spawned.
    pub fn new(cfg: ServiceConfig, runtime: Arc<dyn Runtime>) -> Self {
        let executors = cfg.executors.max(1);
        StepService {
            shared: Shared::new(cfg, runtime),
            execs: (0..executors).map(|_| ExecPhase::Idle).collect(),
        }
    }

    /// Number of logical executors.
    pub fn executors(&self) -> usize {
        self.execs.len()
    }

    /// Submit a job — identical admission control to
    /// [`SyncService::submit`](crate::SyncService::submit).
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        self.shared.submit(spec)
    }

    /// A point-in-time copy of every service metric.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Stop accepting jobs. With `abandon_queue`, the next executor to
    /// observe shutdown fails everything still queued.
    pub fn begin_shutdown(&self, abandon_queue: bool) {
        self.shared.begin_shutdown(abandon_queue);
    }

    /// Ground truth bytes currently charged against the memory budget,
    /// read under the queue lock (compare with the `admitted_bytes`
    /// metrics gauge).
    pub fn admitted_bytes(&self) -> u64 {
        self.shared.admitted_bytes()
    }

    /// Ground truth number of queued jobs, read under the queue lock
    /// (compare with the `queue_depth` metrics gauge).
    pub fn queue_len(&self) -> usize {
        self.shared.queue_len()
    }

    /// Whether stepping executor `idx` right now would make progress.
    /// `false` means the step would return [`StepEvent::Idle`],
    /// [`StepEvent::Parked`], or [`StepEvent::Stopped`].
    pub fn can_progress(&self, idx: usize) -> bool {
        match &self.execs[idx] {
            ExecPhase::Idle => self.shared.queue_len() > 0 || self.shared.is_shutdown(),
            ExecPhase::Dispatched(_) => true,
            ExecPhase::Parked { wake, .. } => self.shared.runtime.now() >= *wake,
            ExecPhase::Stopped => false,
        }
    }

    /// The earliest backoff wake time among parked executors, if any —
    /// how far a harness must advance a virtual clock to unblock one when
    /// nothing else is runnable.
    pub fn next_wake(&self) -> Option<Duration> {
        self.execs
            .iter()
            .filter_map(|e| match e {
                ExecPhase::Parked { wake, .. } => Some(*wake),
                _ => None,
            })
            .min()
    }

    /// Whether every executor has exited (terminal after shutdown).
    pub fn all_stopped(&self) -> bool {
        self.execs.iter().all(|e| matches!(e, ExecPhase::Stopped))
    }

    /// The id of the job executor `idx` currently holds (dispatched or
    /// parked), if any.
    pub fn current_job(&self, idx: usize) -> Option<JobId> {
        match &self.execs[idx] {
            ExecPhase::Dispatched(run) => Some(run.id()),
            ExecPhase::Parked { run, .. } => Some(run.id()),
            _ => None,
        }
    }

    /// Drive executor `idx` through one transition of the executor loop.
    /// `probe` is polled at every pipeline checkpoint of an attempt run by
    /// this step (the simulation's mid-attempt fault-injection hook);
    /// pass `None` for faithful no-fault execution.
    pub fn step(&mut self, idx: usize, probe: Option<&AttemptProbe>) -> StepEvent {
        let phase = std::mem::replace(&mut self.execs[idx], ExecPhase::Idle);
        let (next, event) = match phase {
            ExecPhase::Idle => match self.shared.try_take() {
                Take::Job(entry) => {
                    let run = JobRun::begin(&self.shared, entry.job, entry.cost);
                    let job = run.id();
                    (ExecPhase::Dispatched(Box::new(run)), StepEvent::Dispatched { job })
                }
                Take::Empty => (ExecPhase::Idle, StepEvent::Idle),
                Take::Exit => {
                    let drained = self.shared.drain_shutdown();
                    (ExecPhase::Stopped, StepEvent::Exited { drained })
                }
            },
            ExecPhase::Dispatched(run) => self.attempt(run, probe),
            ExecPhase::Parked { run, wake } => {
                if self.shared.runtime.now() >= wake {
                    self.attempt(run, probe)
                } else {
                    let job = run.id();
                    (
                        ExecPhase::Parked { run, wake },
                        StepEvent::Parked { job, until: wake },
                    )
                }
            }
            ExecPhase::Stopped => (ExecPhase::Stopped, StepEvent::Stopped),
        };
        self.execs[idx] = next;
        event
    }

    fn attempt(
        &self,
        mut run: Box<JobRun>,
        probe: Option<&AttemptProbe>,
    ) -> (ExecPhase, StepEvent) {
        let job = run.id();
        match run.step(&self.shared, probe) {
            RunStep::Backoff(backoff) => {
                let wake = self.shared.runtime.now() + backoff;
                (
                    ExecPhase::Parked { run, wake },
                    StepEvent::BackoffStarted { job, until: wake },
                )
            }
            RunStep::Finished { ok } => (ExecPhase::Idle, StepEvent::Finished { job, ok }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{chunked, Fault, FaultInjector};
    use crate::job::{JobError, JobInput};
    use crate::metrics::Counter;
    use clocksync::{OffsetMeasurement, PipelineConfig};
    use simclock::{Dur, Time, VirtualClock};
    use std::sync::Arc;
    use tracefmt::io::to_binary_columnar_blocked;
    use tracefmt::{EventKind, Tag, Trace, UniformLatency};

    /// A virtual-clock runtime for tests (the full-featured one lives in
    /// `crates/simsched`).
    struct TestClock(VirtualClock);

    impl Runtime for TestClock {
        fn now(&self) -> Duration {
            Duration::from_nanos((self.0.now().as_ps() / 1000).max(0) as u64)
        }
        fn sleep(&self, d: Duration) {
            self.0.advance(Dur::from_ps((d.as_nanos() as i64) * 1000));
        }
    }

    fn fixture(msgs: usize) -> (Trace, Vec<Option<OffsetMeasurement>>) {
        let mut t = Trace::for_ranks(2);
        for i in 0..msgs {
            let send_us = 10 * i as i64 + 1;
            t.procs[0].push(
                Time::from_us(send_us),
                EventKind::Send { to: tracefmt::Rank(1), tag: Tag(0), bytes: 8 },
            );
            t.procs[1].push(
                Time::from_us(send_us + 5),
                EventKind::Recv { from: tracefmt::Rank(0), tag: Tag(0), bytes: 8 },
            );
        }
        (t, vec![None, None])
    }

    fn spec(input: JobInput) -> JobSpec {
        let (_, init) = fixture(0);
        let cfg = PipelineConfig {
            presync: clocksync::PreSync::None,
            clc: None,
            ..PipelineConfig::default()
        };
        JobSpec::new(
            input,
            init,
            None,
            Arc::new(UniformLatency(Dur::from_us(1))),
            cfg,
        )
    }

    fn service(cfg: ServiceConfig) -> StepService {
        StepService::new(cfg, Arc::new(TestClock(VirtualClock::new())))
    }

    #[test]
    fn dispatch_then_attempt_completes_a_job() {
        let mut s = service(ServiceConfig {
            executors: 1,
            ..ServiceConfig::default()
        });
        let handle = s.submit(spec(JobInput::Trace(fixture(4).0))).unwrap();
        assert!(s.can_progress(0));
        let id = handle.id();
        assert_eq!(s.step(0, None), StepEvent::Dispatched { job: id });
        assert_eq!(s.step(0, None), StepEvent::Finished { job: id, ok: true });
        assert!(handle.peek().unwrap().is_ok());
        assert_eq!(s.metrics().counter(Counter::Completed), 1);
        assert_eq!(s.admitted_bytes(), 0);
    }

    #[test]
    fn retry_parks_until_virtual_backoff_expires() {
        let clock = Arc::new(TestClock(VirtualClock::new()));
        let mut s = StepService::new(
            ServiceConfig {
                executors: 1,
                max_retries: 1,
                retry_backoff: Duration::from_millis(10),
                ..ServiceConfig::default()
            },
            Arc::clone(&clock) as Arc<dyn Runtime>,
        );
        let (trace, _) = fixture(8);
        let bytes = to_binary_columnar_blocked(&trace, 16);
        let poisoned = FaultInjector::new()
            .with(Fault::Truncate { at: bytes.len() / 2 })
            .apply(&chunked(&bytes, 64));
        let handle = s.submit(spec(JobInput::Stream(poisoned))).unwrap();
        let id = handle.id();
        assert_eq!(s.step(0, None), StepEvent::Dispatched { job: id });
        let until = match s.step(0, None) {
            StepEvent::BackoffStarted { job, until } => {
                assert_eq!(job, id);
                until
            }
            other => panic!("want backoff, got {other:?}"),
        };
        // Parked: stepping without advancing the clock makes no progress.
        assert!(!s.can_progress(0));
        assert_eq!(s.step(0, None), StepEvent::Parked { job: id, until });
        assert_eq!(s.next_wake(), Some(until));
        // Advance the virtual clock past the wake; the retry runs and the
        // job fails terminally (retry budget 1).
        clock.0.advance(Dur::from_ms(11));
        assert!(s.can_progress(0));
        assert_eq!(s.step(0, None), StepEvent::Finished { job: id, ok: false });
        let failure = handle.wait().expect_err("poisoned job fails");
        assert_eq!(failure.attempts, 2);
        assert!(matches!(failure.error, JobError::Pipeline(_)));
        assert_eq!(s.metrics().counter(Counter::Retried), 1);
    }

    #[test]
    fn shutdown_with_abandon_drains_queued_jobs() {
        let mut s = service(ServiceConfig {
            executors: 2,
            ..ServiceConfig::default()
        });
        let h1 = s.submit(spec(JobInput::Trace(fixture(2).0))).unwrap();
        let h2 = s.submit(spec(JobInput::Trace(fixture(2).0))).unwrap();
        s.begin_shutdown(true);
        assert_eq!(s.step(0, None), StepEvent::Exited { drained: 2 });
        assert_eq!(s.step(1, None), StepEvent::Exited { drained: 0 });
        assert!(s.all_stopped());
        assert_eq!(s.step(0, None), StepEvent::Stopped);
        for h in [h1, h2] {
            let failure = h.wait().expect_err("queued job failed by shutdown");
            assert!(matches!(failure.error, JobError::Shutdown));
        }
        assert_eq!(s.queue_len(), 0);
        assert_eq!(s.admitted_bytes(), 0);
    }

    #[test]
    fn probe_cancel_mid_attempt_is_typed_cancelled() {
        let mut s = service(ServiceConfig {
            executors: 1,
            ..ServiceConfig::default()
        });
        let handle = s.submit(spec(JobInput::Trace(fixture(16).0))).unwrap();
        let id = handle.id();
        assert_eq!(s.step(0, None), StepEvent::Dispatched { job: id });
        // A probe that arms the job's real cancel flag at the first
        // pipeline checkpoint — the simulation's "submitter cancels
        // mid-attempt". Arming the flag keeps the error typing honest:
        // the service reports Cancelled, not DeadlineExceeded.
        let cancel = handle.canceller();
        let probe: AttemptProbe = Arc::new(move || {
            cancel();
            true
        });
        assert_eq!(
            s.step(0, Some(&probe)),
            StepEvent::Finished { job: id, ok: false }
        );
        let failure = handle.wait().expect_err("cancelled");
        assert!(matches!(failure.error, JobError::Cancelled));
        assert_eq!(failure.attempts, 1);
        assert_eq!(s.metrics().counter(Counter::Cancelled), 1);
    }

    #[test]
    fn probe_panic_is_contained_as_a_worker_crash() {
        let mut s = service(ServiceConfig {
            executors: 1,
            max_retries: 0,
            ..ServiceConfig::default()
        });
        let handle = s.submit(spec(JobInput::Trace(fixture(16).0))).unwrap();
        let id = handle.id();
        assert_eq!(s.step(0, None), StepEvent::Dispatched { job: id });
        let probe: AttemptProbe = Arc::new(|| panic!("injected worker crash"));
        assert_eq!(
            s.step(0, Some(&probe)),
            StepEvent::Finished { job: id, ok: false }
        );
        let failure = handle.wait().expect_err("crashed");
        assert!(matches!(failure.error, JobError::Panicked(_)));
        let m = s.metrics();
        assert_eq!(m.counter(Counter::JobPanics), 1);
        // The crash was contained inside the attempt: the service itself
        // never panicked.
        assert_eq!(m.counter(Counter::ServiceCrashes), 0);
    }
}
