//! The per-connection protocol driver: handshake, credit-bound upload,
//! job execution against the shared service core, and result streaming.
//!
//! Written sans-io over [`Transport`] so the simsched fault campaign can
//! drive it through an in-memory pipe with injected partial writes,
//! mid-stream disconnects, and stalled readers.

use super::{count, NetShared, ReadOutcome, TenantSlot, TenantState, Transport};
use crate::job::{JobError, JobHandle, JobInput, JobSpec, JobSuccess, Priority};
use crate::metrics::Counter;
use crate::service::Shared;
use crate::SubmitError;
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use syncd_wire::{
    ErrorCode, Frame, FrameScanner, WireError, WireJobConfig, WireJobResult, WireJump,
    WireMode, CHUNK_PAYLOAD, MAGIC, VERSION,
};
use tracefmt::io::{to_binary_columnar_blocked, to_binary_columnar_v3_blocked};

/// Smallest credit grant worth issuing: below this the per-chunk protocol
/// overhead dominates and the client would crawl.
const MIN_GRANT: u64 = 64 * 1024;

/// Bound on corrected-output bytes buffered between the executor's frame
/// sink and the socket writer. When the client stops reading, the
/// executor blocks here — and after [`SINK_STALL`] the sink reports
/// `false`, cancelling the attempt instead of holding an executor thread
/// hostage forever.
const SINK_CAP: usize = 4 * 1024 * 1024;

/// Stalled-reader cutoff for the frame sink.
const SINK_STALL: Duration = Duration::from_secs(30);

/// How long a client may sit with zero credit (budget exhausted by other
/// tenants) before the job fails typed with `OverBudget`.
const STARVATION_LIMIT: Duration = Duration::from_secs(30);

/// Events per block when re-encoding a batch job's corrected trace.
const OUT_BLOCK_EVENTS: usize = 4096;

/// Jumps per `Jumps` frame.
const JUMP_BATCH: usize = 8192;

/// Why a connection is being closed.
enum Close {
    /// Orderly client EOF at a protocol boundary.
    Clean,
    /// The client vanished (EOF or I/O error mid-protocol).
    Gone,
    /// The client's bytes violated the frame codec.
    Wire(WireError),
    /// The client's frames violated the protocol state machine.
    Proto(&'static str),
    /// A typed application error to report before closing.
    App(ErrorCode, String),
    /// The server is shutting down.
    Shutdown,
}

/// Serve one connection to completion over any transport: the entry point
/// for both the TCP accept loop and the simsched fault campaign. Any
/// reservation the connection still holds against the service memory
/// budget is released on the way out, whatever the close reason.
pub(crate) fn serve<T: Transport>(t: &mut T, net: &NetShared) {
    count(net, Counter::NetConnections);
    let shared = Arc::clone(net.service.shared());
    let mut conn = Conn {
        t,
        net,
        shared,
        reader: FrameReader::new(),
        reserved: 0,
        outstanding: 0,
    };
    let close = conn.drive();
    if conn.reserved > 0 {
        conn.shared.release(conn.reserved);
    }
    let frame = match close {
        Close::Clean => None,
        Close::Gone => {
            count(net, Counter::NetDisconnects);
            None
        }
        Close::Wire(e) => Some(Frame::Error {
            code: ErrorCode::Malformed,
            detail: e.to_string(),
        }),
        Close::Proto(what) => Some(Frame::Error {
            code: ErrorCode::Protocol,
            detail: what.to_string(),
        }),
        Close::App(code, detail) => Some(Frame::Error { code, detail }),
        Close::Shutdown => Some(Frame::Error {
            code: ErrorCode::Shutdown,
            detail: "server shutting down".to_string(),
        }),
    };
    if let Some(frame) = frame {
        // Best effort: the peer may already be gone.
        let _ = conn.t.write_all(&frame.encode());
    }
}

/// Drive a protocol conversation over `transport` against a server's
/// service — re-exported for integration tests and the fault campaign.
pub fn serve_transport<T: Transport>(server: &super::NetServer, transport: &mut T) {
    server.serve_transport(transport);
}

/// One step of the non-blocking frame reader.
enum Step {
    Frame(Frame),
    Idle,
    Eof,
}

/// Frame reassembly over a [`Transport`], buffering decoded frames.
struct FrameReader {
    scanner: FrameScanner,
    pending: VecDeque<Frame>,
}

impl FrameReader {
    fn new() -> Self {
        FrameReader {
            scanner: FrameScanner::new(),
            pending: VecDeque::new(),
        }
    }

    fn poll<T: Transport>(&mut self, t: &mut T) -> Result<Step, Close> {
        if let Some(f) = self.pending.pop_front() {
            return Ok(Step::Frame(f));
        }
        let mut buf = [0u8; 64 * 1024];
        match t.read_some(&mut buf) {
            Ok(ReadOutcome::Data(n)) => {
                self.pending
                    .extend(self.scanner.feed(&buf[..n]).map_err(Close::Wire)?);
                match self.pending.pop_front() {
                    Some(f) => Ok(Step::Frame(f)),
                    None => Ok(Step::Idle),
                }
            }
            Ok(ReadOutcome::Idle) => Ok(Step::Idle),
            Ok(ReadOutcome::Eof) => {
                self.scanner.finish().map_err(Close::Wire)?;
                Ok(Step::Eof)
            }
            Err(_) => Err(Close::Gone),
        }
    }
}

struct Conn<'a, T: Transport> {
    t: &'a mut T,
    net: &'a NetShared,
    shared: Arc<Shared>,
    reader: FrameReader,
    /// Budget bytes this connection holds via [`Shared::try_reserve`]:
    /// always `outstanding` + bytes buffered for the in-flight upload.
    reserved: u64,
    /// Granted-but-unspent client credit, every byte of it backed by
    /// `reserved`.
    outstanding: u64,
}

impl<T: Transport> Conn<'_, T> {
    fn send(&mut self, frame: &Frame) -> Result<(), Close> {
        self.t.write_all(&frame.encode()).map_err(|_| Close::Gone)
    }

    /// Block for the next frame; `Ok(None)` is orderly EOF.
    fn wait_frame(&mut self) -> Result<Option<Frame>, Close> {
        loop {
            match self.reader.poll(self.t)? {
                Step::Frame(f) => return Ok(Some(f)),
                Step::Eof => return Ok(None),
                Step::Idle => {
                    if self.net.stop.load(Ordering::SeqCst) {
                        return Err(Close::Shutdown);
                    }
                    std::thread::sleep(Duration::from_micros(500));
                }
            }
        }
    }

    fn drive(&mut self) -> Close {
        let tenant = match self.handshake() {
            Ok(t) => t,
            Err(c) => return c,
        };
        // `_slot` releases the tenant's connection slot on drop.
        let (_slot, tenant) = tenant;
        loop {
            match self.wait_frame() {
                Ok(None) => return Close::Clean,
                Ok(Some(Frame::JobConfig(cfg))) => {
                    if let Err(c) = self.run_job(*cfg, &tenant) {
                        return c;
                    }
                }
                // A cancel with no job in flight is a no-op.
                Ok(Some(Frame::Cancel)) => {}
                Ok(Some(_)) => return Close::Proto("expected JobConfig"),
                Err(c) => return c,
            }
        }
    }

    fn handshake(&mut self) -> Result<(TenantSlot, Arc<TenantState>), Close> {
        let frame = match self.wait_frame()? {
            Some(f) => f,
            None => return Err(Close::Clean),
        };
        let (magic, version, token) = match frame {
            Frame::Hello {
                magic,
                version,
                token,
            } => (magic, version, token),
            _ => return Err(Close::Proto("expected Hello")),
        };
        if magic != MAGIC {
            return Err(Close::Proto("bad protocol magic"));
        }
        if version != VERSION {
            return Err(Close::App(
                ErrorCode::VersionMismatch,
                format!("server speaks version {VERSION}, client sent {version}"),
            ));
        }
        let tenant = match self.net.tenant(&token) {
            Some(t) => Arc::clone(t),
            None => {
                count(self.net, Counter::NetAuthFailures);
                return Err(Close::App(
                    ErrorCode::AuthFailed,
                    "unknown tenant token".to_string(),
                ));
            }
        };
        let slot = match TenantSlot::claim(&tenant) {
            Some(s) => s,
            None => {
                return Err(Close::App(
                    ErrorCode::QuotaExceeded,
                    format!(
                        "tenant connection limit ({}) reached",
                        tenant.cfg.max_connections
                    ),
                ))
            }
        };
        self.send(&Frame::HelloAck {
            version: VERSION,
            credit: 0,
        })?;
        Ok((slot, tenant))
    }

    /// Try to top the client's credit back up toward the ingest window.
    /// Non-blocking: a refusal (budget full) just means no grant now.
    fn try_grant(&mut self) -> Result<bool, Close> {
        let window = self.net.ingest_window;
        if self.outstanding >= window {
            return Ok(false);
        }
        let mut add = window - self.outstanding;
        while add >= MIN_GRANT && !self.shared.try_reserve(add) {
            add /= 2;
        }
        if add < MIN_GRANT {
            return Ok(false);
        }
        self.reserved += add;
        self.outstanding += add;
        self.send(&Frame::Credit { grant: add })?;
        Ok(true)
    }

    fn run_job(&mut self, cfg: WireJobConfig, tenant: &TenantState) -> Result<(), Close> {
        // ---- upload phase: credit-bound chunk collection -------------
        let window = self.net.ingest_window;
        let mut chunks: Vec<Vec<u8>> = Vec::new();
        let mut uploaded = 0u64;
        let mut starved_since: Option<Instant> = None;
        loop {
            if self.outstanding < window / 2 {
                self.try_grant()?;
            }
            if self.outstanding == 0 {
                // The budget refused even a minimum grant: the client
                // cannot make progress. Bounded patience, then typed.
                let since = *starved_since.get_or_insert_with(Instant::now);
                if since.elapsed() > STARVATION_LIMIT {
                    return Err(Close::App(
                        ErrorCode::OverBudget,
                        "no admission budget available for upload credit".to_string(),
                    ));
                }
            } else {
                starved_since = None;
            }
            match self.reader.poll(self.t)? {
                Step::Idle => {
                    if self.net.stop.load(Ordering::SeqCst) {
                        return Err(Close::Shutdown);
                    }
                    std::thread::sleep(Duration::from_micros(500));
                }
                Step::Eof => return Err(Close::Gone),
                Step::Frame(Frame::Chunk(bytes)) => {
                    let len = bytes.len() as u64;
                    if len > self.outstanding {
                        return Err(Close::Proto("chunk exceeds granted credit"));
                    }
                    // The bytes move from "granted" to "buffered"; the
                    // reservation backing them is unchanged.
                    self.outstanding -= len;
                    uploaded += len;
                    if uploaded > tenant.cfg.max_job_bytes {
                        return Err(Close::App(
                            ErrorCode::QuotaExceeded,
                            format!(
                                "job exceeds tenant upload quota ({} bytes)",
                                tenant.cfg.max_job_bytes
                            ),
                        ));
                    }
                    chunks.push(bytes);
                }
                Step::Frame(Frame::ChunkEnd) => break,
                Step::Frame(Frame::Cancel) => {
                    return Err(Close::App(
                        ErrorCode::Cancelled,
                        "job cancelled during upload".to_string(),
                    ))
                }
                Step::Frame(_) => return Err(Close::Proto("unexpected frame during upload")),
            }
        }
        // Hand the buffered bytes to admission control: release the
        // reservation that covered them, then submit, which re-prices the
        // stream from its block headers. The handover is not atomic, so a
        // concurrent admit can squeeze in — the job then fails *typed*
        // with OverBudget, never over-commits silently.
        self.reserved -= uploaded;
        self.shared.release(uploaded);

        // ---- build and submit the spec -------------------------------
        let v3 = chunks.first().is_some_and(|c| c.starts_with(b"DTC3"));
        let pipeline = cfg
            .pipeline_config()
            .map_err(|e| Close::App(ErrorCode::Malformed, e.to_string()))?;
        let (init, fin) = cfg.measurements();
        let lmin = cfg.lmin.to_model();
        let priority = match cfg.priority {
            0 => Priority::High,
            1 => Priority::Normal,
            2 => Priority::Low,
            _ => {
                return Err(Close::App(
                    ErrorCode::Malformed,
                    "unknown priority class".to_string(),
                ))
            }
        };
        let incremental = matches!(cfg.mode, WireMode::Incremental { .. });
        let sink = incremental.then(|| Arc::new(SinkState::new()));
        let input = match cfg.mode {
            WireMode::Batch => JobInput::Stream(chunks),
            WireMode::Incremental { window_events } => JobInput::StreamIncremental {
                chunks,
                window_events: window_events.max(1) as usize,
            },
        };
        let mut spec = JobSpec::new(input, init, fin, lmin, pipeline).with_priority(priority);
        if cfg.deadline_us != u64::MAX {
            spec = spec.with_deadline(Duration::from_micros(cfg.deadline_us));
        }
        if cfg.max_retries != u32::MAX {
            spec = spec.with_max_retries(cfg.max_retries);
        }
        if let Some(ss) = &sink {
            let ss = Arc::clone(ss);
            spec = spec.with_frame_sink(Arc::new(move |idx, chunk| ss.offer(idx, chunk)));
        }
        let handle = self.shared.submit(spec).map_err(|e| match e {
            SubmitError::QueueFull { capacity } => Close::App(
                ErrorCode::QueueFull,
                format!("submission queue full (capacity {capacity})"),
            ),
            SubmitError::OverBudget {
                estimated,
                available,
            } => Close::App(
                ErrorCode::OverBudget,
                format!("job needs ~{estimated} bytes, {available} free"),
            ),
            SubmitError::MalformedStream(err) => {
                Close::App(ErrorCode::Malformed, err.to_string())
            }
            SubmitError::Shutdown => Close::Shutdown,
        })?;
        count(self.net, Counter::NetJobs);

        // ---- run phase: stream results, poll for cancel --------------
        // Job completion, not inbound data, is the critical path here:
        // the client goes silent until it has our results, so a blocking
        // read would stall every loop iteration for the full poll
        // timeout. Switch the transport to immediate-return reads and
        // park on the job handle's condvar instead — completion wakes us
        // in microseconds, and a Cancel frame is picked up within the
        // 5ms wait slice.
        self.t.set_poll_blocking(false);
        let mut handle = Some(handle);
        let mut sent_frames = 0u64;
        let mut stop_cancel = false;
        let outcome = loop {
            if let Some(ss) = &sink {
                for (idx, bytes) in ss.drain() {
                    if let Err(c) = self.send(&Frame::CorrectedFrame { index: idx, bytes }) {
                        self.t.set_poll_blocking(true);
                        abort_job(handle.take().expect("handle live"), sink.as_deref());
                        return Err(c);
                    }
                    sent_frames = sent_frames.max(idx + 1);
                }
            }
            let h = handle.as_ref().expect("handle live");
            if h.is_done() {
                let out = handle.take().expect("handle live").wait();
                // Late chunks can land between is_done and the drain
                // above; flush them before the terminal frame.
                if let Some(ss) = &sink {
                    for (idx, bytes) in ss.drain() {
                        self.send(&Frame::CorrectedFrame { index: idx, bytes })?;
                        sent_frames = sent_frames.max(idx + 1);
                    }
                }
                break out;
            }
            match self.reader.poll(self.t) {
                Ok(Step::Frame(Frame::Cancel)) => h.cancel(),
                Ok(Step::Frame(_)) => {
                    self.t.set_poll_blocking(true);
                    abort_job(handle.take().expect("handle live"), sink.as_deref());
                    return Err(Close::Proto("unexpected frame while job running"));
                }
                Ok(Step::Idle) => {
                    if self.net.stop.load(Ordering::SeqCst) && !stop_cancel {
                        stop_cancel = true;
                        h.cancel();
                    }
                    h.wait_for(Duration::from_millis(5));
                }
                Ok(Step::Eof) | Err(_) => {
                    self.t.set_poll_blocking(true);
                    abort_job(handle.take().expect("handle live"), sink.as_deref());
                    return Err(Close::Gone);
                }
            }
        };
        self.t.set_poll_blocking(true);

        // ---- terminal frames -----------------------------------------
        match outcome {
            Ok(success) => {
                if stop_cancel {
                    // The job happened to finish despite the shutdown
                    // cancel; deliver its result, then close.
                    self.send_success(&success, incremental, v3, sent_frames)?;
                    Err(Close::Shutdown)
                } else {
                    self.send_success(&success, incremental, v3, sent_frames)
                }
            }
            Err(failure) => {
                if stop_cancel {
                    return Err(Close::Shutdown);
                }
                let code = match failure.error {
                    JobError::Pipeline(_) => ErrorCode::Pipeline,
                    JobError::Panicked(_) => ErrorCode::Panicked,
                    JobError::Cancelled => ErrorCode::Cancelled,
                    JobError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
                    JobError::Shutdown => ErrorCode::Shutdown,
                };
                Err(Close::App(code, failure.error.to_string()))
            }
        }
    }

    /// Corrected output, jump set, and the terminal summary.
    fn send_success(
        &mut self,
        success: &JobSuccess,
        incremental: bool,
        v3: bool,
        sent_frames: u64,
    ) -> Result<(), Close> {
        if !incremental {
            let bytes = if v3 {
                to_binary_columnar_v3_blocked(&success.trace, OUT_BLOCK_EVENTS)
            } else {
                to_binary_columnar_blocked(&success.trace, OUT_BLOCK_EVENTS)
            };
            for slice in bytes.chunks(CHUNK_PAYLOAD.max(1)) {
                self.send(&Frame::Chunk(slice.to_vec()))?;
            }
        }
        if let Some(clc) = &success.report.clc {
            let jumps: Vec<WireJump> = clc
                .jumps
                .iter()
                .map(|j| WireJump {
                    proc: j.event.proc,
                    idx: j.event.idx,
                    size_ps: j.size.as_ps(),
                })
                .collect();
            for batch in jumps.chunks(JUMP_BATCH) {
                self.send(&Frame::Jumps(batch.to_vec()))?;
            }
        }
        self.send(&Frame::JobResult(wire_result(success, incremental, sent_frames)))?;
        Ok(())
    }
}

/// Cancel an in-flight job and wait out its executor so the sink closure
/// (which borrows nothing, but whose queue nobody will drain) can't block
/// an executor thread after its connection died.
fn abort_job(handle: JobHandle, sink: Option<&SinkState>) {
    if let Some(s) = sink {
        s.close();
    }
    handle.cancel();
    let _ = handle.wait();
}

fn wire_result(success: &JobSuccess, incremental: bool, sent_frames: u64) -> WireJobResult {
    let report = &success.report;
    let (n_jumps, max_jump_ps, events_moved, events_total) =
        report.clc.as_ref().map_or((0, 0, 0, 0), |c| {
            (
                c.jumps.len() as u64,
                c.max_jump.as_ps(),
                c.events_moved as u64,
                c.events_total as u64,
            )
        });
    WireJobResult {
        attempts: success.attempts,
        queue_wait_us: success.queue_wait.as_micros() as u64,
        run_time_us: success.run_time.as_micros() as u64,
        n_jumps,
        max_jump_ps,
        events_moved,
        events_total,
        frames: if incremental {
            sent_frames
        } else {
            success.frames.len() as u64
        },
        census_present: !incremental,
        raw_violations: report.raw.total_violations() as u64,
        after_presync_violations: report.after_presync.total_violations() as u64,
        after_clc_violations: report
            .after_clc
            .as_ref()
            .map_or(u64::MAX, |s| s.total_violations() as u64),
    }
}

/// The bounded handoff between the executor's frame sink and the
/// connection thread's socket writer.
struct SinkState {
    q: Mutex<SinkQ>,
    space: Condvar,
}

struct SinkQ {
    items: VecDeque<(u64, Vec<u8>)>,
    buffered: usize,
    /// High-water mark: next chunk index not yet accepted. A transparent
    /// retry regenerates the deterministic chunk sequence from index 0;
    /// everything below this mark is acknowledged without re-buffering,
    /// so the client never sees a duplicate.
    next: u64,
    closed: bool,
}

impl SinkState {
    fn new() -> Self {
        SinkState {
            q: Mutex::new(SinkQ {
                items: VecDeque::new(),
                buffered: 0,
                next: 0,
                closed: false,
            }),
            space: Condvar::new(),
        }
    }

    /// The executor-side frame sink. Returns `false` (cancelling the
    /// attempt) when the connection is gone or the reader has stalled
    /// past [`SINK_STALL`].
    fn offer(&self, idx: u64, chunk: &[u8]) -> bool {
        let mut q = self.q.lock().unwrap_or_else(|e| e.into_inner());
        if q.closed {
            return false;
        }
        if idx < q.next {
            return true;
        }
        let deadline = Instant::now() + SINK_STALL;
        // Always accept at least one resident chunk so an oversized chunk
        // cannot wedge an otherwise-empty queue.
        while !q.items.is_empty() && q.buffered + chunk.len() > SINK_CAP && !q.closed {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            q = self
                .space
                .wait_timeout(q, left)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        if q.closed {
            return false;
        }
        q.buffered += chunk.len();
        q.next = idx + 1;
        q.items.push_back((idx, chunk.to_vec()));
        true
    }

    /// Connection-side: take everything queued (non-blocking).
    fn drain(&self) -> Vec<(u64, Vec<u8>)> {
        let mut q = self.q.lock().unwrap_or_else(|e| e.into_inner());
        let out: Vec<_> = q.items.drain(..).collect();
        q.buffered = 0;
        drop(q);
        self.space.notify_all();
        out
    }

    /// Connection-side: the socket is gone; unblock and fail the sink.
    fn close(&self) {
        let mut q = self.q.lock().unwrap_or_else(|e| e.into_inner());
        q.closed = true;
        drop(q);
        self.space.notify_all();
    }
}
