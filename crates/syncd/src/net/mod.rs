//! The network front end: framed `syncd-wire` protocol over TCP.
//!
//! A [`NetServer`] owns one [`SyncService`] and a `std::net` accept loop
//! (thread per connection — no async runtime, so the crate stays
//! offline-friendly). Each connection speaks the `syncd-wire` frame
//! protocol:
//!
//! ```text
//! client                              server
//!   Hello{magic, version, token} ──▶
//!                               ◀──  HelloAck{version, credit: 0}
//!   JobConfig ──────────────────▶
//!                               ◀──  Credit{grant}          (repeatedly)
//!   Chunk* (≤ granted bytes) ───▶
//!   ChunkEnd ───────────────────▶        [admission + execution]
//!                               ◀──  CorrectedFrame*        (incremental)
//!                               ◀──  Chunk*                 (batch output)
//!                               ◀──  Jumps*
//!                               ◀──  JobResult | Error
//! ```
//!
//! **Backpressure is the admission budget.** The server never grants more
//! upload credit than it has *reserved* from the service's
//! byte-denominated memory budget ([`Shared::try_reserve`]): granted but
//! unspent credit and buffered-but-not-yet-submitted chunks are both
//! backed by a live reservation, released on submission or disconnect. A
//! slow, stalled, or hostile client can therefore never balloon server
//! memory beyond `ingest_window` per connection — it simply stops
//! receiving credit.
//!
//! Unused credit carries across sequential jobs on one connection (the
//! reservation carries with it), matching the client's running credit
//! counter. Any `Error` frame is **terminal for the connection**; a
//! client that wants to continue after a typed failure reconnects.
//!
//! Connection handling is sans-io at its core: [`serve_transport`] drives
//! the whole protocol over anything implementing [`Transport`], which is
//! how the simsched fault campaign injects partial writes, mid-stream
//! disconnects, and stalled readers without a socket.
//!
//! [`Shared::try_reserve`]: crate::service::Shared

use crate::metrics::Counter;
use crate::service::{ServiceConfig, SyncService};
use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

mod conn;

pub use conn::serve_transport;

/// How long a blocking [`TcpTransport`] read waits before reporting
/// [`ReadOutcome::Idle`] — the server's poll granularity for cancel
/// frames and shutdown while a job runs.
const POLL_READ_TIMEOUT: Duration = Duration::from_millis(25);

/// One tenant's identity and limits.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// The auth token presented in `Hello`.
    pub token: String,
    /// Upload quota per job, in stream bytes (`u64::MAX` = unlimited).
    pub max_job_bytes: u64,
    /// Concurrent connections allowed for this tenant.
    pub max_connections: usize,
}

impl TenantConfig {
    /// A tenant with the given token and no quotas.
    pub fn new(token: impl Into<String>) -> Self {
        TenantConfig {
            token: token.into(),
            max_job_bytes: u64::MAX,
            max_connections: 64,
        }
    }
}

/// Network server configuration.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Accepted tenants. A `Hello` token not in this list fails typed
    /// with [`syncd_wire::ErrorCode::AuthFailed`].
    pub tenants: Vec<TenantConfig>,
    /// Per-connection upload credit window in bytes; also the cap on
    /// server-side bytes buffered for a connection's in-flight upload.
    pub ingest_window: u64,
    /// Configuration of the owned [`SyncService`].
    pub service: ServiceConfig,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            tenants: vec![TenantConfig::new("default")],
            ingest_window: 1 << 20,
            service: ServiceConfig::default(),
        }
    }
}

/// Per-tenant live state shared by the accept loop and connections.
pub(crate) struct TenantState {
    pub(crate) cfg: TenantConfig,
    pub(crate) active: AtomicUsize,
}

/// What one blocking read produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// `n` bytes were read into the buffer prefix.
    Data(usize),
    /// Nothing right now (timeout); the connection is still alive.
    Idle,
    /// Orderly end of stream.
    Eof,
}

/// A bidirectional byte stream the protocol driver can run over: TCP in
/// production, an in-memory fault-injecting pipe in the simsched
/// campaign.
pub trait Transport {
    /// Read some bytes; must bound its own blocking (return
    /// [`ReadOutcome::Idle`] periodically) so the driver can poll cancel
    /// and shutdown.
    fn read_some(&mut self, buf: &mut [u8]) -> io::Result<ReadOutcome>;
    /// Write the whole buffer or fail.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Switch reads between *blocking with a timeout* (upload and idle
    /// phases, where inbound frames are the only thing to wait for) and
    /// *immediate return* (the result loop, where job completion is on
    /// the critical path and a read must never sit on it). Transports
    /// that never block (in-memory scripts) ignore the hint.
    fn set_poll_blocking(&mut self, _blocking: bool) {}
}

/// [`Transport`] over a connected socket, polling via a read timeout.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wrap a connected stream, configuring the poll timeout.
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_read_timeout(Some(POLL_READ_TIMEOUT))?;
        let _ = stream.set_nodelay(true);
        Ok(TcpTransport { stream })
    }
}

impl Transport for TcpTransport {
    fn read_some(&mut self, buf: &mut [u8]) -> io::Result<ReadOutcome> {
        use std::io::Read;
        match self.stream.read(buf) {
            Ok(0) => Ok(ReadOutcome::Eof),
            Ok(n) => Ok(ReadOutcome::Data(n)),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                Ok(ReadOutcome::Idle)
            }
            Err(e) => Err(e),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.stream.write_all(buf)
    }

    fn set_poll_blocking(&mut self, blocking: bool) {
        // Non-blocking reads surface `WouldBlock`, which `read_some`
        // already maps to `Idle`; re-enabling blocking restores the
        // 25ms poll timeout configured at construction.
        let _ = self.stream.set_nonblocking(!blocking);
    }
}

/// Deterministic in-memory [`Transport`]: replays a scripted inbound byte
/// stream in bounded reads and records everything the server writes.
/// This is how the robustness proptests and the simsched chaos campaign
/// drive the full protocol stack — handshake, credit, admission, job
/// execution — without a socket, while injecting connection faults:
///
/// * **partial reads** — [`Self::read_limit`] caps bytes per read, so
///   frames arrive split at arbitrary boundaries;
/// * **slow senders** — [`Self::idle_every`] interleaves
///   [`ReadOutcome::Idle`] polls between data reads;
/// * **mid-stream disconnect** — the script simply ends (→ `Eof`), or
///   [`Self::fail_writes_after`] makes the server's next write fail with
///   `BrokenPipe` once a byte quota is spent, exactly like a peer that
///   vanished while the server streamed results at it.
pub struct ScriptedTransport {
    inbound: Vec<u8>,
    pos: usize,
    read_limit: usize,
    idle_every: usize,
    linger_polls: usize,
    close_after_reply: bool,
    /// Byte offset into `outbound` up to which frames have been scanned
    /// for a terminal kind.
    scan_pos: usize,
    saw_terminal: bool,
    reads: usize,
    write_quota: Option<u64>,
    outbound: Vec<u8>,
}

impl ScriptedTransport {
    /// A transport that will serve `inbound` and then report `Eof`.
    pub fn new(inbound: Vec<u8>) -> ScriptedTransport {
        ScriptedTransport {
            inbound,
            pos: 0,
            read_limit: usize::MAX,
            idle_every: 0,
            linger_polls: 0,
            close_after_reply: false,
            scan_pos: 0,
            saw_terminal: false,
            reads: 0,
            write_quota: None,
            outbound: Vec::new(),
        }
    }

    /// Cap every read at `n` bytes (≥ 1), splitting frames arbitrarily.
    pub fn read_limit(mut self, n: usize) -> ScriptedTransport {
        self.read_limit = n.max(1);
        self
    }

    /// Return [`ReadOutcome::Idle`] on every `k`-th poll (models a slow
    /// sender; `0` disables).
    pub fn idle_every(mut self, k: usize) -> ScriptedTransport {
        self.idle_every = k;
        self
    }

    /// After the script is exhausted, stay "connected" (answer reads with
    /// [`ReadOutcome::Idle`]) until the server has written a terminal
    /// [`Frame::JobResult`] or [`Frame::Error`] — then report `Eof`, like
    /// a real client that hangs up after receiving its verdict.
    /// `cap_polls` bounds the wait (for sessions the server can neither
    /// finish nor fail, e.g. an upload whose end-marker a corruption ate).
    ///
    /// [`Frame::JobResult`]: syncd_wire::Frame::JobResult
    /// [`Frame::Error`]: syncd_wire::Frame::Error
    pub fn close_after_reply(mut self, cap_polls: usize) -> ScriptedTransport {
        self.linger_polls = cap_polls;
        self.close_after_reply = true;
        self
    }

    /// Let the server write `bytes` successfully, then fail every further
    /// write with `BrokenPipe` (models a peer disconnecting mid-download).
    pub fn fail_writes_after(mut self, bytes: u64) -> ScriptedTransport {
        self.write_quota = Some(bytes);
        self
    }

    /// Everything successfully written so far.
    pub fn outbound(&self) -> &[u8] {
        &self.outbound
    }

    /// Has the server written a complete terminal frame (`JobResult` or
    /// `Error`) yet? Scans `outbound` incrementally.
    fn terminal_written(&mut self) -> bool {
        use syncd_wire::FrameKind;
        while !self.saw_terminal && self.outbound.len() >= self.scan_pos + 4 {
            let len = u32::from_le_bytes(
                self.outbound[self.scan_pos..self.scan_pos + 4]
                    .try_into()
                    .expect("4 bytes"),
            ) as usize;
            if len == 0 {
                // Never written by a correct server; skip the header so
                // the scan still makes progress.
                self.scan_pos += 4;
                continue;
            }
            if self.outbound.len() < self.scan_pos + 4 + len {
                break;
            }
            let kind = self.outbound[self.scan_pos + 4];
            if kind == FrameKind::JobResult as u8 || kind == FrameKind::Error as u8 {
                self.saw_terminal = true;
            }
            self.scan_pos += 4 + len;
        }
        self.saw_terminal
    }
}

impl Transport for ScriptedTransport {
    fn read_some(&mut self, buf: &mut [u8]) -> io::Result<ReadOutcome> {
        self.reads += 1;
        if self.idle_every > 0 && self.reads.is_multiple_of(self.idle_every) {
            return Ok(ReadOutcome::Idle);
        }
        if self.pos >= self.inbound.len() {
            if self.close_after_reply && self.terminal_written() {
                return Ok(ReadOutcome::Eof);
            }
            if self.linger_polls > 0 {
                self.linger_polls -= 1;
                return Ok(ReadOutcome::Idle);
            }
            return Ok(ReadOutcome::Eof);
        }
        let n = buf
            .len()
            .min(self.read_limit)
            .min(self.inbound.len() - self.pos);
        buf[..n].copy_from_slice(&self.inbound[self.pos..self.pos + n]);
        self.pos += n;
        Ok(ReadOutcome::Data(n))
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        if let Some(quota) = &mut self.write_quota {
            if (buf.len() as u64) > *quota {
                *quota = 0;
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "scripted peer hung up",
                ));
            }
            *quota -= buf.len() as u64;
        }
        self.outbound.extend_from_slice(buf);
        Ok(())
    }
}

/// Shared state between the accept loop and every connection thread.
pub(crate) struct NetShared {
    pub(crate) service: SyncService,
    pub(crate) tenants: Vec<Arc<TenantState>>,
    pub(crate) ingest_window: u64,
    pub(crate) stop: AtomicBool,
}

impl NetShared {
    pub(crate) fn tenant(&self, token: &str) -> Option<&Arc<TenantState>> {
        self.tenants.iter().find(|t| t.cfg.token == token)
    }
}

/// A running network front end: a bound listener, its accept thread, and
/// the owned [`SyncService`] behind it.
pub struct NetServer {
    net: Arc<NetShared>,
    local_addr: std::net::SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<HashMap<u64, std::thread::JoinHandle<()>>>>,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start accepting.
    pub fn start(addr: &str, cfg: NetServerConfig) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let net = Arc::new(NetShared {
            service: SyncService::start(cfg.service),
            tenants: cfg
                .tenants
                .into_iter()
                .map(|t| {
                    Arc::new(TenantState {
                        cfg: t,
                        active: AtomicUsize::new(0),
                    })
                })
                .collect(),
            ingest_window: cfg.ingest_window.max(4 * 1024),
            stop: AtomicBool::new(false),
        });
        let conns: Arc<Mutex<HashMap<u64, std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let accept = {
            let net = Arc::clone(&net);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("syncd-accept".into())
                .spawn(move || accept_loop(&listener, &net, &conns))
                .expect("spawn accept thread")
        };
        Ok(NetServer {
            net,
            local_addr,
            accept: Some(accept),
            conns,
        })
    }

    /// Bind an ephemeral loopback port with the given configuration.
    pub fn start_loopback(cfg: NetServerConfig) -> io::Result<NetServer> {
        NetServer::start("127.0.0.1:0", cfg)
    }

    /// The bound address clients connect to.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Metrics of the owned service (includes the `syncd_net_*` series).
    pub fn metrics(&self) -> crate::metrics::MetricsSnapshot {
        self.net.service.metrics()
    }

    /// Drive one full protocol conversation over `transport` on the
    /// calling thread, against this server's service and tenant table —
    /// the sans-io path the simsched fault campaign uses.
    pub fn serve_transport<T: Transport>(&self, transport: &mut T) {
        conn::serve(transport, &self.net);
    }

    /// Stop accepting, close the listener, join every connection thread,
    /// and drain-shutdown the owned service.
    pub fn shutdown(mut self) {
        self.net.stop.store(true, Ordering::SeqCst);
        // Poke the blocking accept() awake with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        let conns: Vec<_> = {
            let mut map = self.conns.lock().unwrap_or_else(|e| e.into_inner());
            map.drain().map(|(_, h)| h).collect()
        };
        for h in conns {
            let _ = h.join();
        }
        // The service is inside an Arc; by now every thread that shared
        // it is joined, so this unwrap cannot race.
        match Arc::try_unwrap(self.net) {
            Ok(net) => net.service.shutdown(),
            Err(_) => unreachable!("net shared state still referenced after join"),
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    net: &Arc<NetShared>,
    conns: &Arc<Mutex<HashMap<u64, std::thread::JoinHandle<()>>>>,
) {
    let mut next_id = 0u64;
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if net.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if net.stop.load(Ordering::SeqCst) {
            return;
        }
        let id = next_id;
        next_id += 1;
        let net = Arc::clone(net);
        let conns2 = Arc::clone(conns);
        let handle = std::thread::Builder::new()
            .name(format!("syncd-conn-{id}"))
            .spawn(move || {
                if let Ok(mut t) = TcpTransport::new(stream) {
                    conn::serve(&mut t, &net);
                }
                // Reap our own entry so the map doesn't grow unboundedly
                // on a long-lived server; shutdown joins whatever is left.
                if let Ok(mut map) = conns2.lock() {
                    map.remove(&id);
                }
            })
            .expect("spawn connection thread");
        conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, handle);
    }
}

/// Decrements a tenant's live-connection gauge on drop.
pub(crate) struct TenantSlot {
    tenant: Arc<TenantState>,
}

impl TenantSlot {
    /// Try to claim a connection slot for the tenant.
    pub(crate) fn claim(tenant: &Arc<TenantState>) -> Option<TenantSlot> {
        let mut cur = tenant.active.load(Ordering::Relaxed);
        loop {
            if cur >= tenant.cfg.max_connections {
                return None;
            }
            match tenant.active.compare_exchange(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(TenantSlot {
                        tenant: Arc::clone(tenant),
                    })
                }
                Err(now) => cur = now,
            }
        }
    }
}

impl Drop for TenantSlot {
    fn drop(&mut self) {
        self.tenant.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Tag a metrics counter increment from the conn module without making
/// the registry pub(crate)-reachable paths noisy.
pub(crate) fn count(net: &NetShared, c: Counter) {
    net.service.shared().metrics.inc(c);
}
