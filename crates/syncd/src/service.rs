//! The service: a fixed executor pool multiplexing the synchronization
//! pipeline across admitted jobs.
//!
//! # Fault and tenant isolation
//!
//! Each job attempt runs under `catch_unwind`, so a poisoned input that
//! panics deep in decoding or synchronization fails *that attempt* with a
//! typed [`JobError`] — the executor thread, the queue, and every other
//! tenant's job survive. Attempts that fail with a retryable error are
//! re-run with exponential backoff up to the retry budget. The
//! `syncd_service_crashes_total` counter only moves if a panic escapes
//! this isolation, which the CI smoke test asserts never happens.
//!
//! # Determinism
//!
//! The service never alters the pipeline's arithmetic — it only clamps a
//! job's *worker count* to its fair share of the pool, and the pipeline
//! guarantees bit-identical results for every worker count. A job run
//! through the service therefore produces exactly the bytes a direct
//! [`clocksync::synchronize`] call would.
//!
//! # Execution seam
//!
//! All scheduling state transitions live in step-shaped pieces — take a
//! job off the queue ([`Shared::try_take`]), run one attempt and decide
//! retry/terminal ([`JobRun::step`]), drain the queue at shutdown — and
//! every timestamp goes through the [`Runtime`] clock. The threaded
//! [`SyncService`] drives those pieces from OS executor threads; the
//! [`StepService`](crate::step::StepService) drives the *same* pieces one
//! explicit step at a time under a virtual clock, which is what makes the
//! VOPR-style simulation harness (`crates/simsched`) both deterministic
//! and honest: it explores the production state machine, not a model of
//! it.

use crate::admission::{estimate_job_cost, PriorityQueue, Queued};
use crate::job::{
    JobError, JobFailure, JobHandle, JobId, JobOutcome, JobSpec, JobState, JobSuccess,
    SubmitError,
};
use crate::metrics::{Counter, MetricsRegistry, MetricsSnapshot};
use crate::runtime::{AttemptProbe, RealRuntime, Runtime};
use clocksync::{
    synchronize_stream_incremental_with_cancel, synchronize_stream_incremental_with_sink,
    synchronize_stream_with_cancel, synchronize_with_cancel, CancelToken, PipelineError,
};
use simclock::Time;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Executor threads — the number of jobs that run concurrently.
    pub executors: usize,
    /// Total pipeline worker threads the service may hand out. Each
    /// running job gets `max(1, pool_workers / executors)` as its worker
    /// ceiling, so a full service never oversubscribes the machine.
    pub pool_workers: usize,
    /// Bounded submission-queue capacity (jobs, across all classes).
    pub queue_capacity: usize,
    /// Memory budget in bytes; admission rejects jobs whose estimated
    /// working set would push the admitted total past it.
    pub memory_budget_bytes: u64,
    /// Default retry budget (attempts = retries + 1).
    pub max_retries: u32,
    /// Backoff before retry `n` is `retry_backoff * 2^(n-1)`.
    pub retry_backoff: Duration,
    /// Deadline applied to jobs that don't set their own (None = none).
    pub default_deadline: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let cpus = std::thread::available_parallelism().map_or(1, usize::from);
        ServiceConfig {
            executors: cpus.min(4),
            pool_workers: cpus,
            queue_capacity: 64,
            memory_budget_bytes: 512 << 20,
            max_retries: 2,
            retry_backoff: Duration::from_millis(2),
            default_deadline: None,
        }
    }
}

/// One admitted job waiting for (or holding) an executor. Times are
/// [`Runtime`]-clock instants (durations since the runtime's epoch).
pub(crate) struct Ticket {
    spec: JobSpec,
    state: Arc<JobState>,
    submitted: Duration,
    deadline: Option<Duration>,
}

pub(crate) struct QueueInner {
    queue: PriorityQueue<Ticket>,
    /// Bytes currently charged against the memory budget.
    admitted: u64,
    shutdown: bool,
    /// When true, queued-but-unstarted jobs are failed instead of run.
    abandon_queue: bool,
}

pub(crate) struct Shared {
    pub(crate) cfg: ServiceConfig,
    pub(crate) metrics: Arc<MetricsRegistry>,
    pub(crate) runtime: Arc<dyn Runtime>,
    inner: Mutex<QueueInner>,
    cv: Condvar,
    next_id: AtomicU64,
}

/// What [`Shared::try_take`] found (non-blocking).
pub(crate) enum Take {
    /// A job to run.
    Job(Box<Queued<Ticket>>),
    /// Nothing queued; the executor should wait (or report idle).
    Empty,
    /// Shutdown reached: the executor must drain-and-exit.
    Exit,
}

impl Shared {
    pub(crate) fn new(cfg: ServiceConfig, runtime: Arc<dyn Runtime>) -> Arc<Shared> {
        Arc::new(Shared {
            inner: Mutex::new(QueueInner {
                queue: PriorityQueue::new(cfg.queue_capacity.max(1)),
                admitted: 0,
                shutdown: false,
                abandon_queue: false,
            }),
            cv: Condvar::new(),
            next_id: AtomicU64::new(1),
            metrics: Arc::new(MetricsRegistry::new()),
            runtime,
            cfg,
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admission control + enqueue, shared by the threaded service and the
    /// step-mode service. Gauge updates happen under the queue lock so a
    /// metrics snapshot can never observe the push without its accounting
    /// (or a negative transient between the two).
    pub(crate) fn submit(self: &Arc<Self>, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        let metrics = &self.metrics;
        let estimate = estimate_job_cost(&spec.input);
        if estimate.mixed {
            metrics.inc(Counter::RejectedMalformed);
            return Err(SubmitError::MalformedStream(
                tracefmt::io::CodecError::MixedVersions,
            ));
        }
        let cost = estimate.bytes;
        let budget = self.cfg.memory_budget_bytes;
        let mut inner = self.lock();
        if inner.shutdown {
            return Err(SubmitError::Shutdown);
        }
        if inner.queue.is_full() {
            metrics.inc(Counter::RejectedQueueFull);
            return Err(SubmitError::QueueFull {
                capacity: inner.queue.capacity(),
            });
        }
        if inner.admitted.saturating_add(cost) > budget {
            metrics.inc(Counter::RejectedOverBudget);
            return Err(SubmitError::OverBudget {
                estimated: cost,
                available: budget.saturating_sub(inner.admitted),
            });
        }
        let id = JobId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let state = Arc::new(JobState::new(id));
        let now = self.runtime.now();
        let deadline = spec
            .deadline
            .or(self.cfg.default_deadline)
            .map(|d| now + d);
        let priority = spec.priority;
        inner.admitted += cost;
        inner.queue.push(
            priority,
            Queued {
                job: Ticket {
                    spec,
                    state: Arc::clone(&state),
                    submitted: now,
                    deadline,
                },
                cost,
            },
        );
        metrics.inc(Counter::Accepted);
        metrics.queue_depth_add(1);
        metrics.admitted_bytes_add(cost as i64);
        drop(inner);
        self.cv.notify_one();
        Ok(JobHandle { state })
    }

    /// Non-blocking dispatch: pop the highest-priority ticket, or report
    /// why there is none. The queue-depth gauge moves under the same lock
    /// as the pop.
    pub(crate) fn try_take(&self) -> Take {
        let mut inner = self.lock();
        self.take_locked(&mut inner)
    }

    fn take_locked(&self, inner: &mut QueueInner) -> Take {
        if inner.shutdown && (inner.abandon_queue || inner.queue.is_empty()) {
            return Take::Exit;
        }
        match inner.queue.pop() {
            Some(entry) => {
                self.metrics.queue_depth_add(-1);
                Take::Job(Box::new(entry))
            }
            None => Take::Empty,
        }
    }

    /// Release a job's admission charge.
    pub(crate) fn release(&self, cost: u64) {
        let mut inner = self.lock();
        inner.admitted -= cost;
        self.metrics.admitted_bytes_add(-(cost as i64));
    }

    /// Charge `bytes` against the memory budget if (and only if) they fit
    /// right now. The network layer reserves its per-connection ingest
    /// window through this, so buffered-but-not-yet-submitted stream bytes
    /// are accounted exactly like admitted jobs; pair every successful
    /// reservation with a [`Shared::release`].
    pub(crate) fn try_reserve(&self, bytes: u64) -> bool {
        let mut inner = self.lock();
        if inner.shutdown || inner.admitted.saturating_add(bytes) > self.cfg.memory_budget_bytes
        {
            return false;
        }
        inner.admitted += bytes;
        self.metrics.admitted_bytes_add(bytes as i64);
        true
    }

    /// Remove up to `n` queued tickets from the *back* of the lowest
    /// classes — the work-stealing donor side. The tickets leave this
    /// node's accounting entirely (queue gauge and admission charge); the
    /// router re-charges them on the recipient via [`Shared::inject`].
    pub(crate) fn steal(&self, n: usize) -> Vec<Queued<Ticket>> {
        let mut inner = self.lock();
        let stolen = inner.queue.steal_back(n);
        for entry in &stolen {
            inner.admitted -= entry.cost;
            self.metrics.queue_depth_add(-1);
            self.metrics.admitted_bytes_add(-(entry.cost as i64));
        }
        stolen
    }

    /// Accept a ticket stolen from another node: re-charge its cost here
    /// and queue it. Refused (ticket handed back, boxed to keep the Err
    /// small) when this node is shut down, its queue is full, or the
    /// charge does not fit its budget — the balancer then returns the
    /// ticket to its donor.
    pub(crate) fn inject(&self, entry: Queued<Ticket>) -> Result<(), Box<Queued<Ticket>>> {
        {
            let mut inner = self.lock();
            if inner.shutdown
                || inner.queue.is_full()
                || inner.admitted.saturating_add(entry.cost) > self.cfg.memory_budget_bytes
            {
                return Err(Box::new(entry));
            }
            inner.admitted += entry.cost;
            self.metrics.queue_depth_add(1);
            self.metrics.admitted_bytes_add(entry.cost as i64);
            let priority = entry.job.spec.priority;
            inner.queue.push(priority, entry);
        }
        self.cv.notify_one();
        Ok(())
    }

    /// Fail everything still queued with [`JobError::Shutdown`] (the
    /// abandon-queue shutdown path). Returns how many jobs were failed.
    pub(crate) fn drain_shutdown(&self) -> usize {
        let drained = self.lock().queue.drain();
        let n = drained.len();
        for Queued { job, cost } in drained {
            self.metrics.queue_depth_add(-1);
            self.release(cost);
            job.state.finish(Err(JobFailure {
                error: JobError::Shutdown,
                attempts: 0,
            }));
            self.metrics.inc(Counter::Failed);
        }
        n
    }

    /// Flip the shutdown flags and wake every executor.
    pub(crate) fn begin_shutdown(&self, abandon_queue: bool) {
        {
            let mut inner = self.lock();
            inner.shutdown = true;
            inner.abandon_queue = inner.abandon_queue || abandon_queue;
        }
        self.cv.notify_all();
    }

    /// Whether shutdown has begun.
    pub(crate) fn is_shutdown(&self) -> bool {
        self.lock().shutdown
    }

    /// Bytes currently charged against the memory budget (ground truth,
    /// read under the queue lock — the simulation invariant checker
    /// compares this against the `admitted_bytes` gauge).
    pub(crate) fn admitted_bytes(&self) -> u64 {
        self.lock().admitted
    }

    /// Jobs currently queued.
    pub(crate) fn queue_len(&self) -> usize {
        self.lock().queue.len()
    }
}

/// Decrements a gauge (and optionally bumps the crash counter) on drop,
/// so accounting survives a panic escaping the guarded region.
pub(crate) struct CrashGuard<'a> {
    pub(crate) metrics: &'a MetricsRegistry,
}

impl Drop for CrashGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.metrics.inc(Counter::ServiceCrashes);
        }
    }
}

/// The multi-tenant synchronization service. See the [crate docs](crate)
/// for the architecture.
pub struct SyncService {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl SyncService {
    /// Start a service with the given configuration on the production
    /// [`RealRuntime`] clock.
    pub fn start(cfg: ServiceConfig) -> Self {
        SyncService::start_with_runtime(cfg, Arc::new(RealRuntime::new()))
    }

    /// Start a service on an explicit [`Runtime`] — the seam the
    /// deterministic simulation harness uses to substitute a virtual
    /// clock. Production callers want [`SyncService::start`].
    pub fn start_with_runtime(cfg: ServiceConfig, runtime: Arc<dyn Runtime>) -> Self {
        let executors = cfg.executors.max(1);
        let shared = Shared::new(cfg, runtime);
        let threads = (0..executors)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("syncd-exec-{i}"))
                    .spawn(move || executor_loop(&shared))
                    .expect("spawn executor thread")
            })
            .collect();
        SyncService { shared, threads }
    }

    /// Start with default configuration.
    pub fn start_default() -> Self {
        SyncService::start(ServiceConfig::default())
    }

    /// Submit a job. Admission control runs synchronously: the call
    /// returns a handle only if the job fits the queue and the memory
    /// budget, and a typed [`SubmitError`] otherwise.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        self.shared.submit(spec)
    }

    /// A point-in-time copy of every service metric.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// The shared core — the seam the network front end and the job
    /// router build on.
    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Stop accepting jobs, let the executors *drain* the queue, and join
    /// them. Every already-admitted job runs to completion.
    pub fn shutdown(self) {
        self.stop(false);
    }

    /// Stop accepting jobs and fail everything still queued with
    /// [`JobError::Shutdown`]; only jobs already executing finish.
    pub fn shutdown_now(self) {
        self.stop(true);
    }

    fn stop(mut self, abandon_queue: bool) {
        self.shared.begin_shutdown(abandon_queue);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for SyncService {
    fn drop(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        self.shared.begin_shutdown(false);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn executor_loop(shared: &Shared) {
    loop {
        let entry = {
            let mut inner = shared.lock();
            loop {
                match shared.take_locked(&mut inner) {
                    Take::Job(entry) => break Some(entry),
                    Take::Exit => break None,
                    Take::Empty => {
                        inner = shared.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
                    }
                }
            }
        };
        let Some(entry) = entry else {
            // Shutdown. Under abandon_queue one executor drains the rest
            // and fails them typed; under graceful drain there is nothing
            // left to fail.
            shared.drain_shutdown();
            return;
        };
        let Queued { job: ticket, cost } = *entry;
        let guard = CrashGuard {
            metrics: &shared.metrics,
        };
        let mut run = JobRun::begin(shared, ticket, cost);
        while let RunStep::Backoff(backoff) = run.step(shared, None) {
            shared.runtime.sleep(backoff);
        }
        drop(guard);
    }
}

/// A job's terminal state after one attempt, or a decision to retry.
enum AttemptOutcome {
    Done(Box<JobSuccess>),
    Terminal(JobError),
    Retryable(JobError),
}

/// What one [`JobRun::step`] produced.
pub(crate) enum RunStep {
    /// The attempt failed retryably; wait out `backoff` before stepping
    /// again. (The threaded loop sleeps; the step-mode service parks the
    /// executor until the virtual clock passes the wake time.)
    Backoff(Duration),
    /// The job reached a terminal outcome; all bookkeeping (metrics,
    /// budget release, handle delivery) is already done.
    Finished {
        /// Whether the job succeeded.
        ok: bool,
    },
}

/// One admitted job being executed: the retry loop of the service,
/// decomposed into explicit steps so the threaded executor and the
/// deterministic simulation drive the identical state machine.
pub(crate) struct JobRun {
    ticket: Ticket,
    cost: u64,
    pipeline: clocksync::PipelineConfig,
    queue_wait: Duration,
    attempts: u32,
    max_attempts: u32,
}

impl JobRun {
    /// Take ownership of a popped ticket: record queue wait, mark the job
    /// running, clamp its worker request to the fair share of the pool.
    pub(crate) fn begin(shared: &Shared, ticket: Ticket, cost: u64) -> Self {
        let metrics = &shared.metrics;
        let queue_wait = shared
            .runtime
            .now()
            .saturating_sub(ticket.submitted);
        metrics.observe_queue_wait(queue_wait);
        metrics.running_add(1);

        let max_attempts = ticket.spec.max_retries.unwrap_or(shared.cfg.max_retries) + 1;
        // A job's fair share of the worker pool; the requested count is
        // only ever clamped down to it, never raised.
        let fair_share = (shared.cfg.pool_workers / shared.cfg.executors.max(1)).max(1);
        let mut pipeline = ticket.spec.pipeline.clone();
        if let Some(par) = pipeline.parallel.as_mut() {
            par.workers = par.workers.clamp(1, fair_share);
        }
        JobRun {
            ticket,
            cost,
            pipeline,
            queue_wait,
            attempts: 0,
            max_attempts,
        }
    }

    /// The job's id.
    pub(crate) fn id(&self) -> JobId {
        self.ticket.state.id
    }

    /// Run one attempt (or conclude without one if the job was cancelled
    /// or its deadline passed). `probe` is threaded into the attempt's
    /// [`CancelToken`] as an extra cancellation source — the simulation
    /// harness's per-checkpoint fault-injection hook; the threaded service
    /// passes `None`.
    pub(crate) fn step(&mut self, shared: &Shared, probe: Option<&AttemptProbe>) -> RunStep {
        let result = 'run: {
            if self.ticket.state.cancel.load(Ordering::Relaxed) {
                break 'run Err(JobError::Cancelled);
            }
            if self.deadline_passed(shared) {
                break 'run Err(JobError::DeadlineExceeded);
            }
            self.attempts += 1;
            match self.attempt(shared, probe) {
                AttemptOutcome::Done(success) => break 'run Ok(*success),
                AttemptOutcome::Terminal(err) => break 'run Err(err),
                AttemptOutcome::Retryable(err) => {
                    if self.attempts >= self.max_attempts {
                        break 'run Err(err);
                    }
                    let backoff =
                        shared.cfg.retry_backoff * 2u32.saturating_pow(self.attempts - 1);
                    // A backoff that would wake at or past the deadline is
                    // doomed — the deadline check above would fail the job
                    // the moment it woke — so fail it now instead of
                    // holding the executor in a useless sleep while other
                    // tenants' jobs queue behind it. (Found by the
                    // simsched chaos campaign: seed 61's doomed parking.)
                    if let Some(deadline) = self.ticket.deadline {
                        if shared.runtime.now() + backoff >= deadline {
                            break 'run Err(JobError::DeadlineExceeded);
                        }
                    }
                    shared.metrics.inc(Counter::Retried);
                    return RunStep::Backoff(backoff);
                }
            }
        };
        self.finish(shared, result)
    }

    fn deadline_passed(&self, shared: &Shared) -> bool {
        self.ticket
            .deadline
            .is_some_and(|d| shared.runtime.now() >= d)
    }

    /// Terminal bookkeeping: counters, latency, stats fold, budget
    /// release, and outcome delivery to the submitter's handle.
    fn finish(&mut self, shared: &Shared, result: Result<JobSuccess, JobError>) -> RunStep {
        let metrics = &shared.metrics;
        metrics.running_add(-1);
        let ok = result.is_ok();
        let outcome: JobOutcome = match result {
            Ok(success) => {
                metrics.observe_job_latency(
                    shared.runtime.now().saturating_sub(self.ticket.submitted),
                );
                metrics.fold_pipeline_stats(&success.report.stats);
                Ok(success)
            }
            Err(error) => Err(JobFailure {
                error,
                attempts: self.attempts,
            }),
        };
        match &outcome {
            Ok(_) => metrics.inc(Counter::Completed),
            Err(f) => {
                match f.error {
                    JobError::Cancelled => metrics.inc(Counter::Cancelled),
                    JobError::DeadlineExceeded => metrics.inc(Counter::DeadlineExceeded),
                    _ => {}
                }
                metrics.inc(Counter::Failed);
            }
        }
        shared.release(self.cost);
        self.ticket.state.finish(outcome);
        RunStep::Finished { ok }
    }

    fn attempt(&mut self, shared: &Shared, probe: Option<&AttemptProbe>) -> AttemptOutcome {
        let t0 = shared.runtime.now();
        let mut cancel =
            CancelToken::none().with_flag(Arc::clone(&self.ticket.state.cancel));
        if let Some(deadline) = self.ticket.deadline {
            // Deadline as a probe on the runtime clock, so simulated time
            // trips it exactly like wall time would.
            let rt = Arc::clone(&shared.runtime);
            cancel = cancel.with_probe(Arc::new(move || rt.now() >= deadline));
        }
        if let Some(probe) = probe {
            cancel = cancel.with_probe(Arc::clone(probe));
        }
        // The pipeline rewrites timestamps only — never event structure —
        // so retry isolation does not need a full `Trace::clone` per
        // attempt (the seam that cost ~10% over direct calls). Instead the
        // attempt runs in place, and when a retry is still possible we keep
        // an 8-byte-per-event timestamp snapshot to roll a failed attempt
        // back bit-exactly. When this is the last permitted attempt no
        // snapshot is taken at all.
        let retry_possible = self.attempts < self.max_attempts;
        let spec = &mut self.ticket.spec;
        let snapshot: Option<Vec<Vec<Time>>> = match (&spec.input, retry_possible) {
            (crate::job::JobInput::Trace(trace), true) => Some(snapshot_times(trace)),
            _ => None,
        };
        let init = &spec.init;
        let fin = spec.fin.as_deref();
        let lmin = &*spec.lmin;
        let pipeline = &self.pipeline;
        let frame_sink = spec.frame_sink.clone();
        let input = &mut spec.input;
        let result = catch_unwind(AssertUnwindSafe(|| match input {
            crate::job::JobInput::Trace(trace) => {
                synchronize_with_cancel(trace, init, fin, lmin, pipeline, &cancel).map(
                    |report| {
                        // Move the corrected trace out; the ticket keeps an
                        // empty husk (the job is finished either way).
                        let done = std::mem::replace(trace, tracefmt::Trace::for_ranks(0));
                        (done, report, Vec::new())
                    },
                )
            }
            crate::job::JobInput::Stream(chunks) => synchronize_stream_with_cancel(
                chunks.iter().map(|c| c.as_slice()),
                init,
                fin,
                lmin,
                pipeline,
                &cancel,
            )
            .map(|(trace, report)| (trace, report, Vec::new())),
            crate::job::JobInput::StreamIncremental {
                chunks,
                window_events,
            } => {
                let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
                match frame_sink.as_deref() {
                    // A sink (the network layer) takes the corrected frames
                    // as they are sealed; nothing is collected in memory.
                    Some(sink) => synchronize_stream_incremental_with_sink(
                        &refs,
                        init,
                        fin,
                        lmin,
                        pipeline,
                        *window_events,
                        &cancel,
                        sink,
                    )
                    .map(|inc| {
                        (tracefmt::Trace::for_ranks(0), inc.to_pipeline_report(), Vec::new())
                    }),
                    None => synchronize_stream_incremental_with_cancel(
                        &refs,
                        init,
                        fin,
                        lmin,
                        pipeline,
                        *window_events,
                        &cancel,
                    )
                    // The corrected output IS the frames; the empty trace is
                    // documented on `JobSuccess::trace`.
                    .map(|(frames, inc)| {
                        (tracefmt::Trace::for_ranks(0), inc.to_pipeline_report(), frames)
                    }),
                }
            }
        }));
        match result {
            Ok(Ok((trace, report, frames))) => AttemptOutcome::Done(Box::new(JobSuccess {
                trace,
                report,
                frames,
                attempts: self.attempts,
                queue_wait: self.queue_wait,
                run_time: shared.runtime.now().saturating_sub(t0),
            })),
            Ok(Err(PipelineError::Cancelled)) => {
                // Disambiguate: an armed flag means the submitter (or an
                // injected fault acting as one) cancelled; otherwise the
                // deadline tripped the token.
                if self.ticket.state.cancel.load(Ordering::Relaxed) {
                    AttemptOutcome::Terminal(JobError::Cancelled)
                } else {
                    AttemptOutcome::Terminal(JobError::DeadlineExceeded)
                }
            }
            Ok(Err(err)) => {
                self.rollback(snapshot);
                AttemptOutcome::Retryable(JobError::Pipeline(err))
            }
            Err(payload) => {
                self.rollback(snapshot);
                shared.metrics.inc(Counter::JobPanics);
                let msg = panic_message(payload.as_ref());
                AttemptOutcome::Retryable(JobError::Panicked(msg))
            }
        }
    }

    /// Undo a failed in-place attempt so the retry starts from the
    /// submitted timestamps, bit for bit.
    fn rollback(&mut self, snapshot: Option<Vec<Vec<Time>>>) {
        if let (Some(snap), crate::job::JobInput::Trace(trace)) =
            (snapshot, &mut self.ticket.spec.input)
        {
            restore_times(trace, &snap);
        }
    }
}

/// Per-timeline timestamp copy — the only state the pipeline mutates.
fn snapshot_times(trace: &tracefmt::Trace) -> Vec<Vec<Time>> {
    trace
        .procs
        .iter()
        .map(|p| p.events.iter().map(|e| e.time).collect())
        .collect()
}

fn restore_times(trace: &mut tracefmt::Trace, snap: &[Vec<Time>]) {
    debug_assert_eq!(trace.procs.len(), snap.len());
    for (proc, times) in trace.procs.iter_mut().zip(snap) {
        debug_assert_eq!(proc.events.len(), times.len());
        for (event, &t) in proc.events.iter_mut().zip(times) {
            event.time = t;
        }
    }
}

/// Last resort for a stolen ticket no node would take back (every queue
/// filled up mid-flight): resolve its handle typed instead of dropping
/// the submitter into an eternal `wait`.
pub(crate) fn fail_stolen(entry: Queued<Ticket>) {
    entry.job.state.finish(Err(JobFailure {
        error: JobError::Shutdown,
        attempts: 0,
    }));
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{chunked, Fault, FaultInjector};
    use crate::job::{JobInput, Priority};
    use clocksync::{synchronize, OffsetMeasurement, PipelineConfig};
    use simclock::{Dur, Time};
    use std::sync::Arc;
    use tracefmt::io::to_binary_columnar_blocked;
    use tracefmt::{EventKind, Tag, Trace, UniformLatency};

    /// A 2-rank trace with messages 0 → 1, rank 1's clock skewed by
    /// +500 µs, plus the matching init/finalize measurements.
    fn fixture(
        msgs: usize,
    ) -> (
        Trace,
        Vec<Option<OffsetMeasurement>>,
        Vec<Option<OffsetMeasurement>>,
    ) {
        let skew = 500i64;
        let mut t = Trace::for_ranks(2);
        for i in 0..msgs {
            let send_us = 10 * i as i64 + 1;
            let recv_us = send_us + 5;
            t.procs[0].push(
                Time::from_us(send_us),
                EventKind::Send { to: tracefmt::Rank(1), tag: Tag(0), bytes: 8 },
            );
            t.procs[1].push(
                Time::from_us(recv_us + skew),
                EventKind::Recv { from: tracefmt::Rank(0), tag: Tag(0), bytes: 8 },
            );
        }
        let meas = |at: i64| OffsetMeasurement {
            worker_time: Time::from_us(at + skew),
            offset: Dur::from_us(-skew),
            rtt: Dur::from_us(4),
        };
        let init = vec![None, Some(meas(0))];
        let fin = vec![None, Some(meas(10 * msgs as i64 + 10))];
        (t, init, fin)
    }

    fn lmin() -> Arc<dyn tracefmt::MinLatency + Send + Sync> {
        Arc::new(UniformLatency(Dur::from_us(1)))
    }

    fn spec(input: JobInput) -> JobSpec {
        let (_, init, fin) = fixture(0);
        JobSpec::new(input, init, Some(fin), lmin(), PipelineConfig::default())
    }

    #[test]
    fn trace_job_matches_the_direct_pipeline_call() {
        let (trace, init, fin) = fixture(40);
        let mut direct = trace.clone();
        synchronize(
            &mut direct,
            &init,
            Some(&fin),
            &UniformLatency(Dur::from_us(1)),
            &PipelineConfig::default(),
        )
        .unwrap();

        let service = SyncService::start_default();
        let handle = service
            .submit(JobSpec::new(
                JobInput::Trace(trace),
                init,
                Some(fin),
                lmin(),
                PipelineConfig::default(),
            ))
            .unwrap();
        let success = handle.wait().expect("job succeeds");
        assert_eq!(success.attempts, 1);
        for (p, (got, want)) in success.trace.procs.iter().zip(&direct.procs).enumerate() {
            for (i, (g, w)) in got.events.iter().zip(&want.events).enumerate() {
                assert_eq!(g.time, w.time, "proc {p} event {i}");
            }
        }
        let m = service.metrics();
        assert_eq!(m.counter(Counter::Completed), 1);
        assert_eq!(m.counter(Counter::ServiceCrashes), 0);
        service.shutdown();
    }

    #[test]
    fn poisoned_stream_fails_typed_after_retries() {
        let (trace, ..) = fixture(40);
        let bytes = to_binary_columnar_blocked(&trace, 16);
        let poisoned = FaultInjector::new()
            .with(Fault::Truncate { at: bytes.len() / 2 })
            .apply(&chunked(&bytes, 64));

        let service = SyncService::start(ServiceConfig {
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            ..ServiceConfig::default()
        });
        let handle = service.submit(spec(JobInput::Stream(poisoned))).unwrap();
        let failure = handle.wait().expect_err("poisoned job must fail");
        assert_eq!(failure.attempts, 3);
        assert!(
            matches!(failure.error, JobError::Pipeline(_)),
            "want typed pipeline error, got {:?}",
            failure.error
        );
        let m = service.metrics();
        assert_eq!(m.counter(Counter::Retried), 2);
        assert_eq!(m.counter(Counter::Failed), 1);
        assert_eq!(m.counter(Counter::ServiceCrashes), 0);
        // The budget charge is released once the job is done.
        assert_eq!(m.admitted_bytes, 0);
        service.shutdown();
    }

    #[test]
    fn incremental_stream_job_streams_corrected_frames() {
        let (trace, init, fin) = fixture(40);
        let mut direct = trace.clone();
        synchronize(
            &mut direct,
            &init,
            Some(&fin),
            &UniformLatency(Dur::from_us(1)),
            &PipelineConfig::default(),
        )
        .unwrap();

        let bytes = to_binary_columnar_blocked(&trace, 16);
        let service = SyncService::start_default();
        let handle = service
            .submit(JobSpec::new(
                JobInput::StreamIncremental {
                    chunks: chunked(&bytes, 64),
                    window_events: 8,
                },
                init,
                Some(fin),
                lmin(),
                PipelineConfig::default(),
            ))
            .unwrap();
        let success = handle.wait().expect("incremental job succeeds");
        // The corrected trace comes back as stream frames, not records.
        assert_eq!(success.trace.n_procs(), 0);
        assert!(!success.frames.is_empty());
        assert!(success.report.stats.peak_resident_column_bytes > 0);
        let back =
            tracefmt::io::from_binary_columnar(success.frames.concat().into()).unwrap();
        for dp in &direct.procs {
            let wp = back
                .procs
                .iter()
                .find(|p| p.location == dp.location)
                .expect("timeline present in re-decoded output");
            assert_eq!(dp.events.len(), wp.events.len());
            for (d, w) in dp.events.iter().zip(&wp.events) {
                assert_eq!(d.time, w.time);
            }
        }
        assert_eq!(service.metrics().counter(Counter::Completed), 1);
        service.shutdown();
    }

    #[test]
    fn zero_window_incremental_job_fails_typed() {
        let (trace, init, fin) = fixture(4);
        let bytes = to_binary_columnar_blocked(&trace, 16);
        let service = SyncService::start(ServiceConfig {
            max_retries: 0,
            ..ServiceConfig::default()
        });
        let handle = service
            .submit(JobSpec::new(
                JobInput::StreamIncremental {
                    chunks: chunked(&bytes, 64),
                    window_events: 0,
                },
                init,
                Some(fin),
                lmin(),
                PipelineConfig::default(),
            ))
            .unwrap();
        let failure = handle.wait().expect_err("zero window must fail");
        assert!(matches!(failure.error, JobError::Pipeline(_)));
        assert_eq!(service.metrics().admitted_bytes, 0);
        service.shutdown();
    }

    #[test]
    fn mixed_version_stream_is_refused_at_submit() {
        let (trace, ..) = fixture(8);
        let mut glued = to_binary_columnar_blocked(&trace, 16).to_vec();
        glued.extend_from_slice(&tracefmt::io::to_binary_columnar_v3_blocked(&trace, 16));
        let service = SyncService::start_default();
        match service.submit(spec(JobInput::Stream(vec![glued]))) {
            Err(SubmitError::MalformedStream(e)) => {
                assert_eq!(e, tracefmt::io::CodecError::MixedVersions);
            }
            other => panic!("want MalformedStream, got {:?}", other.err()),
        }
        let m = service.metrics();
        assert_eq!(m.counter(Counter::RejectedMalformed), 1);
        assert_eq!(m.counter(Counter::Accepted), 0);
        service.shutdown();
    }

    #[test]
    fn zero_deadline_job_reports_deadline_exceeded() {
        let (trace, init, fin) = fixture(10);
        let service = SyncService::start_default();
        let handle = service
            .submit(
                JobSpec::new(
                    JobInput::Trace(trace),
                    init,
                    Some(fin),
                    lmin(),
                    PipelineConfig::default(),
                )
                .with_deadline(Duration::ZERO),
            )
            .unwrap();
        let failure = handle.wait().expect_err("deadline must trip");
        assert!(matches!(failure.error, JobError::DeadlineExceeded));
        assert_eq!(service.metrics().counter(Counter::DeadlineExceeded), 1);
        service.shutdown();
    }

    /// A service whose single executor is pinned down for ~200 ms by a
    /// poisoned job in its retry backoff — long enough to make queue
    /// interactions deterministic.
    fn busy_service(queue_capacity: usize) -> (SyncService, JobHandle) {
        let service = SyncService::start(ServiceConfig {
            executors: 1,
            pool_workers: 1,
            queue_capacity,
            max_retries: 1,
            retry_backoff: Duration::from_millis(200),
            ..ServiceConfig::default()
        });
        let (trace, ..) = fixture(4);
        let bytes = to_binary_columnar_blocked(&trace, 16);
        let poisoned = FaultInjector::new()
            .with(Fault::Truncate { at: bytes.len() - 3 })
            .apply(&chunked(&bytes, 64));
        let busy = service.submit(spec(JobInput::Stream(poisoned))).unwrap();
        // Wait until the executor has actually taken the job off the queue.
        while service.metrics().queue_depth > 0 {
            std::thread::yield_now();
        }
        (service, busy)
    }

    #[test]
    fn cancelled_queued_job_never_runs() {
        let (service, busy) = busy_service(8);
        let (trace, init, fin) = fixture(10);
        let handle = service
            .submit(JobSpec::new(
                JobInput::Trace(trace),
                init,
                Some(fin),
                lmin(),
                PipelineConfig::default(),
            ))
            .unwrap();
        handle.cancel();
        let failure = handle.wait().expect_err("cancelled job must fail");
        assert!(matches!(failure.error, JobError::Cancelled));
        assert_eq!(failure.attempts, 0);
        assert_eq!(service.metrics().counter(Counter::Cancelled), 1);
        let _ = busy.wait();
        service.shutdown();
    }

    #[test]
    fn full_queue_and_tiny_budget_reject_typed() {
        let (service, busy) = busy_service(1);
        // One job fits the queue...
        let q1 = service.submit(spec(JobInput::Trace(fixture(2).0))).unwrap();
        // ...the next bounces.
        match service.submit(spec(JobInput::Trace(fixture(2).0))) {
            Err(SubmitError::QueueFull { capacity }) => assert_eq!(capacity, 1),
            other => panic!("want QueueFull, got {:?}", other.err()),
        }
        assert_eq!(service.metrics().counter(Counter::RejectedQueueFull), 1);
        let _ = busy.wait();
        let _ = q1.wait();
        service.shutdown();

        let tiny = SyncService::start(ServiceConfig {
            memory_budget_bytes: 1,
            ..ServiceConfig::default()
        });
        match tiny.submit(spec(JobInput::Trace(fixture(2).0))) {
            Err(SubmitError::OverBudget { estimated, available }) => {
                assert!(estimated > 1);
                assert_eq!(available, 1);
            }
            other => panic!("want OverBudget, got {:?}", other.err()),
        }
        assert_eq!(tiny.metrics().counter(Counter::RejectedOverBudget), 1);
        tiny.shutdown();
    }

    #[test]
    fn shutdown_now_fails_queued_jobs_typed() {
        let (service, busy) = busy_service(8);
        let queued = service.submit(spec(JobInput::Trace(fixture(2).0))).unwrap();
        service.shutdown_now();
        let failure = queued.wait().expect_err("queued job must be failed");
        assert!(matches!(failure.error, JobError::Shutdown));
        let _ = busy.wait();
    }

    #[test]
    fn high_priority_jumps_the_queue() {
        let (service, busy) = busy_service(8);
        let low = service
            .submit(spec(JobInput::Trace(fixture(2).0)).with_priority(Priority::Low))
            .unwrap();
        let high = service
            .submit(spec(JobInput::Trace(fixture(2).0)).with_priority(Priority::High))
            .unwrap();
        let _ = busy.wait();
        let high_out = high.wait().expect("high-priority job succeeds");
        let low_out = low.wait().expect("low-priority job succeeds");
        // Single executor: the high job must have been picked first, i.e.
        // it waited strictly less than the later-submitted low job.
        assert!(high_out.queue_wait <= low_out.queue_wait);
        service.shutdown();
    }

    #[test]
    fn worker_clamp_keeps_results_bit_identical() {
        let (trace, init, fin) = fixture(60);
        let mut direct = trace.clone();
        // Ask for absurd parallelism; the service clamps it to the pool.
        let cfg = PipelineConfig {
            parallel: Some(clocksync::ParallelConfig { workers: 64, shard_size: 16 }),
            ..PipelineConfig::default()
        };
        synchronize(
            &mut direct,
            &init,
            Some(&fin),
            &UniformLatency(Dur::from_us(1)),
            &cfg,
        )
        .unwrap();

        let service = SyncService::start(ServiceConfig {
            executors: 2,
            pool_workers: 2,
            ..ServiceConfig::default()
        });
        let handle = service
            .submit(JobSpec::new(
                JobInput::Trace(trace),
                init,
                Some(fin),
                lmin(),
                cfg,
            ))
            .unwrap();
        let success = handle.wait().expect("job succeeds");
        for (got, want) in success.trace.procs.iter().zip(&direct.procs) {
            for (g, w) in got.events.iter().zip(&want.events) {
                assert_eq!(g.time, w.time);
            }
        }
        service.shutdown();
    }
}
