//! The multi-node tier: a consistent-hash job router over N in-process
//! [`SyncService`] nodes, with background work stealing.
//!
//! **Placement.** Each node gets [`RouterConfig::replicas`] virtual
//! points on an FNV-1a hash ring; a job key walks clockwise to the first
//! point. Consistent hashing keeps placement stable when the node count
//! changes and spreads keys evenly without coordination.
//!
//! **Work stealing.** Placement is oblivious to load, so a hot key range
//! can pile jobs onto one node while others idle. A balancer thread
//! compares queue depths every [`RouterConfig::steal_interval`]; when the
//! spread reaches [`RouterConfig::steal_threshold`], it moves half the
//! difference from the deepest queue's *back, lowest class first*
//! ([`Shared::steal`]) to the shallowest node ([`Shared::inject`]),
//! re-charging the admission budget on the recipient. A submitted job's
//! [`JobHandle`] is placement-independent (the handle shares state with
//! the ticket, wherever it runs), so stealing is invisible to submitters.
//!
//! **Bit-identity.** Every node runs the identical [`ServiceConfig`] on
//! one shared [`Runtime`], and the pipeline itself is bit-identical for
//! every worker count — so a job's corrected output does not depend on
//! which node executes it. The router test pins this.
//!
//! [`Shared::steal`]: crate::service::Shared
//! [`Shared::inject`]: crate::service::Shared

use crate::job::{JobHandle, JobSpec, SubmitError};
use crate::metrics::{Counter, MetricsSnapshot};
use crate::runtime::{RealRuntime, Runtime};
use crate::service::{fail_stolen, ServiceConfig, SyncService};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Number of in-process service nodes.
    pub nodes: usize,
    /// Virtual points per node on the hash ring.
    pub replicas: usize,
    /// Balancer wake-up period.
    pub steal_interval: Duration,
    /// Minimum queue-depth spread (deepest − shallowest) that triggers a
    /// rebalance.
    pub steal_threshold: usize,
    /// Configuration applied to **every** node — identical configs are
    /// what make placement invisible in the results.
    pub node: ServiceConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            nodes: 2,
            replicas: 64,
            steal_interval: Duration::from_millis(5),
            steal_threshold: 4,
            node: ServiceConfig::default(),
        }
    }
}

/// 64-bit FNV-1a with a murmur-style finalizer: tiny, dependency-free,
/// and uniform enough for ring placement (not cryptographic, and does not
/// need to be). Raw FNV alone is wrong here — similar short keys share
/// their high bits (a trailing byte only diffuses upward through one
/// multiply), which collapses the ring to a few arcs; the finalizer
/// avalanches every input bit across the whole word.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// A running multi-node router.
pub struct JobRouter {
    nodes: Vec<SyncService>,
    /// Sorted `(point, node)` ring.
    ring: Vec<(u64, u32)>,
    stop: Arc<AtomicBool>,
    steals: Arc<AtomicU64>,
    balancer: Option<std::thread::JoinHandle<()>>,
}

impl JobRouter {
    /// Start `cfg.nodes` services on one shared production clock and the
    /// balancer thread.
    pub fn start(cfg: RouterConfig) -> JobRouter {
        JobRouter::start_with_runtime(cfg, Arc::new(RealRuntime::new()))
    }

    /// Start on an explicit runtime (the simulation seam; every node
    /// shares it so deadlines and queue waits stay comparable).
    pub fn start_with_runtime(cfg: RouterConfig, runtime: Arc<dyn Runtime>) -> JobRouter {
        let n = cfg.nodes.max(1);
        let nodes: Vec<SyncService> = (0..n)
            .map(|_| SyncService::start_with_runtime(cfg.node.clone(), Arc::clone(&runtime)))
            .collect();
        let mut ring = Vec::with_capacity(n * cfg.replicas.max(1));
        for (i, _) in nodes.iter().enumerate() {
            for r in 0..cfg.replicas.max(1) {
                ring.push((fnv1a64(format!("node-{i}#{r}").as_bytes()), i as u32));
            }
        }
        ring.sort_unstable();
        let stop = Arc::new(AtomicBool::new(false));
        let steals = Arc::new(AtomicU64::new(0));
        let balancer = {
            let shareds: Vec<_> = nodes.iter().map(|s| Arc::clone(s.shared())).collect();
            let stop = Arc::clone(&stop);
            let steals = Arc::clone(&steals);
            let interval = cfg.steal_interval;
            let threshold = cfg.steal_threshold.max(1);
            std::thread::Builder::new()
                .name("syncd-balancer".into())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(interval);
                        rebalance_once(&shareds, threshold, &steals);
                    }
                })
                .expect("spawn balancer thread")
        };
        JobRouter {
            nodes,
            ring,
            stop,
            steals,
            balancer: Some(balancer),
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node a key hashes to (before any stealing).
    pub fn node_for(&self, key: &str) -> usize {
        let h = fnv1a64(key.as_bytes());
        let at = self.ring.partition_point(|&(p, _)| p < h);
        let (_, node) = self.ring[at % self.ring.len()];
        node as usize
    }

    /// Route `spec` by `key` and submit it to the owning node. The
    /// returned handle works wherever the job ends up running.
    pub fn submit_keyed(&self, key: &str, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        self.nodes[self.node_for(key)].submit(spec)
    }

    /// Current queue depth of every node (diagnostics and tests).
    pub fn queue_lens(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .map(|s| s.shared().queue_len())
            .collect()
    }

    /// Total tickets moved between nodes so far.
    pub fn rebalances(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Metrics snapshot of one node.
    pub fn metrics(&self, node: usize) -> MetricsSnapshot {
        self.nodes[node].metrics()
    }

    /// Stop the balancer, then drain-shutdown every node.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(b) = self.balancer.take() {
            let _ = b.join();
        }
        for node in self.nodes.drain(..) {
            node.shutdown();
        }
    }
}

/// One balancer pass over the nodes' queues.
fn rebalance_once(
    shareds: &[Arc<crate::service::Shared>],
    threshold: usize,
    steals: &AtomicU64,
) {
    if shareds.len() < 2 {
        return;
    }
    let lens: Vec<usize> = shareds.iter().map(|s| s.queue_len()).collect();
    let (max_i, &max) = lens
        .iter()
        .enumerate()
        .max_by_key(|&(_, &l)| l)
        .expect("non-empty");
    let (min_i, &min) = lens
        .iter()
        .enumerate()
        .min_by_key(|&(_, &l)| l)
        .expect("non-empty");
    if max_i == min_i || max - min < threshold {
        return;
    }
    let take = (max - min) / 2;
    for stolen in shareds[max_i].steal(take) {
        let mut entry = Some(stolen);
        // Recipient first, donor as give-back, then anyone — a stolen
        // ticket must land somewhere or fail typed, never vanish.
        let order = std::iter::once(min_i)
            .chain(std::iter::once(max_i))
            .chain(0..shareds.len());
        for i in order {
            match shareds[i].inject(entry.take().expect("ticket present")) {
                Ok(()) => {
                    if i != max_i {
                        steals.fetch_add(1, Ordering::Relaxed);
                        shareds[i].metrics.inc(Counter::RouterSteals);
                    }
                    break;
                }
                Err(e) => entry = Some(*e),
            }
        }
        if let Some(e) = entry {
            fail_stolen(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_covers_all_nodes() {
        let cfg = RouterConfig {
            nodes: 4,
            node: ServiceConfig {
                executors: 1,
                pool_workers: 1,
                ..ServiceConfig::default()
            },
            ..RouterConfig::default()
        };
        let router = JobRouter::start(cfg);
        let mut hit = [false; 4];
        for i in 0..256 {
            let n = router.node_for(&format!("key-{i}"));
            assert_eq!(n, router.node_for(&format!("key-{i}")), "stable placement");
            hit[n] = true;
        }
        assert!(hit.iter().all(|&h| h), "256 keys should cover 4 nodes: {hit:?}");
        router.shutdown();
    }

    #[test]
    fn fnv_spreads_keys_reasonably() {
        let mut counts = [0usize; 8];
        let cfg = RouterConfig {
            nodes: 8,
            node: ServiceConfig {
                executors: 1,
                pool_workers: 1,
                ..ServiceConfig::default()
            },
            ..RouterConfig::default()
        };
        let router = JobRouter::start(cfg);
        for i in 0..4096 {
            counts[router.node_for(&format!("tenant-{i}/job-{}", i * 7))] += 1;
        }
        router.shutdown();
        let (lo, hi) = (512 / 4, 512 * 4);
        for (n, &c) in counts.iter().enumerate() {
            assert!(c > lo && c < hi, "node {n} got {c} of 4096 keys: {counts:?}");
        }
    }
}
