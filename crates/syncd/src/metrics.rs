//! The service's observability layer: a lock-cheap registry of counters,
//! gauges and latency histograms, aggregated per-stage throughput folded
//! from every completed job's [`PipelineStats`], and a text exporter.
//!
//! Counters and gauges are plain atomics; the latency histograms are
//! fixed arrays of atomic buckets (one relaxed `fetch_add` per
//! observation). The only lock in the registry guards the per-stage
//! totals map, taken once per *completed job* — never on a per-event or
//! per-probe path — so the hot paths of the service never contend.
//!
//! [`PipelineStats`]: clocksync::PipelineStats

use clocksync::{PipelineStats, StageTotals};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The service's monotonically increasing event counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Jobs admitted into the submission queue.
    Accepted,
    /// Submissions bounced because the queue was at capacity.
    RejectedQueueFull,
    /// Submissions bounced by the memory-budget admission check.
    RejectedOverBudget,
    /// Submissions bounced because the stream input was malformed in a way
    /// the header scan already proves fatal (mixed DTC2/DTC3 versions).
    RejectedMalformed,
    /// Jobs that finished successfully.
    Completed,
    /// Jobs that exhausted their retries (or failed terminally).
    Failed,
    /// Retry attempts (a job retried twice counts two).
    Retried,
    /// Jobs cancelled by their submitter.
    Cancelled,
    /// Jobs stopped because their deadline passed.
    DeadlineExceeded,
    /// Job attempts that panicked (caught; the job was isolated).
    JobPanics,
    /// Executor threads lost to an escaped panic. Stays 0 unless fault
    /// isolation itself failed — the CI smoke test asserts on it.
    ServiceCrashes,
    /// Network connections accepted (handshake completed).
    NetConnections,
    /// Connections refused at the handshake (bad token, bad magic,
    /// version mismatch, or a tenant over its connection quota).
    NetAuthFailures,
    /// Jobs submitted over the network that reached admission.
    NetJobs,
    /// Connections that ended with a protocol violation or a mid-job
    /// client disconnect (every admission charge they held was released).
    NetDisconnects,
    /// Queued jobs the router's balancer moved between nodes.
    RouterSteals,
}

impl Counter {
    /// Every counter, in export order.
    pub const ALL: [Counter; 16] = [
        Counter::Accepted,
        Counter::RejectedQueueFull,
        Counter::RejectedOverBudget,
        Counter::RejectedMalformed,
        Counter::Completed,
        Counter::Failed,
        Counter::Retried,
        Counter::Cancelled,
        Counter::DeadlineExceeded,
        Counter::JobPanics,
        Counter::ServiceCrashes,
        Counter::NetConnections,
        Counter::NetAuthFailures,
        Counter::NetJobs,
        Counter::NetDisconnects,
        Counter::RouterSteals,
    ];

    /// The exporter name of this counter.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Accepted => "syncd_jobs_accepted_total",
            Counter::RejectedQueueFull => "syncd_jobs_rejected_total{reason=\"queue_full\"}",
            Counter::RejectedOverBudget => "syncd_jobs_rejected_total{reason=\"over_budget\"}",
            Counter::RejectedMalformed => "syncd_jobs_rejected_total{reason=\"malformed\"}",
            Counter::Completed => "syncd_jobs_completed_total",
            Counter::Failed => "syncd_jobs_failed_total",
            Counter::Retried => "syncd_jobs_retried_total",
            Counter::Cancelled => "syncd_jobs_cancelled_total",
            Counter::DeadlineExceeded => "syncd_jobs_deadline_exceeded_total",
            Counter::JobPanics => "syncd_job_panics_total",
            Counter::ServiceCrashes => "syncd_service_crashes_total",
            Counter::NetConnections => "syncd_net_connections_total",
            Counter::NetAuthFailures => "syncd_net_auth_failures_total",
            Counter::NetJobs => "syncd_net_jobs_total",
            Counter::NetDisconnects => "syncd_net_disconnects_total",
            Counter::RouterSteals => "syncd_router_steals_total",
        }
    }

    fn index(self) -> usize {
        Counter::ALL
            .iter()
            .position(|c| *c == self)
            .expect("counter listed in ALL")
    }
}

/// Number of histogram buckets: bucket `i` counts observations in
/// `[2^(i-1), 2^i)` microseconds (bucket 0 is `< 1 µs`), so the top
/// bucket's lower bound is ~2^38 µs ≈ 3 days — far beyond any job.
const BUCKETS: usize = 40;

/// A log₂-bucketed latency histogram over atomic counters.
///
/// Quantile estimates resolve to the upper bound of the bucket holding
/// the requested rank — at worst a 2× overestimate, which is the right
/// bias for latency SLOs (never under-reports).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

fn bucket_of(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        (64 - us.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

impl Histogram {
    /// Record one duration.
    pub fn observe(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`], cheap to clone and query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observations in microseconds.
    pub sum_us: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0..=1.0`) in seconds: the upper bound of the
    /// bucket holding the `ceil(q * count)`-th observation. 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return (1u64 << i) as f64 / 1e6;
            }
        }
        (1u64 << (BUCKETS - 1)) as f64 / 1e6
    }

    /// Mean observation in seconds (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64 / 1e6
        }
    }
}

/// The live registry the service writes into. Shared as an `Arc`; every
/// mutator takes `&self`.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: [AtomicU64; Counter::ALL.len()],
    queue_depth: AtomicI64,
    running_jobs: AtomicI64,
    admitted_bytes: AtomicI64,
    job_latency: Histogram,
    queue_wait: Histogram,
    stages: Mutex<BTreeMap<&'static str, StageTotals>>,
}

impl MetricsRegistry {
    /// Fresh, all-zero registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increment `c` by one.
    pub fn inc(&self, c: Counter) {
        self.counters[c.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Increment `c` by `n`.
    pub fn add(&self, c: Counter, n: u64) {
        self.counters[c.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of `c`.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()].load(Ordering::Relaxed)
    }

    /// Adjust the queued-jobs gauge.
    pub fn queue_depth_add(&self, d: i64) {
        self.queue_depth.fetch_add(d, Ordering::Relaxed);
    }

    /// Adjust the running-jobs gauge.
    pub fn running_add(&self, d: i64) {
        self.running_jobs.fetch_add(d, Ordering::Relaxed);
    }

    /// Adjust the admitted-bytes gauge (the memory the admission
    /// controller currently accounts to queued + running jobs).
    pub fn admitted_bytes_add(&self, d: i64) {
        self.admitted_bytes.fetch_add(d, Ordering::Relaxed);
    }

    /// Record one finished job's end-to-end latency.
    pub fn observe_job_latency(&self, d: Duration) {
        self.job_latency.observe(d);
    }

    /// Record how long a job sat in the queue before an executor took it.
    pub fn observe_queue_wait(&self, d: Duration) {
        self.queue_wait.observe(d);
    }

    /// Fold one completed run's per-stage stats into the lifetime totals.
    pub fn fold_pipeline_stats(&self, stats: &PipelineStats) {
        let mut stages = self.stages.lock().unwrap_or_else(|e| e.into_inner());
        stats.fold_stage_totals(&mut stages);
    }

    /// A coherent, cloneable copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: std::array::from_fn(|i| self.counters[i].load(Ordering::Relaxed)),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            running_jobs: self.running_jobs.load(Ordering::Relaxed),
            admitted_bytes: self.admitted_bytes.load(Ordering::Relaxed),
            job_latency: self.job_latency.snapshot(),
            queue_wait: self.queue_wait.snapshot(),
            stages: self
                .stages
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
        }
    }
}

/// A point-in-time copy of the whole registry — cloneable, queryable, and
/// renderable as exporter text.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    counters: [u64; Counter::ALL.len()],
    /// Jobs currently queued.
    pub queue_depth: i64,
    /// Jobs currently executing.
    pub running_jobs: i64,
    /// Bytes the admission controller accounts to queued + running jobs.
    pub admitted_bytes: i64,
    /// End-to-end job latency (submission → completion).
    pub job_latency: HistogramSnapshot,
    /// Queue wait (submission → executor pickup).
    pub queue_wait: HistogramSnapshot,
    /// Lifetime per-stage totals folded from every completed job.
    pub stages: BTreeMap<&'static str, StageTotals>,
}

impl MetricsSnapshot {
    /// Value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Render every metric in the classic line-oriented exporter format
    /// (`name value`, quantiles and stages as labelled series).
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(1024);
        for c in Counter::ALL {
            let _ = writeln!(out, "{} {}", c.name(), self.counter(c));
        }
        let _ = writeln!(out, "syncd_queue_depth {}", self.queue_depth);
        let _ = writeln!(out, "syncd_jobs_running {}", self.running_jobs);
        let _ = writeln!(out, "syncd_admitted_bytes {}", self.admitted_bytes);
        for (name, h) in [
            ("syncd_job_latency_seconds", &self.job_latency),
            ("syncd_queue_wait_seconds", &self.queue_wait),
        ] {
            for q in [0.5, 0.9, 0.99] {
                let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {:.6}", h.quantile(q));
            }
            let _ = writeln!(out, "{name}_count {}", h.count);
            let _ = writeln!(out, "{name}_mean {:.6}", h.mean());
        }
        for (stage, t) in &self.stages {
            let _ = writeln!(
                out,
                "syncd_stage_events_per_sec{{stage=\"{stage}\"}} {:.0}",
                t.items_per_sec()
            );
            let _ = writeln!(
                out,
                "syncd_stage_items_total{{stage=\"{stage}\"}} {}",
                t.items
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_monotone_and_bounding() {
        let h = Histogram::default();
        for ms in [1u64, 2, 4, 8, 100] {
            h.observe(Duration::from_millis(ms));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
        // The bucket upper bound never under-reports: p99 >= true max.
        assert!(p99 >= 0.1, "p99 {p99} below the 100ms max observation");
        // And at most 2x over.
        assert!(p99 <= 0.21, "p99 {p99} more than 2x the max observation");
    }

    #[test]
    fn zero_and_huge_observations_stay_in_range() {
        let h = Histogram::default();
        h.observe(Duration::ZERO);
        h.observe(Duration::from_secs(1 << 30));
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert!(s.quantile(0.0) >= 0.0);
        assert!(s.quantile(1.0) > 0.0);
    }

    #[test]
    fn counters_and_gauges_round_trip_through_snapshot() {
        let m = MetricsRegistry::new();
        m.inc(Counter::Accepted);
        m.inc(Counter::Accepted);
        m.inc(Counter::Retried);
        m.queue_depth_add(3);
        m.queue_depth_add(-1);
        m.admitted_bytes_add(1024);
        let s = m.snapshot();
        assert_eq!(s.counter(Counter::Accepted), 2);
        assert_eq!(s.counter(Counter::Retried), 1);
        assert_eq!(s.counter(Counter::Failed), 0);
        assert_eq!(s.queue_depth, 2);
        assert_eq!(s.admitted_bytes, 1024);
    }

    #[test]
    fn exporter_text_carries_the_ci_asserted_series() {
        let m = MetricsRegistry::new();
        m.inc(Counter::Retried);
        let text = m.snapshot().render_text();
        assert!(text.contains("syncd_jobs_retried_total 1"));
        assert!(text.contains("syncd_service_crashes_total 0"));
        assert!(text.contains("syncd_job_latency_seconds{quantile=\"0.99\"}"));
    }
}
