//! # syncd — a multi-tenant trace-synchronization service
//!
//! Everything below this crate is a *library*: you hand
//! [`clocksync::synchronize`] one trace and get one corrected trace back.
//! `syncd` turns that library into a long-running **service** that many
//! tenants share:
//!
//! * **Admission control** — submissions pass a bounded queue and a
//!   memory budget before anything is decoded. A streamed DTC2 job's cost
//!   is estimated from its block headers alone
//!   ([`tracefmt::io::estimate_columnar_stream`]), so an over-budget
//!   stream is bounced in microseconds without allocating for it.
//! * **Scheduling** — three strict [`Priority`] classes, FIFO within a
//!   class, dispatched to a fixed pool of executor threads. Each job's
//!   requested pipeline worker count is clamped to its fair share of the
//!   pool (`pool_workers / executors`), so a saturated service never
//!   oversubscribes the machine — and since the pipeline is bit-identical
//!   for every worker count, the clamp never changes results.
//! * **Fault isolation** — every attempt runs under `catch_unwind`; a
//!   poisoned input fails *typed* ([`JobError`]), is retried with
//!   exponential backoff up to a budget, and cannot take down an executor
//!   or another tenant's job. [`FaultInjector`] produces such inputs
//!   deterministically for tests.
//! * **Cancellation and deadlines** — cooperative, via the pipeline's
//!   [`clocksync::CancelToken`]: [`JobHandle::cancel`] or an expired
//!   per-job deadline stops the run at its next stage or chunk boundary.
//! * **Metrics** — a lock-cheap [`MetricsRegistry`] (atomic counters and
//!   gauges, log₂ latency histograms, per-stage throughput folded from
//!   every job's [`clocksync::PipelineStats`]) exported as a cloneable
//!   [`MetricsSnapshot`] or classic exporter text.
//!
//! The service adds *no* arithmetic of its own: a job's corrected trace
//! is bit-identical to calling the pipeline directly with the same
//! configuration (the differential suite in `tests/syncd_differential.rs`
//! pins this).
//!
//! ```
//! use std::sync::Arc;
//! use syncd::{JobInput, JobSpec, SyncService};
//! use tracefmt::UniformLatency;
//! use simclock::Dur;
//!
//! let service = SyncService::start_default();
//! let trace = tracefmt::Trace::for_ranks(2);
//! // An empty trace with no offset measurements: run the censuses only.
//! let cfg = clocksync::PipelineConfig {
//!     presync: clocksync::PreSync::None,
//!     clc: None,
//!     ..clocksync::PipelineConfig::default()
//! };
//! let spec = JobSpec::new(
//!     JobInput::Trace(trace),
//!     vec![None, None],
//!     None,
//!     Arc::new(UniformLatency(Dur::from_us(1))),
//!     cfg,
//! );
//! let handle = service.submit(spec).unwrap();
//! let outcome = handle.wait();
//! assert!(outcome.is_ok());
//! service.shutdown();
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod fault;
pub mod job;
pub mod metrics;
pub mod net;
pub mod router;
pub mod runtime;
pub mod service;
pub mod step;

pub use admission::{estimate_job_cost, JobCost};
pub use fault::{chunked, Fault, FaultInjector};
pub use job::{
    JobError, JobFailure, JobHandle, JobId, JobInput, JobOutcome, JobSpec, JobSuccess,
    Priority, SubmitError,
};
pub use metrics::{Counter, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use net::{
    NetServer, NetServerConfig, ReadOutcome, ScriptedTransport, TcpTransport, TenantConfig,
    Transport,
};
pub use router::{JobRouter, RouterConfig};
pub use runtime::{AttemptProbe, RealRuntime, Runtime};
pub use service::{ServiceConfig, SyncService};
pub use step::{StepEvent, StepService};
