//! The service's clock-and-scheduling seam.
//!
//! Every place the service touches *time* — stamping a submission,
//! checking a deadline, sleeping out a retry backoff — goes through a
//! [`Runtime`] instead of `std::time` directly. Production uses
//! [`RealRuntime`] (a monotonic `Instant` epoch and real `thread::sleep`);
//! the deterministic simulation harness substitutes a virtual clock so
//! deadlines and backoff timers advance only on simulated ticks. The seam
//! is two virtual calls on paths that are already milliseconds long, so it
//! costs nothing in production — `BENCH_syncd.json` gates on that.
//!
//! The second half of the seam is the [`AttemptProbe`]: an extra
//! cancellation source threaded into the pipeline's
//! [`CancelToken`](clocksync::CancelToken) for one attempt. The pipeline
//! polls its token at every cooperative checkpoint (stage boundaries,
//! stream chunks), so each poll is a *yield point* where a simulation can
//! deterministically inject a cancellation, a worker crash (by panicking —
//! the service's `catch_unwind` isolation must contain it), or a virtual
//! clock jump. Production never installs a probe.

use std::time::{Duration, Instant};

/// One extra cancellation source for a single job attempt, polled at every
/// pipeline checkpoint. Return `true` to cancel the attempt there; panic
/// to simulate a worker crash at that yield point.
pub type AttemptProbe = clocksync::CancelProbe;

/// The clock the service schedules against. All instants are [`Duration`]s
/// since the runtime's own epoch, so implementations are free to run on
/// wall-clock time or on simulated ticks.
pub trait Runtime: Send + Sync + 'static {
    /// Monotonic time since the runtime's epoch.
    fn now(&self) -> Duration;
    /// Block the calling executor for `d` (retry backoff). Simulated
    /// runtimes advance their virtual clock instead of blocking.
    fn sleep(&self, d: Duration);
}

/// The production runtime: a monotonic [`Instant`] epoch and real sleeps.
#[derive(Debug)]
pub struct RealRuntime {
    epoch: Instant,
}

impl RealRuntime {
    /// A runtime whose epoch is now.
    pub fn new() -> Self {
        RealRuntime {
            epoch: Instant::now(),
        }
    }
}

impl Default for RealRuntime {
    fn default() -> Self {
        RealRuntime::new()
    }
}

impl Runtime for RealRuntime {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_runtime_is_monotonic() {
        let rt = RealRuntime::new();
        let a = rt.now();
        let b = rt.now();
        assert!(b >= a);
    }

    #[test]
    fn real_runtime_sleep_advances_now() {
        let rt = RealRuntime::new();
        let a = rt.now();
        rt.sleep(Duration::from_millis(2));
        assert!(rt.now() >= a + Duration::from_millis(2));
    }
}
