//! Job descriptions, outcomes, and the handle a submitter polls.

use clocksync::{OffsetMeasurement, PipelineConfig, PipelineError, PipelineReport};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use tracefmt::{MinLatency, Trace};

/// Opaque job identifier, unique within one service instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Scheduling class. Strict priority between classes, FIFO within one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Dispatched before everything else.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Dispatched only when no higher class has work.
    Low,
}

impl Priority {
    /// Number of classes.
    pub const COUNT: usize = 3;
    /// Every class, highest first (dispatch order).
    pub const ALL: [Priority; Priority::COUNT] =
        [Priority::High, Priority::Normal, Priority::Low];

    /// Dense index, highest class first.
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// What the job synchronizes: an in-memory trace, or a DTC2 byte stream
/// fed to the streaming ingest path.
#[derive(Clone)]
pub enum JobInput {
    /// An already-decoded trace (cloned per attempt so retries start from
    /// the raw timestamps).
    Trace(Trace),
    /// DTC2 chunks, exactly as they would arrive from a socket or file
    /// reader. The service estimates its memory cost from the block
    /// headers alone before admitting the job.
    Stream(Vec<Vec<u8>>),
    /// DTC2/DTC3 chunks run through the incremental windowed engine
    /// ([`clocksync::synchronize_stream_incremental`]): corrected
    /// timestamps come back as re-encoded stream frames in
    /// [`JobSuccess::frames`] instead of a decoded [`Trace`], and the
    /// engine keeps only O(`window_events`) timestamp columns resident.
    StreamIncremental {
        /// The input stream, chunked as it arrived.
        chunks: Vec<Vec<u8>>,
        /// Forward-pass burst and lane-segment width, in events. Must be
        /// at least 1 or the attempt fails typed.
        window_events: usize,
    },
}

impl JobInput {
    /// A short human label for logs and errors.
    pub fn kind(&self) -> &'static str {
        match self {
            JobInput::Trace(_) => "trace",
            JobInput::Stream(_) => "stream",
            JobInput::StreamIncremental { .. } => "stream-incremental",
        }
    }
}

/// Where a [`JobInput::StreamIncremental`] job's corrected chunks go
/// *while the job runs*: `sink(index, chunk)` with dense indices from 0
/// (the magic chunk) through the trailer. The chunk sequence is
/// deterministic for a given input, so after a transparent retry the sink
/// sees the same chunks at the same indices again and can skip everything
/// below its high-water mark. Returning `false` cancels the attempt (the
/// network server uses this as the stalled-reader cutoff).
pub type FrameSink = Arc<dyn Fn(u64, &[u8]) -> bool + Send + Sync>;

/// Everything the service needs to run one synchronization job.
///
/// `Clone` is cheap for the shared parts (`lmin` is an `Arc`) but deep for
/// the input; the simulation harness relies on it to run the *identical*
/// input through a direct pipeline call when checking bit-identity.
#[derive(Clone)]
pub struct JobSpec {
    /// The trace (in-memory or streamed bytes).
    pub input: JobInput,
    /// Init offset measurements, one per process.
    pub init: Vec<Option<OffsetMeasurement>>,
    /// Finalize offset measurements (None = align-only interpolation data).
    pub fin: Option<Vec<Option<OffsetMeasurement>>>,
    /// Minimum-latency model for violation checks and the CLC.
    pub lmin: Arc<dyn MinLatency + Send + Sync>,
    /// Pipeline configuration. A requested worker count is *clamped* to
    /// the job's fair share of the service pool, never raised.
    pub pipeline: PipelineConfig,
    /// Scheduling class.
    pub priority: Priority,
    /// Per-job deadline measured from submission (None = service default).
    pub deadline: Option<Duration>,
    /// Retry budget override (None = service default).
    pub max_retries: Option<u32>,
    /// Streaming output sink for a [`JobInput::StreamIncremental`] job
    /// (None = corrected chunks accumulate in [`JobSuccess::frames`]).
    /// Ignored by the other job modes.
    pub frame_sink: Option<FrameSink>,
}

impl JobSpec {
    /// A spec with default priority/deadline/retries.
    pub fn new(
        input: JobInput,
        init: Vec<Option<OffsetMeasurement>>,
        fin: Option<Vec<Option<OffsetMeasurement>>>,
        lmin: Arc<dyn MinLatency + Send + Sync>,
        pipeline: PipelineConfig,
    ) -> Self {
        JobSpec {
            input,
            init,
            fin,
            lmin,
            pipeline,
            priority: Priority::default(),
            deadline: None,
            max_retries: None,
            frame_sink: None,
        }
    }

    /// Set the scheduling class.
    pub fn with_priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Set a per-job deadline from submission time.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Override the retry budget.
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = Some(n);
        self
    }

    /// Stream an incremental job's corrected chunks through `sink` while
    /// the job runs instead of accumulating them in the success payload.
    pub fn with_frame_sink(mut self, sink: FrameSink) -> Self {
        self.frame_sink = Some(sink);
        self
    }
}

/// Why a submission was refused at the door (the job never entered the
/// queue; nothing to wait on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded submission queue is full.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// Admitting the job would exceed the service memory budget.
    OverBudget {
        /// Estimated working-set bytes of the rejected job.
        estimated: u64,
        /// Budget headroom at the time of the attempt.
        available: u64,
    },
    /// The admission header scan proved the stream input can never decode
    /// (e.g. a `DTC3` stream concatenated after a `DTC2` trailer). The
    /// typed codec error says what is wrong with the bytes; the job is
    /// refused instead of admitted to fail through its whole retry budget.
    MalformedStream(tracefmt::io::CodecError),
    /// The service is shutting down.
    Shutdown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            SubmitError::OverBudget {
                estimated,
                available,
            } => write!(
                f,
                "job needs ~{estimated} bytes but only {available} of the memory budget is free"
            ),
            SubmitError::MalformedStream(e) => write!(f, "stream input refused: {e}"),
            SubmitError::Shutdown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a job (all attempts included) failed.
#[derive(Debug, Clone)]
pub enum JobError {
    /// The pipeline returned a typed error on the final attempt.
    Pipeline(PipelineError),
    /// The final attempt panicked; the payload's message, if any.
    Panicked(String),
    /// The submitter cancelled the job.
    Cancelled,
    /// The job's deadline passed (queued or mid-run).
    DeadlineExceeded,
    /// The service shut down before the job ran.
    Shutdown,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Pipeline(e) => write!(f, "pipeline error: {e}"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::Cancelled => write!(f, "job cancelled"),
            JobError::DeadlineExceeded => write!(f, "job deadline exceeded"),
            JobError::Shutdown => write!(f, "service shut down before the job ran"),
        }
    }
}

impl std::error::Error for JobError {}

/// A finished job's payload.
#[derive(Debug, Clone)]
pub struct JobSuccess {
    /// The synchronized trace. Empty for a
    /// [`JobInput::StreamIncremental`] job, whose corrected output is
    /// [`frames`](Self::frames) — the whole point of that mode is that the
    /// trace is never materialized in memory.
    pub trace: Trace,
    /// The pipeline's violation censuses and stats. For an incremental
    /// job the censuses are empty placeholders (that engine skips them);
    /// the stats — including the true `peak_resident_column_bytes`
    /// high-water mark — are real.
    pub report: PipelineReport,
    /// Corrected-stream frames from a [`JobInput::StreamIncremental`]
    /// job: concatenated, they are a well-formed `DTC2`/`DTC3` stream.
    /// Empty for the other job modes.
    pub frames: Vec<Vec<u8>>,
    /// Attempts it took (1 = no retry).
    pub attempts: u32,
    /// Time spent queued before the first attempt.
    pub queue_wait: Duration,
    /// Wall-clock of the successful attempt.
    pub run_time: Duration,
}

/// A failed job's post-mortem.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// The terminal error.
    pub error: JobError,
    /// Attempts made before giving up.
    pub attempts: u32,
}

/// What `JobHandle::wait` returns.
pub type JobOutcome = Result<JobSuccess, JobFailure>;

/// Shared per-job state between the submitter's handle and the executor.
pub(crate) struct JobState {
    pub(crate) id: JobId,
    /// Shared with the pipeline's [`CancelToken`](clocksync::CancelToken),
    /// hence its own `Arc` rather than living inline.
    pub(crate) cancel: Arc<AtomicBool>,
    pub(crate) done: Mutex<Option<JobOutcome>>,
    pub(crate) cv: Condvar,
}

impl JobState {
    pub(crate) fn new(id: JobId) -> Self {
        JobState {
            id,
            cancel: Arc::new(AtomicBool::new(false)),
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn finish(&self, outcome: JobOutcome) {
        let mut slot = self.done.lock().unwrap_or_else(|e| e.into_inner());
        // First writer wins: an executor result never overwrites the
        // shutdown/cancel outcome already delivered (and vice versa).
        if slot.is_none() {
            *slot = Some(outcome);
        }
        self.cv.notify_all();
    }
}

/// The submitter's side of a job: cancel it, or block for its outcome.
pub struct JobHandle {
    pub(crate) state: Arc<JobState>,
}

impl JobHandle {
    /// The job's id.
    pub fn id(&self) -> JobId {
        self.state.id
    }

    /// Request cooperative cancellation. The pipeline stops at its next
    /// stage or chunk checkpoint; `wait` then reports
    /// [`JobError::Cancelled`]. Idempotent; a job that already finished is
    /// unaffected.
    pub fn cancel(&self) {
        self.state.cancel.store(true, Ordering::Relaxed);
    }

    /// A shareable cancellation trigger: calling the returned closure is
    /// equivalent to [`JobHandle::cancel`]. Lets a fault injector (or a
    /// pipeline checkpoint probe) cancel the job without holding the
    /// handle itself.
    pub fn canceller(&self) -> Arc<dyn Fn() + Send + Sync> {
        let flag = Arc::clone(&self.state.cancel);
        Arc::new(move || flag.store(true, Ordering::Relaxed))
    }

    /// Whether the outcome is already available (non-blocking).
    pub fn is_done(&self) -> bool {
        self.state
            .done
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }

    /// A copy of the outcome if the job already finished (non-blocking,
    /// non-consuming — unlike [`JobHandle::wait`], the outcome stays
    /// available). The simulation harness polls this at quiescence to
    /// assert every submitted job was resolved.
    pub fn peek(&self) -> Option<JobOutcome> {
        self.state
            .done
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Block until the job finishes or `timeout` passes, whichever is
    /// first; returns whether the outcome is available. Wakes on the
    /// executor's completion notify, so a finishing job is observed in
    /// microseconds rather than a poll interval — the network layer's
    /// result loop leans on this to keep job completion off any polling
    /// cadence.
    pub fn wait_for(&self, timeout: std::time::Duration) -> bool {
        let slot = self.state.done.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_some() {
            return true;
        }
        let (slot, _timed_out) = self
            .state
            .cv
            .wait_timeout(slot, timeout)
            .unwrap_or_else(|e| e.into_inner());
        slot.is_some()
    }

    /// Block until the job finishes and take its outcome.
    pub fn wait(self) -> JobOutcome {
        let mut slot = self.state.done.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self
                .state
                .cv
                .wait(slot)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_indices_are_dense_and_ordered() {
        for (i, p) in Priority::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert!(Priority::High.index() < Priority::Normal.index());
        assert!(Priority::Normal.index() < Priority::Low.index());
    }

    #[test]
    fn finish_is_first_writer_wins_and_wait_takes_it() {
        let state = Arc::new(JobState::new(JobId(7)));
        state.finish(Err(JobFailure {
            error: JobError::Cancelled,
            attempts: 0,
        }));
        state.finish(Err(JobFailure {
            error: JobError::Shutdown,
            attempts: 0,
        }));
        let handle = JobHandle {
            state: Arc::clone(&state),
        };
        assert!(handle.is_done());
        match handle.wait() {
            Err(f) => assert!(matches!(f.error, JobError::Cancelled)),
            Ok(_) => panic!("expected failure"),
        }
    }
}
