//! The simulated processor clock.
//!
//! A [`SimClock`] maps simulated *true time* to the local reading a tracing
//! library would obtain on that processor: initial offset + drift integral +
//! measurement noise, floored to the timer resolution and clamped to be
//! monotone (hardware counters never run backwards; tracers additionally
//! enforce monotonicity on software clocks).
//!
//! The paper's clock taxonomy (§II) is mirrored by [`TimerKind`]:
//! cycle counters, hardware timestamp counters (Intel TSC, IBM TB, IBM RTC),
//! software clocks (`gettimeofday()`, `MPI_Wtime()`).

use crate::drift::{ConstantDrift, DriftModel};
use crate::noise::{NoiseSpec, ReadNoise};
use crate::time::{Dur, Time};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The timer technologies examined in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimerKind {
    /// CPU cycle counter incremented per core clock tick; step size varies
    /// with power management, useful only within one chip.
    CycleCounter,
    /// Intel timestamp counter register (TSC): 64-bit hardware clock with a
    /// separate oscillator, approximately constant drift.
    IntelTsc,
    /// IBM time base register (TB): 64-bit tick counter since reset.
    IbmTimeBase,
    /// IBM real-time clock (RTC): counts seconds and nanoseconds.
    IbmRtc,
    /// `gettimeofday()`: OS system clock, µs resolution, usually
    /// NTP-disciplined.
    Gettimeofday,
    /// `MPI_Wtime()`: software clock; Open MPI's default maps it to
    /// `gettimeofday()`.
    MpiWtime,
}

impl TimerKind {
    /// Whether the timer is a hardware clock in the paper's sense
    /// (separate oscillator, no OS/NTP steering).
    pub fn is_hardware(self) -> bool {
        matches!(
            self,
            TimerKind::IntelTsc | TimerKind::IbmTimeBase | TimerKind::IbmRtc
        )
    }

    /// Human-readable name used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            TimerKind::CycleCounter => "cycle counter",
            TimerKind::IntelTsc => "Intel TSC",
            TimerKind::IbmTimeBase => "IBM time base",
            TimerKind::IbmRtc => "IBM RTC",
            TimerKind::Gettimeofday => "gettimeofday()",
            TimerKind::MpiWtime => "MPI_Wtime()",
        }
    }
}

impl fmt::Display for TimerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A processor-local clock in the simulation.
///
/// Reads are a pure function of true time plus a private noise stream and a
/// monotonicity clamp; two clocks never share state, matching the paper's
/// "local accessibility" scenario on commodity clusters.
pub struct SimClock {
    kind: TimerKind,
    /// Offset of the local axis at true time 0.
    offset0: Dur,
    drift: Arc<dyn DriftModel>,
    noise: ReadNoise,
    /// Last value handed out, for the monotonicity clamp.
    last: Option<Time>,
}

impl fmt::Debug for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimClock")
            .field("kind", &self.kind)
            .field("offset0", &self.offset0)
            .finish_non_exhaustive()
    }
}

impl SimClock {
    /// Assemble a clock from its physical ingredients.
    pub fn new(
        kind: TimerKind,
        offset0: Dur,
        drift: Arc<dyn DriftModel>,
        noise_spec: NoiseSpec,
        noise_seed: u64,
    ) -> Self {
        SimClock {
            kind,
            offset0,
            drift,
            noise: ReadNoise::new(noise_spec, noise_seed),
            last: None,
        }
    }

    /// A perfect clock: no offset, no drift, no noise. The simulated
    /// equivalent of Blue Gene's globally accessible hardware clock.
    pub fn ideal() -> Self {
        SimClock::new(
            TimerKind::IntelTsc,
            Dur::ZERO,
            Arc::new(ConstantDrift::zero()),
            NoiseSpec::noiseless(),
            0,
        )
    }

    /// The timer technology this clock models.
    pub fn kind(&self) -> TimerKind {
        self.kind
    }

    /// Initial offset at true time zero.
    pub fn offset0(&self) -> Dur {
        self.offset0
    }

    /// Cost of one read in true time (intrusion overhead).
    pub fn read_overhead(&self) -> Dur {
        self.noise.spec().read_overhead
    }

    /// The noiseless local time at true time `t` — offset plus drift
    /// integral. This is the mathematical clock function `L(t)` used by the
    /// deviation experiments; it ignores resolution and jitter.
    pub fn ideal_at(&self, t: Time) -> Time {
        t + self.offset0 + Dur::from_secs_f64(self.drift.integrated(t))
    }

    /// Instantaneous rate error at `t`.
    pub fn rate_at(&self, t: Time) -> f64 {
        self.drift.rate_at(t)
    }

    /// Take a reading at true time `t`, with noise, resolution and the
    /// monotonicity clamp applied. This is what a *single* reader (one
    /// tracer stream) sees.
    pub fn read(&mut self, t: Time) -> Time {
        let raw = self.sample(t);
        let out = match self.last {
            Some(last) => raw.max(last),
            None => raw,
        };
        self.last = Some(out);
        out
    }

    /// Take a reading with noise and resolution but **no** monotonicity
    /// clamp. Use this when several readers (e.g. the ranks sharing a chip
    /// clock) query the clock out of true-time order; each reader must then
    /// clamp its own stream, as real tracing libraries do.
    pub fn sample(&mut self, t: Time) -> Time {
        self.noise.sample(self.ideal_at(t))
    }

    /// Drop the monotonicity state (e.g. between independent experiment
    /// repetitions on the same clock object).
    pub fn reset_monotonicity(&mut self) {
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::{ConstantDrift, PiecewiseLinearDrift};

    #[test]
    fn ideal_clock_reads_true_time() {
        let mut c = SimClock::ideal();
        for i in 0..10 {
            let t = Time::from_ms(i * 7);
            assert_eq!(c.read(t), t);
            assert_eq!(c.ideal_at(t), t);
        }
    }

    #[test]
    fn offset_and_drift_compose() {
        let c = SimClock::new(
            TimerKind::IntelTsc,
            Dur::from_us(100),
            Arc::new(ConstantDrift::new(1e-6)),
            NoiseSpec::noiseless(),
            0,
        );
        // After 10 s: +100 µs offset, +10 µs drift.
        let t = Time::from_secs(10);
        assert_eq!(c.ideal_at(t), t + Dur::from_us(110));
    }

    #[test]
    fn reads_are_monotone_even_with_noise() {
        let spec = NoiseSpec {
            base_sigma: Dur::from_us(2),
            ..NoiseSpec::noiseless()
        };
        let mut c = SimClock::new(
            TimerKind::Gettimeofday,
            Dur::ZERO,
            Arc::new(ConstantDrift::zero()),
            spec,
            17,
        );
        let mut prev = Time::MIN;
        for i in 0..5000 {
            let r = c.read(Time::from_ns(i * 10));
            assert!(r >= prev, "clock ran backwards at read {i}");
            prev = r;
        }
    }

    #[test]
    fn negative_drift_makes_clock_fall_behind() {
        let c = SimClock::new(
            TimerKind::IbmTimeBase,
            Dur::ZERO,
            Arc::new(ConstantDrift::new(-2e-6)),
            NoiseSpec::noiseless(),
            0,
        );
        let t = Time::from_secs(100);
        assert_eq!(c.ideal_at(t), t - Dur::from_us(200));
    }

    #[test]
    fn ntp_style_kink_shows_in_ideal_readings() {
        // Piecewise-constant drift: 1 ppm for 100 s, then 4 ppm.
        let d = PiecewiseLinearDrift::piecewise_constant(vec![
            (Time::ZERO, 1e-6),
            (Time::from_secs(100), 4e-6),
        ]);
        let c = SimClock::new(
            TimerKind::MpiWtime,
            Dur::ZERO,
            Arc::new(d),
            NoiseSpec::noiseless(),
            0,
        );
        let dev100 = c.ideal_at(Time::from_secs(100)) - Time::from_secs(100);
        let dev200 = c.ideal_at(Time::from_secs(200)) - Time::from_secs(200);
        assert_eq!(dev100, Dur::from_us(100));
        assert_eq!(dev200, Dur::from_us(500)); // 100 + 400
    }

    #[test]
    fn timer_taxonomy() {
        assert!(TimerKind::IntelTsc.is_hardware());
        assert!(TimerKind::IbmTimeBase.is_hardware());
        assert!(TimerKind::IbmRtc.is_hardware());
        assert!(!TimerKind::Gettimeofday.is_hardware());
        assert!(!TimerKind::MpiWtime.is_hardware());
        assert!(!TimerKind::CycleCounter.is_hardware());
        assert_eq!(TimerKind::IntelTsc.label(), "Intel TSC");
    }

    #[test]
    fn sample_is_unclamped() {
        let mut c = SimClock::ideal();
        assert_eq!(c.read(Time::from_secs(5)), Time::from_secs(5));
        // `sample` may legitimately return an earlier value.
        assert_eq!(c.sample(Time::from_secs(1)), Time::from_secs(1));
        // And it does not disturb the clamp state of `read`.
        assert_eq!(c.read(Time::from_secs(2)), Time::from_secs(5));
    }

    #[test]
    fn reset_monotonicity_allows_lower_reads() {
        let mut c = SimClock::ideal();
        let hi = c.read(Time::from_secs(5));
        assert_eq!(hi, Time::from_secs(5));
        // Without reset, an earlier query clamps up.
        assert_eq!(c.read(Time::from_secs(1)), Time::from_secs(5));
        c.reset_monotonicity();
        assert_eq!(c.read(Time::from_secs(1)), Time::from_secs(1));
    }
}
