//! # simclock — clock physics for the drift-lab cluster simulator
//!
//! This crate models everything the CLUSTER 2008 paper *"Implications of
//! non-constant clock drifts for the timestamps of concurrent events"*
//! (Becker, Rabenseifner, Wolf) says about processor clocks:
//!
//! * fixed-point [`Time`]/[`Dur`] arithmetic shared by the whole workspace,
//! * [`drift`] models — constant, piecewise-linear, thermal sinusoid,
//!   random-walk wander, and compositions thereof,
//! * an [`ntp`] discipline whose slew adjustments produce the abrupt
//!   "turning points" of the paper's Fig. 4,
//! * per-read measurement [`noise`] (resolution, OS jitter, read overhead),
//! * the [`SimClock`] itself and hierarchical [`ensemble`]s of clocks over a
//!   [`MachineShape`],
//! * [`platform`] profiles with parameters tuned to reproduce the paper's
//!   Xeon, PowerPC, Opteron and Itanium measurements.
//!
//! ```
//! use simclock::{Platform, TimerKind, ClockDomain, ClockEnsemble, Time};
//!
//! let shape = Platform::XeonCluster.shape(4);
//! let profile = Platform::XeonCluster.clock_profile(TimerKind::IntelTsc, 300.0);
//! let mut clocks = ClockEnsemble::build(shape, ClockDomain::PerChip, &profile, 42);
//! let reading = clocks.read(shape.core(0, 0, 0), Time::from_secs(10));
//! assert!(reading > Time::ZERO || reading <= Time::ZERO); // some local time
//! ```

#![warn(missing_docs)]

pub mod aging;
pub mod clock;
pub mod drift;
pub mod ensemble;
pub mod noise;
pub mod ntp;
pub mod platform;
pub mod stability;
pub mod time;
pub mod virt;

pub use aging::{AgingDrift, SteppedClock};
pub use clock::{SimClock, TimerKind};
pub use drift::{
    gaussian, CompositeDrift, ConstantDrift, DriftModel, PiecewiseLinearDrift, RandomWalkDrift,
    SinusoidalDrift,
};
pub use ensemble::{ClockDomain, ClockEnsemble, CoreId, Locality, MachineShape};
pub use noise::{NoiseSpec, ReadNoise};
pub use ntp::NtpDiscipline;
pub use platform::{ClockProfile, Platform};
pub use stability::{adev_curve, allan_deviation, sample_phase};
pub use time::{Dur, Time};
pub use virt::VirtualClock;
