//! Clock-stability metrics: Allan deviation.
//!
//! The Allan variance is the standard way to characterise oscillator
//! stability across averaging intervals τ — exactly the quantity that
//! decides whether a timer's drift can be treated as constant over a run
//! (paper §II/§IV). Different noise types leave distinct signatures:
//! white rate noise falls as `τ^-1/2`, a rate random walk *grows* as
//! `τ^1/2`, and a constant drift alone yields zero Allan deviation.
//! [`allan_deviation`] computes the non-overlapping estimator from evenly
//! sampled clock readings, so simulated clocks can be characterised with
//! the same tooling metrologists use for real ones.

use crate::clock::SimClock;
use crate::time::{Dur, Time};

/// Non-overlapping Allan deviation of fractional frequency, estimated from
/// phase samples `x[k]` (clock offset in seconds) taken every `tau0_s`
/// seconds, at averaging factor `m` (τ = m·τ0):
///
/// `AVAR(τ) = 1/(2(N−2m)) · Σ (x[k+2m] − 2x[k+m] + x[k])² / τ²`
///
/// Returns `None` when fewer than `2m + 1` samples are available.
///
/// ```
/// use simclock::allan_deviation;
///
/// // A perfectly linear phase (constant drift) is perfectly stable.
/// let phase: Vec<f64> = (0..32).map(|k| 1e-6 * k as f64).collect();
/// assert!(allan_deviation(&phase, 1.0, 4).unwrap() < 1e-18);
/// ```
pub fn allan_deviation(phase_s: &[f64], tau0_s: f64, m: usize) -> Option<f64> {
    if m == 0 || phase_s.len() < 2 * m + 1 || tau0_s <= 0.0 {
        return None;
    }
    let tau = m as f64 * tau0_s;
    let n_terms = phase_s.len() - 2 * m;
    let mut acc = 0.0;
    for k in 0..n_terms {
        let d = phase_s[k + 2 * m] - 2.0 * phase_s[k + m] + phase_s[k];
        acc += d * d;
    }
    Some((acc / (2.0 * n_terms as f64 * tau * tau)).sqrt())
}

/// Sample a clock's phase (offset against true time, seconds) every
/// `tau0` over `n` samples, using noiseless readings.
pub fn sample_phase(clock: &SimClock, tau0: Dur, n: usize) -> Vec<f64> {
    (0..n)
        .map(|k| {
            let t = Time::ZERO + tau0 * k as i64;
            (clock.ideal_at(t) - t).as_secs_f64()
        })
        .collect()
}

/// Allan-deviation curve of a clock at octave-spaced averaging factors.
/// Returns `(tau_s, adev)` pairs.
pub fn adev_curve(clock: &SimClock, tau0: Dur, n_samples: usize) -> Vec<(f64, f64)> {
    let phase = sample_phase(clock, tau0, n_samples);
    let mut out = Vec::new();
    let mut m = 1usize;
    while 2 * m < n_samples {
        if let Some(adev) = allan_deviation(&phase, tau0.as_secs_f64(), m) {
            out.push((m as f64 * tau0.as_secs_f64(), adev));
        }
        m *= 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TimerKind;
    use crate::drift::{ConstantDrift, RandomWalkDrift};
    use crate::noise::NoiseSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn clock_with(drift: Arc<dyn crate::drift::DriftModel>) -> SimClock {
        SimClock::new(TimerKind::IntelTsc, Dur::ZERO, drift, NoiseSpec::noiseless(), 0)
    }

    #[test]
    fn constant_drift_has_zero_allan_deviation() {
        // A perfectly constant rate is perfectly stable: second differences
        // of a linear phase vanish.
        let c = clock_with(Arc::new(ConstantDrift::new(5e-6)));
        let curve = adev_curve(&c, Dur::from_secs(1), 128);
        for (tau, adev) in curve {
            assert!(
                adev < 1e-15,
                "constant drift should be invisible to ADEV at tau={tau}: {adev}"
            );
        }
    }

    #[test]
    fn random_walk_adev_grows_with_tau() {
        // Rate random walk: ADEV ∝ τ^{1/2} — the curve must grow.
        let mut rng = StdRng::seed_from_u64(3);
        let d = RandomWalkDrift::generate(&mut rng, 1e-9, 1.0, 3000.0);
        let c = clock_with(Arc::new(d));
        let curve = adev_curve(&c, Dur::from_secs(1), 2048);
        assert!(curve.len() >= 6);
        let first = curve[1].1;
        let last = curve[curve.len() - 1].1;
        assert!(
            last > 2.0 * first,
            "rate random walk should grow with tau: {first} -> {last}"
        );
    }

    #[test]
    fn estimator_matches_hand_computation() {
        // Phase samples with a known second difference.
        let phase = vec![0.0, 0.0, 1.0, 0.0, 0.0];
        // m=1, tau0=1: terms (x2-2x1+x0)=1, (x3-2x2+x1)=-2, (x4-2x3+x2)=1
        // → avar = (1+4+1)/(2·3·1) = 1.0 → adev 1.0.
        let adev = allan_deviation(&phase, 1.0, 1).unwrap();
        assert!((adev - 1.0).abs() < 1e-12, "{adev}");
    }

    #[test]
    fn too_few_samples_is_none() {
        assert!(allan_deviation(&[0.0, 1.0], 1.0, 1).is_none());
        assert!(allan_deviation(&[0.0; 10], 1.0, 0).is_none());
        assert!(allan_deviation(&[0.0; 10], 0.0, 1).is_none());
        assert!(allan_deviation(&[0.0; 10], 1.0, 5).is_none());
    }

    #[test]
    fn platform_tsc_is_more_stable_than_ntp_clock() {
        use crate::platform::Platform;
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let tsc_profile = Platform::XeonCluster.clock_profile(TimerKind::IntelTsc, 1200.0);
        let tsc = tsc_profile.build_clock(&mut rng, 0.0, 1.5e-6);
        let gtod_profile =
            Platform::XeonCluster.clock_profile(TimerKind::Gettimeofday, 1200.0);
        let gtod = gtod_profile.build_clock(&mut rng, 0.0, 1.5e-6);
        // Compare ADEV at tau = 64 s.
        let p_tsc = sample_phase(&tsc, Dur::from_secs(1), 1024);
        let p_gtod = sample_phase(&gtod, Dur::from_secs(1), 1024);
        let a_tsc = allan_deviation(&p_tsc, 1.0, 64).unwrap();
        let a_gtod = allan_deviation(&p_gtod, 1.0, 64).unwrap();
        assert!(
            a_gtod > 3.0 * a_tsc,
            "NTP-steered clock should be far less stable: TSC {a_tsc:.2e} vs gettimeofday {a_gtod:.2e}"
        );
    }
}
