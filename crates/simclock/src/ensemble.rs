//! Machine shape and per-core clock ensembles.
//!
//! Clusters have a hierarchy — nodes contain chips contain cores — and the
//! paper stresses that clock-synchronisation quality differs at every level
//! (§II: "it cannot be assumed that processor-local clocks within the same
//! SMP node are perfectly synchronized, as individual chips may provide
//! their own timestamp counters"). [`MachineShape`] describes the hierarchy,
//! [`ClockDomain`] says at which level clocks are shared, and
//! [`ClockEnsemble`] samples one [`SimClock`] per domain with hierarchical
//! correlation: cores on one chip share a clock exactly, chips within a node
//! differ a little, nodes differ a lot.

use crate::clock::SimClock;
use crate::drift::gaussian;
use crate::platform::ClockProfile;
use crate::time::Time;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Geometry of a simulated machine: `nodes × chips_per_node ×
/// cores_per_chip`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MachineShape {
    /// Number of SMP nodes.
    pub nodes: usize,
    /// Chips (sockets) per node.
    pub chips_per_node: usize,
    /// Cores per chip.
    pub cores_per_chip: usize,
}

/// Flat index of a core within a [`MachineShape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CoreId(pub usize);

/// Relative location of two cores in the hierarchy — the paper's Table I/II
/// distinction (inter-core, inter-chip, inter-node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Locality {
    /// Two distinct cores on the same chip.
    SameChip,
    /// Same node, different chips.
    SameNode,
    /// Different nodes.
    InterNode,
    /// The very same core.
    SameCore,
}

impl MachineShape {
    /// A machine with the given geometry.
    pub fn new(nodes: usize, chips_per_node: usize, cores_per_chip: usize) -> Self {
        assert!(nodes > 0 && chips_per_node > 0 && cores_per_chip > 0);
        MachineShape {
            nodes,
            chips_per_node,
            cores_per_chip,
        }
    }

    /// Total number of cores.
    pub fn n_cores(&self) -> usize {
        self.nodes * self.chips_per_node * self.cores_per_chip
    }

    /// Total number of chips.
    pub fn n_chips(&self) -> usize {
        self.nodes * self.chips_per_node
    }

    /// Flat core id from `(node, chip, core)` coordinates.
    pub fn core(&self, node: usize, chip: usize, core: usize) -> CoreId {
        assert!(node < self.nodes && chip < self.chips_per_node && core < self.cores_per_chip);
        CoreId((node * self.chips_per_node + chip) * self.cores_per_chip + core)
    }

    /// Node index of a core.
    pub fn node_of(&self, c: CoreId) -> usize {
        c.0 / (self.chips_per_node * self.cores_per_chip)
    }

    /// Global chip index of a core.
    pub fn chip_of(&self, c: CoreId) -> usize {
        c.0 / self.cores_per_chip
    }

    /// Relative location of two cores.
    pub fn locality(&self, a: CoreId, b: CoreId) -> Locality {
        if a == b {
            Locality::SameCore
        } else if self.chip_of(a) == self.chip_of(b) {
            Locality::SameChip
        } else if self.node_of(a) == self.node_of(b) {
            Locality::SameNode
        } else {
            Locality::InterNode
        }
    }

    /// Iterate all core ids.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.n_cores()).map(CoreId)
    }
}

/// At which hierarchy level clocks are shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClockDomain {
    /// One perfectly shared clock for the whole machine (Blue Gene-style
    /// global clock).
    Global,
    /// One clock per node; all chips/cores of a node read the same clock.
    PerNode,
    /// One clock per chip (the common commodity-cluster reality).
    PerChip,
    /// Fully independent per-core clocks.
    PerCore,
}

/// A family of clocks for a whole machine, sampled with hierarchical
/// correlation from a [`ClockProfile`].
pub struct ClockEnsemble {
    shape: MachineShape,
    domain: ClockDomain,
    clocks: Vec<SimClock>,
    domain_of_core: Vec<usize>,
}

impl ClockEnsemble {
    /// Sample an ensemble.
    ///
    /// Per node a base `(offset, rate)` pair is drawn from the profile's
    /// node-level sigmas; per chip an additional smaller delta from the
    /// chip-level sigmas; per core an even smaller delta (one tenth of the
    /// chip sigmas). The drift path (NTP / thermal / random walk) is drawn
    /// independently per clock domain.
    pub fn build(
        shape: MachineShape,
        domain: ClockDomain,
        profile: &ClockProfile,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut clocks = Vec::new();
        let mut domain_of_core = vec![0usize; shape.n_cores()];

        match domain {
            ClockDomain::Global => {
                clocks.push(SimClock::ideal());
                // every core already maps to domain 0
            }
            ClockDomain::PerNode => {
                for node in 0..shape.nodes {
                    let off = gaussian(&mut rng) * profile.node_offset_sigma_s;
                    let rate = gaussian(&mut rng) * profile.node_rate_sigma;
                    clocks.push(profile.build_clock(&mut rng, off, rate));
                    for chip in 0..shape.chips_per_node {
                        for core in 0..shape.cores_per_chip {
                            domain_of_core[shape.core(node, chip, core).0] = node;
                        }
                    }
                }
            }
            ClockDomain::PerChip => {
                for node in 0..shape.nodes {
                    let node_off = gaussian(&mut rng) * profile.node_offset_sigma_s;
                    let node_rate = gaussian(&mut rng) * profile.node_rate_sigma;
                    // Chips of a node derive their counters from the same
                    // oscillator: they share the node's drift *path* and
                    // differ only by small constant offset/rate deltas.
                    let node_drift = profile.build_node_drift(&mut rng, node_off, node_rate);
                    for chip in 0..shape.chips_per_node {
                        let off = node_off + gaussian(&mut rng) * profile.chip_offset_sigma_s;
                        let delta = gaussian(&mut rng) * profile.chip_rate_sigma;
                        let idx = clocks.len();
                        clocks.push(profile.build_clock_on(
                            &mut rng,
                            node_drift.clone(),
                            off,
                            delta,
                        ));
                        for core in 0..shape.cores_per_chip {
                            domain_of_core[shape.core(node, chip, core).0] = idx;
                        }
                    }
                }
            }
            ClockDomain::PerCore => {
                for node in 0..shape.nodes {
                    let node_off = gaussian(&mut rng) * profile.node_offset_sigma_s;
                    let node_rate = gaussian(&mut rng) * profile.node_rate_sigma;
                    let node_drift = profile.build_node_drift(&mut rng, node_off, node_rate);
                    for chip in 0..shape.chips_per_node {
                        let chip_off = node_off + gaussian(&mut rng) * profile.chip_offset_sigma_s;
                        let chip_delta = gaussian(&mut rng) * profile.chip_rate_sigma;
                        for core in 0..shape.cores_per_chip {
                            let off = chip_off
                                + gaussian(&mut rng) * profile.chip_offset_sigma_s * 0.1;
                            let delta =
                                chip_delta + gaussian(&mut rng) * profile.chip_rate_sigma * 0.1;
                            let idx = clocks.len();
                            clocks.push(profile.build_clock_on(
                                &mut rng,
                                node_drift.clone(),
                                off,
                                delta,
                            ));
                            domain_of_core[shape.core(node, chip, core).0] = idx;
                        }
                    }
                }
            }
        }

        ClockEnsemble {
            shape,
            domain,
            clocks,
            domain_of_core,
        }
    }

    /// Machine geometry.
    pub fn shape(&self) -> MachineShape {
        self.shape
    }

    /// Clock-sharing level.
    pub fn domain(&self) -> ClockDomain {
        self.domain
    }

    /// Number of distinct clocks.
    pub fn n_clocks(&self) -> usize {
        self.clocks.len()
    }

    /// Noisy, monotone reading of the clock visible to `core` at true time
    /// `t` — what a tracer on that core records. Note the clamp is per
    /// *clock*; when several cores share one clock and query out of
    /// true-time order, use [`ClockEnsemble::sample`] and clamp per reader.
    pub fn read(&mut self, core: CoreId, t: Time) -> Time {
        self.clocks[self.domain_of_core[core.0]].read(t)
    }

    /// Noisy reading without the monotonicity clamp (see
    /// [`SimClock::sample`]).
    pub fn sample(&mut self, core: CoreId, t: Time) -> Time {
        self.clocks[self.domain_of_core[core.0]].sample(t)
    }

    /// Noiseless local time of `core`'s clock at `t`.
    pub fn ideal_at(&self, core: CoreId, t: Time) -> Time {
        self.clocks[self.domain_of_core[core.0]].ideal_at(t)
    }

    /// Read-intrusion overhead of `core`'s clock.
    pub fn read_overhead(&self, core: CoreId) -> crate::time::Dur {
        self.clocks[self.domain_of_core[core.0]].read_overhead()
    }

    /// Whether two cores read the very same clock (always true inside one
    /// domain — e.g. two cores of one chip under [`ClockDomain::PerChip`]).
    pub fn same_clock(&self, a: CoreId, b: CoreId) -> bool {
        self.domain_of_core[a.0] == self.domain_of_core[b.0]
    }

    /// Direct access to a core's clock (e.g. for offset probing).
    pub fn clock_of_core_mut(&mut self, core: CoreId) -> &mut SimClock {
        &mut self.clocks[self.domain_of_core[core.0]]
    }

    /// Direct access to a core's clock.
    pub fn clock_of_core(&self, core: CoreId) -> &SimClock {
        &self.clocks[self.domain_of_core[core.0]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TimerKind;
    use crate::platform::ClockProfile;

    fn tiny_profile() -> ClockProfile {
        ClockProfile::bare(TimerKind::IntelTsc)
            .with_node_spread(1e-3, 2e-6)
            .with_chip_spread(1e-6, 5e-8)
            .with_horizon(100.0)
    }

    #[test]
    fn shape_arithmetic() {
        let s = MachineShape::new(4, 2, 4);
        assert_eq!(s.n_cores(), 32);
        assert_eq!(s.n_chips(), 8);
        let c = s.core(2, 1, 3);
        assert_eq!(s.node_of(c), 2);
        assert_eq!(s.chip_of(c), 5);
        assert_eq!(s.cores().count(), 32);
    }

    #[test]
    fn locality_classification() {
        let s = MachineShape::new(2, 2, 2);
        let a = s.core(0, 0, 0);
        assert_eq!(s.locality(a, a), Locality::SameCore);
        assert_eq!(s.locality(a, s.core(0, 0, 1)), Locality::SameChip);
        assert_eq!(s.locality(a, s.core(0, 1, 0)), Locality::SameNode);
        assert_eq!(s.locality(a, s.core(1, 0, 0)), Locality::InterNode);
    }

    #[test]
    fn domain_counts() {
        let s = MachineShape::new(3, 2, 4);
        let p = tiny_profile();
        assert_eq!(ClockEnsemble::build(s, ClockDomain::Global, &p, 1).n_clocks(), 1);
        assert_eq!(ClockEnsemble::build(s, ClockDomain::PerNode, &p, 1).n_clocks(), 3);
        assert_eq!(ClockEnsemble::build(s, ClockDomain::PerChip, &p, 1).n_clocks(), 6);
        assert_eq!(ClockEnsemble::build(s, ClockDomain::PerCore, &p, 1).n_clocks(), 24);
    }

    #[test]
    fn same_chip_cores_share_clock_per_chip_domain() {
        let s = MachineShape::new(2, 2, 4);
        let e = ClockEnsemble::build(s, ClockDomain::PerChip, &tiny_profile(), 2);
        assert!(e.same_clock(s.core(0, 0, 0), s.core(0, 0, 3)));
        assert!(!e.same_clock(s.core(0, 0, 0), s.core(0, 1, 0)));
        assert!(!e.same_clock(s.core(0, 0, 0), s.core(1, 0, 0)));
    }

    #[test]
    fn chip_spread_is_smaller_than_node_spread() {
        // Statistically: offsets between chips of one node should be much
        // closer than offsets between nodes.
        let s = MachineShape::new(16, 2, 1);
        let e = ClockEnsemble::build(s, ClockDomain::PerChip, &tiny_profile(), 3);
        let t = Time::ZERO;
        let mut intra = 0.0f64;
        let mut inter = 0.0f64;
        for node in 0..16 {
            let a = e.ideal_at(s.core(node, 0, 0), t);
            let b = e.ideal_at(s.core(node, 1, 0), t);
            intra += (a - b).as_secs_f64().abs();
        }
        for node in 0..15 {
            let a = e.ideal_at(s.core(node, 0, 0), t);
            let b = e.ideal_at(s.core(node + 1, 0, 0), t);
            inter += (a - b).as_secs_f64().abs();
        }
        assert!(
            inter / 15.0 > 10.0 * (intra / 16.0),
            "hierarchical correlation missing: intra={} inter={}",
            intra / 16.0,
            inter / 15.0
        );
    }

    #[test]
    fn global_domain_is_ideal() {
        let s = MachineShape::new(2, 1, 1);
        let mut e = ClockEnsemble::build(s, ClockDomain::Global, &tiny_profile(), 4);
        let t = Time::from_secs(42);
        assert_eq!(e.read(s.core(0, 0, 0), t), t);
        assert_eq!(e.read(s.core(1, 0, 0), t), t);
    }

    #[test]
    fn deterministic_per_seed() {
        let s = MachineShape::new(4, 1, 1);
        let p = tiny_profile();
        let a = ClockEnsemble::build(s, ClockDomain::PerNode, &p, 7);
        let b = ClockEnsemble::build(s, ClockDomain::PerNode, &p, 7);
        for c in s.cores() {
            let t = Time::from_secs(10);
            assert_eq!(a.ideal_at(c, t), b.ideal_at(c, t));
        }
    }
}
