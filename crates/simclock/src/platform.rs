//! Platform profiles: the clusters of the paper's §IV as parameter sets.
//!
//! Each [`ClockProfile`] bundles timer properties (resolution, read
//! overhead, OS jitter) with the statistical spread of offsets and rates at
//! the node and chip level and the non-constant drift ingredients (NTP
//! discipline for software clocks, thermal sinusoid + random-walk wander for
//! hardware clocks). The concrete numbers are chosen so that the simulated
//! deviation curves match the *shapes and magnitudes* reported in the paper
//! (Figs. 4–6): ppm-scale rate differences between nodes, >200 µs divergence
//! of NTP-steered clocks within minutes, a few µs of interpolation residual
//! for the Intel TSC over a 300 s run, and sub-0.1 µs noise between clocks
//! of one Xeon SMP node.

use crate::clock::{SimClock, TimerKind};
use crate::drift::{
    CompositeDrift, ConstantDrift, DriftModel, RandomWalkDrift, SinusoidalDrift,
};
use crate::ensemble::MachineShape;
use crate::noise::NoiseSpec;
use crate::ntp::NtpDiscipline;
use crate::time::Dur;
use rand::rngs::StdRng;
use rand::{Rng, RngCore};
use std::sync::Arc;

/// The cluster systems of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// RWTH Aachen: 62 nodes × 2 quad-core Intel Xeon 3.0 GHz, InfiniBand.
    XeonCluster,
    /// MareNostrum: 2560 JS21 blades × 2 dual-core PowerPC 970MP 2.3 GHz,
    /// Myrinet.
    PowerPcCluster,
    /// Jaguar XT3: 3744 nodes × 1 dual-core Opteron 2.6 GHz, SeaStar 3-D
    /// torus.
    OpteronCluster,
    /// The Itanium SMP node of Figs. 3/8: 4 chips × 4 cores, shared memory.
    ItaniumSmp,
}

impl Platform {
    /// The node/chip/core geometry used by the paper's experiments on this
    /// platform (node counts trimmed to the scale the experiments need).
    pub fn shape(self, nodes: usize) -> MachineShape {
        match self {
            Platform::XeonCluster => MachineShape::new(nodes, 2, 4),
            Platform::PowerPcCluster => MachineShape::new(nodes, 2, 2),
            Platform::OpteronCluster => MachineShape::new(nodes, 1, 2),
            Platform::ItaniumSmp => MachineShape::new(1, 4, 4),
        }
    }

    /// Human-readable name.
    pub fn label(self) -> &'static str {
        match self {
            Platform::XeonCluster => "Xeon cluster",
            Platform::PowerPcCluster => "PowerPC cluster",
            Platform::OpteronCluster => "Opteron cluster",
            Platform::ItaniumSmp => "Itanium SMP node",
        }
    }

    /// The clock profile of `timer` on this platform.
    ///
    /// `horizon_s` must cover the full simulated run (drift paths are drawn
    /// ahead of time).
    pub fn clock_profile(self, timer: TimerKind, horizon_s: f64) -> ClockProfile {
        match (self, timer) {
            (Platform::XeonCluster, TimerKind::IntelTsc) => {
                ClockProfile::bare(timer)
                    .with_noise(NoiseSpec {
                        resolution: Dur::from_ps(334), // 1 tick @ 3.0 GHz
                        base_sigma: Dur::from_ns(4),
                        spike_prob: 5e-5,
                        spike_mean: Dur::from_us(2),
                        read_overhead: Dur::from_ns(25),
                    })
                    // ppm-scale rate spread between nodes; TSCs of chips in
                    // one node are synchronised at reset (±0.03 µs, tiny
                    // relative drift) — the paper's intra-node finding.
                    .with_node_spread(50e-3, 2.0e-6)
                    .with_chip_spread(0.03e-6, 2e-10)
                    .with_wander(1.0e-8, 10.0, 4.0e-8, (400.0, 1100.0))
                    .with_horizon(horizon_s)
            }
            (Platform::XeonCluster, TimerKind::Gettimeofday | TimerKind::MpiWtime) => {
                ClockProfile::bare(timer)
                    .with_noise(NoiseSpec {
                        resolution: Dur::from_us(1),
                        base_sigma: Dur::from_ns(40),
                        spike_prob: 1e-4,
                        spike_mean: Dur::from_us(4),
                        read_overhead: Dur::from_ns(if timer == TimerKind::MpiWtime {
                            90
                        } else {
                            60
                        }),
                    })
                    .with_node_spread(1e-3, 1.5e-6)
                    .with_chip_spread(0.0, 0.0) // system clock is per node
                    .with_ntp(NtpDiscipline::typical(0.0))
                    .with_wander(1e-9, 20.0, 1e-8, (600.0, 1200.0))
                    .with_horizon(horizon_s)
            }
            (Platform::PowerPcCluster, TimerKind::IbmTimeBase | TimerKind::IbmRtc) => {
                ClockProfile::bare(timer)
                    .with_noise(NoiseSpec {
                        // JS21 time base ticks at ~14.3 MHz.
                        resolution: Dur::from_ns(70),
                        base_sigma: Dur::from_ns(8),
                        spike_prob: 5e-5,
                        spike_mean: Dur::from_us(3),
                        read_overhead: Dur::from_ns(30),
                    })
                    .with_node_spread(40e-3, 3.0e-6)
                    .with_chip_spread(0.05e-6, 3e-10)
                    .with_wander(4.0e-9, 10.0, 3.0e-8, (400.0, 1600.0))
                    .with_horizon(horizon_s)
            }
            (Platform::OpteronCluster, TimerKind::Gettimeofday | TimerKind::MpiWtime) => {
                // The worst case of Fig. 5(c): coarsely disciplined system
                // clock with large measurement noise and lazy polling.
                ClockProfile::bare(timer)
                    .with_noise(NoiseSpec {
                        resolution: Dur::from_us(1),
                        base_sigma: Dur::from_ns(60),
                        spike_prob: 2e-4,
                        spike_mean: Dur::from_us(6),
                        read_overhead: Dur::from_ns(70),
                    })
                    .with_node_spread(2e-3, 8e-6)
                    .with_chip_spread(0.0, 0.0)
                    .with_ntp(NtpDiscipline {
                        base_rate: 0.0,
                        poll_interval_s: 512.0,
                        measurement_sigma_s: 1.2e-3,
                        gain: 0.3,
                        max_slew: 500e-6,
                        rate_noise: 1e-7,
                    })
                    .with_wander(2e-9, 20.0, 2e-8, (700.0, 1300.0))
                    .with_horizon(horizon_s)
            }
            (Platform::OpteronCluster, TimerKind::IntelTsc) => {
                // AMD's TSC, for completeness in cross-platform sweeps.
                ClockProfile::bare(timer)
                    .with_noise(NoiseSpec {
                        resolution: Dur::from_ps(385), // 1 tick @ 2.6 GHz
                        base_sigma: Dur::from_ns(5),
                        spike_prob: 5e-5,
                        spike_mean: Dur::from_us(2),
                        read_overhead: Dur::from_ns(25),
                    })
                    .with_node_spread(50e-3, 4e-6)
                    .with_chip_spread(0.05e-6, 3e-10)
                    .with_wander(4e-9, 10.0, 3e-8, (500.0, 1500.0))
                    .with_horizon(horizon_s)
            }
            (Platform::ItaniumSmp, TimerKind::CycleCounter | TimerKind::IntelTsc) => {
                // Itanium ITC: per-chip counters, not synchronised between
                // chips; offsets of a few µs decide Fig. 8.
                ClockProfile::bare(timer)
                    .with_noise(NoiseSpec {
                        resolution: Dur::from_ns(1),
                        base_sigma: Dur::from_ns(6),
                        spike_prob: 5e-5,
                        spike_mean: Dur::from_us(1),
                        read_overhead: Dur::from_ns(20),
                    })
                    .with_node_spread(0.0, 0.0)
                    .with_chip_spread(1.3e-6, 6e-9)
                    .with_wander(1e-9, 5.0, 5e-9, (200.0, 800.0))
                    .with_horizon(horizon_s)
            }
            // Any remaining combination: a generic software clock with NTP.
            (_, t) => ClockProfile::bare(t)
                .with_noise(NoiseSpec {
                    resolution: Dur::from_us(1),
                    base_sigma: Dur::from_ns(50),
                    spike_prob: 1e-4,
                    spike_mean: Dur::from_us(4),
                    read_overhead: Dur::from_ns(60),
                })
                .with_node_spread(5e-3, 2e-6)
                .with_chip_spread(0.0, 0.0)
                .with_ntp(NtpDiscipline::typical(0.0))
                .with_wander(1e-9, 20.0, 1e-8, (600.0, 1200.0))
                .with_horizon(horizon_s),
        }
    }
}

/// Statistical description of one timer technology on one platform; a
/// factory for [`SimClock`]s.
#[derive(Debug, Clone)]
pub struct ClockProfile {
    /// Timer technology being modelled.
    pub timer: TimerKind,
    /// Per-read measurement error specification.
    pub noise: NoiseSpec,
    /// Std-dev of initial offsets between nodes, seconds.
    pub node_offset_sigma_s: f64,
    /// Extra std-dev of offsets between chips of one node, seconds.
    pub chip_offset_sigma_s: f64,
    /// Std-dev of constant rate error between nodes (fractional).
    pub node_rate_sigma: f64,
    /// Extra std-dev of rate between chips of one node (fractional).
    pub chip_rate_sigma: f64,
    /// Random-walk wander: rate step sigma per sample.
    pub walk_step_sigma: f64,
    /// Random-walk wander: seconds between samples.
    pub walk_step_s: f64,
    /// Thermal sinusoid amplitude (fractional rate).
    pub thermal_amp: f64,
    /// Thermal period drawn uniformly from this range, seconds.
    pub thermal_period_s: (f64, f64),
    /// NTP discipline, if the timer is steered (software clocks).
    pub ntp: Option<NtpDiscipline>,
    /// Drift paths are drawn over `[0, horizon_s]`.
    pub horizon_s: f64,
}

impl ClockProfile {
    /// A profile with no spread, no wander and no noise — a family of ideal
    /// clocks. Builder methods add the physics.
    pub fn bare(timer: TimerKind) -> Self {
        ClockProfile {
            timer,
            noise: NoiseSpec::noiseless(),
            node_offset_sigma_s: 0.0,
            chip_offset_sigma_s: 0.0,
            node_rate_sigma: 0.0,
            chip_rate_sigma: 0.0,
            walk_step_sigma: 0.0,
            walk_step_s: 10.0,
            thermal_amp: 0.0,
            thermal_period_s: (600.0, 1200.0),
            ntp: None,
            horizon_s: 3600.0,
        }
    }

    /// Set the per-read noise model.
    pub fn with_noise(mut self, noise: NoiseSpec) -> Self {
        self.noise = noise;
        self
    }

    /// Set node-level offset (seconds) and rate (fractional) spreads.
    pub fn with_node_spread(mut self, offset_sigma_s: f64, rate_sigma: f64) -> Self {
        self.node_offset_sigma_s = offset_sigma_s;
        self.node_rate_sigma = rate_sigma;
        self
    }

    /// Set chip-level offset and rate spreads (within one node).
    pub fn with_chip_spread(mut self, offset_sigma_s: f64, rate_sigma: f64) -> Self {
        self.chip_offset_sigma_s = offset_sigma_s;
        self.chip_rate_sigma = rate_sigma;
        self
    }

    /// Set the non-deterministic wander: random-walk step sigma / interval
    /// and thermal sinusoid amplitude / period range.
    pub fn with_wander(
        mut self,
        walk_step_sigma: f64,
        walk_step_s: f64,
        thermal_amp: f64,
        thermal_period_s: (f64, f64),
    ) -> Self {
        self.walk_step_sigma = walk_step_sigma;
        self.walk_step_s = walk_step_s;
        self.thermal_amp = thermal_amp;
        self.thermal_period_s = thermal_period_s;
        self
    }

    /// Steer the clock with an NTP discipline (its `base_rate` is replaced
    /// per clock by the sampled node/chip rate).
    pub fn with_ntp(mut self, ntp: NtpDiscipline) -> Self {
        self.ntp = Some(ntp);
        self
    }

    /// Set the drift-path horizon (must cover the simulated run).
    pub fn with_horizon(mut self, horizon_s: f64) -> Self {
        self.horizon_s = horizon_s;
        self
    }

    /// Build the drift path of one node's shared oscillator: NTP steering
    /// (if configured) or a constant `base_rate`, plus the thermal sinusoid
    /// and random-walk wander. Chips of one node derive their timestamp
    /// counters from this same oscillator, so the path is shared between
    /// them via [`ClockProfile::build_clock_on`].
    pub fn build_node_drift(
        &self,
        rng: &mut StdRng,
        offset_s: f64,
        base_rate: f64,
    ) -> Arc<dyn DriftModel> {
        let mut parts: Vec<Box<dyn DriftModel>> = Vec::with_capacity(3);
        match &self.ntp {
            Some(ntp) => {
                let mut d = ntp.clone();
                d.base_rate = base_rate;
                parts.push(Box::new(d.generate(rng, offset_s, self.horizon_s)));
            }
            None => parts.push(Box::new(ConstantDrift::new(base_rate))),
        }
        if self.thermal_amp > 0.0 {
            let (lo, hi) = self.thermal_period_s;
            let period = if hi > lo { rng.gen_range(lo..hi) } else { lo };
            let phase = rng.gen_range(0.0..core::f64::consts::TAU);
            parts.push(Box::new(SinusoidalDrift::new(self.thermal_amp, period, phase)));
        }
        if self.walk_step_sigma > 0.0 {
            parts.push(Box::new(RandomWalkDrift::generate(
                rng,
                self.walk_step_sigma,
                self.walk_step_s,
                // Margin so queries a bit past the nominal end stay valid.
                self.horizon_s * 1.25 + 60.0,
            )));
        }
        Arc::new(CompositeDrift::new(parts))
    }

    /// Build a clock on a (possibly shared) node drift path, with its own
    /// initial offset and an additional constant per-chip rate delta.
    pub fn build_clock_on(
        &self,
        rng: &mut StdRng,
        node_drift: Arc<dyn DriftModel>,
        offset_s: f64,
        rate_delta: f64,
    ) -> SimClock {
        let drift: Arc<dyn DriftModel> = if rate_delta == 0.0 {
            node_drift
        } else {
            Arc::new(CompositeDrift::new(vec![
                Box::new(node_drift),
                Box::new(ConstantDrift::new(rate_delta)),
            ]))
        };
        SimClock::new(
            self.timer,
            Dur::from_secs_f64(offset_s),
            drift,
            self.noise.clone(),
            rng.next_u64(),
        )
    }

    /// Build one standalone clock with the given sampled initial offset
    /// (seconds) and base rate (fractional); drift wander and noise streams
    /// are drawn from `rng`.
    pub fn build_clock(&self, rng: &mut StdRng, offset_s: f64, base_rate: f64) -> SimClock {
        let base = self.build_node_drift(rng, offset_s, base_rate);
        self.build_clock_on(rng, base, offset_s, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;
    use rand::SeedableRng;

    #[test]
    fn shapes_match_the_paper() {
        assert_eq!(Platform::XeonCluster.shape(4).n_cores(), 32);
        assert_eq!(Platform::ItaniumSmp.shape(1).n_cores(), 16);
        assert_eq!(Platform::OpteronCluster.shape(2).n_cores(), 4);
        assert_eq!(Platform::PowerPcCluster.shape(3).n_cores(), 12);
    }

    #[test]
    fn tsc_profile_is_hardware_and_fine_grained() {
        let p = Platform::XeonCluster.clock_profile(TimerKind::IntelTsc, 600.0);
        assert!(p.timer.is_hardware());
        assert!(p.ntp.is_none());
        assert!(p.noise.resolution < Dur::from_ns(1));
    }

    #[test]
    fn gettimeofday_profile_is_ntp_steered() {
        let p = Platform::XeonCluster.clock_profile(TimerKind::Gettimeofday, 600.0);
        assert!(p.ntp.is_some());
        assert_eq!(p.noise.resolution, Dur::from_us(1));
    }

    #[test]
    fn built_clock_respects_offset_and_rate() {
        let p = ClockProfile::bare(TimerKind::IntelTsc).with_horizon(100.0);
        let mut rng = StdRng::seed_from_u64(1);
        let c = p.build_clock(&mut rng, 1e-3, 2e-6);
        let t = Time::from_secs(50);
        let expected = t + Dur::from_ms(1) + Dur::from_us(100);
        let got = c.ideal_at(t);
        assert!(
            (got - expected).abs() < Dur::from_ns(1),
            "got {got:?}, expected {expected:?}"
        );
    }

    #[test]
    fn ntp_clock_total_rate_includes_base() {
        let p = ClockProfile::bare(TimerKind::Gettimeofday)
            .with_ntp(NtpDiscipline::typical(0.0))
            .with_horizon(300.0);
        let mut rng = StdRng::seed_from_u64(2);
        let c = p.build_clock(&mut rng, 0.0, 5e-6);
        // Early on (before the discipline bites) the clock should be moving
        // at roughly its intrinsic 5 ppm.
        let r = c.rate_at(Time::from_secs(1));
        assert!((r - 5e-6).abs() < 3e-6, "rate {r}");
    }

    #[test]
    fn itanium_chips_get_microsecond_offsets() {
        let p = Platform::ItaniumSmp.clock_profile(TimerKind::CycleCounter, 60.0);
        assert!(p.chip_offset_sigma_s > 0.2e-6 && p.chip_offset_sigma_s < 5e-6);
        assert_eq!(p.node_offset_sigma_s, 0.0);
    }
}
