//! Measurement-error models for clock reads.
//!
//! Besides drift, the paper names two further inaccuracy sources (§III.c):
//! **insufficient timer resolution** and **OS jitter** (daemon scheduling,
//! interrupt handling delaying the read). [`ReadNoise`] models both, plus a
//! small Gaussian electrical/readout noise floor, and [`ReadNoise::sample`]
//! draws the per-read perturbation from a clock-private RNG so that
//! different clocks observe independent noise while the whole simulation
//! stays deterministic under a fixed seed.

use crate::drift::gaussian;
use crate::time::{Dur, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-read measurement error specification.
#[derive(Debug, Clone)]
pub struct NoiseSpec {
    /// Timer granularity; readings are floored to this grid.
    /// `gettimeofday()` reports microseconds; a 3 GHz TSC ticks every ⅓ ns.
    pub resolution: Dur,
    /// Standard deviation of the zero-mean Gaussian noise floor.
    pub base_sigma: Dur,
    /// Probability that a read is hit by an OS-jitter spike
    /// (daemon wakeup, interrupt) which delays the observed value.
    pub spike_prob: f64,
    /// Mean of the exponentially distributed spike magnitude.
    pub spike_mean: Dur,
    /// Cost of one clock read in true time; the runtime advances the caller
    /// by this much per query (intrusion overhead, §III).
    pub read_overhead: Dur,
}

impl NoiseSpec {
    /// A perfectly clean, instantaneous timer (useful in unit tests).
    pub fn noiseless() -> Self {
        NoiseSpec {
            resolution: Dur::ZERO,
            base_sigma: Dur::ZERO,
            spike_prob: 0.0,
            spike_mean: Dur::ZERO,
            read_overhead: Dur::ZERO,
        }
    }
}

/// Stateful sampler applying a [`NoiseSpec`] with its own RNG stream.
#[derive(Debug, Clone)]
pub struct ReadNoise {
    spec: NoiseSpec,
    rng: StdRng,
}

impl ReadNoise {
    /// Create a sampler with an independent RNG stream.
    pub fn new(spec: NoiseSpec, seed: u64) -> Self {
        ReadNoise {
            spec,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying specification.
    pub fn spec(&self) -> &NoiseSpec {
        &self.spec
    }

    /// Perturb an ideal reading: add noise floor and possible jitter spike,
    /// then quantize to the timer resolution.
    pub fn sample(&mut self, ideal: Time) -> Time {
        let mut t = ideal;
        if self.spec.base_sigma > Dur::ZERO {
            t += self.spec.base_sigma.scale(gaussian(&mut self.rng));
        }
        if self.spec.spike_prob > 0.0 && self.rng.gen::<f64>() < self.spec.spike_prob {
            // Exponential(mean) via inverse CDF; a spike only ever *delays*
            // the observed value, it never makes a clock read early.
            let u: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
            t += self.spec.spike_mean.scale(-u.ln());
        }
        t.quantize(self.spec.resolution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_is_identity_modulo_resolution() {
        let mut n = ReadNoise::new(NoiseSpec::noiseless(), 0);
        let t = Time::from_ns(123_456);
        assert_eq!(n.sample(t), t);
    }

    #[test]
    fn resolution_quantizes() {
        let spec = NoiseSpec {
            resolution: Dur::from_us(1),
            ..NoiseSpec::noiseless()
        };
        let mut n = ReadNoise::new(spec, 0);
        assert_eq!(n.sample(Time::from_ns(2_700)), Time::from_us(2));
    }

    #[test]
    fn spikes_only_delay() {
        let spec = NoiseSpec {
            spike_prob: 1.0,
            spike_mean: Dur::from_us(5),
            ..NoiseSpec::noiseless()
        };
        let mut n = ReadNoise::new(spec, 3);
        let t = Time::from_ms(1);
        let mut total = Dur::ZERO;
        for _ in 0..1000 {
            let s = n.sample(t);
            assert!(s >= t, "spike made a read early");
            total += s - t;
        }
        let mean_us = total.as_us_f64() / 1000.0;
        assert!((mean_us - 5.0).abs() < 0.8, "spike mean off: {mean_us}");
    }

    #[test]
    fn noise_floor_is_roughly_symmetric() {
        let spec = NoiseSpec {
            base_sigma: Dur::from_ns(100),
            ..NoiseSpec::noiseless()
        };
        let mut n = ReadNoise::new(spec, 9);
        let t = Time::from_ms(10);
        let (mut lo, mut hi) = (0u32, 0u32);
        for _ in 0..2000 {
            if n.sample(t) < t {
                lo += 1;
            } else {
                hi += 1;
            }
        }
        assert!(lo > 700 && hi > 700, "asymmetric noise: {lo}/{hi}");
    }

    #[test]
    fn same_seed_same_stream() {
        let spec = NoiseSpec {
            base_sigma: Dur::from_ns(50),
            spike_prob: 0.1,
            spike_mean: Dur::from_us(2),
            ..NoiseSpec::noiseless()
        };
        let mut a = ReadNoise::new(spec.clone(), 11);
        let mut b = ReadNoise::new(spec, 11);
        for i in 0..100 {
            let t = Time::from_us(i);
            assert_eq!(a.sample(t), b.sample(t));
        }
    }
}
