//! A model of NTP clock discipline.
//!
//! `gettimeofday()` (and `MPI_Wtime()` where it is implemented on top of it)
//! is usually steered by an NTP daemon. NTP avoids jumps: it periodically
//! measures the offset to a reference server over the network — with
//! millisecond-scale uncertainty due to varying path latencies — and then
//! **slews** the local clock by changing its effective rate. The paper's
//! Fig. 4(a)/(b) show exactly the resulting signature: phases of roughly
//! constant drift interrupted by abrupt slope changes ("turning points"),
//! which is what breaks the constant-drift assumption behind linear offset
//! interpolation.
//!
//! [`NtpDiscipline::generate`] simulates the feedback loop ahead of time and
//! emits the effective rate path as a piecewise-constant
//! [`PiecewiseLinearDrift`], keeping clock reads pure and deterministic.

use crate::drift::{gaussian, PiecewiseLinearDrift};
use crate::time::Time;
use rand::Rng;

/// Parameters of the simulated NTP feedback loop.
#[derive(Debug, Clone)]
pub struct NtpDiscipline {
    /// Intrinsic oscillator rate error the daemon has to fight (fractional,
    /// e.g. `1.5e-6` for 1.5 ppm fast).
    pub base_rate: f64,
    /// Seconds between discipline adjustments (NTP poll interval; real
    /// daemons use 64–1024 s).
    pub poll_interval_s: f64,
    /// Standard deviation of the offset *measurement* error in seconds
    /// (network path asymmetry; ≈1 ms per the paper's §II).
    pub measurement_sigma_s: f64,
    /// Fraction of the measured offset corrected per poll interval
    /// (loop gain; 0 < gain ≤ 1).
    pub gain: f64,
    /// Maximum slew rate magnitude the daemon will apply (ntpd clamps at
    /// 500 ppm).
    pub max_slew: f64,
    /// Random per-interval wobble of the intrinsic rate (thermal noise seen
    /// by the discipline), as a standard deviation per poll.
    pub rate_noise: f64,
}

impl NtpDiscipline {
    /// Typical commodity-cluster discipline against a LAN time server.
    pub fn typical(base_rate: f64) -> Self {
        NtpDiscipline {
            base_rate,
            poll_interval_s: 128.0,
            measurement_sigma_s: 0.8e-3,
            gain: 0.5,
            max_slew: 500e-6,
            rate_noise: 5e-8,
        }
    }

    /// Simulate the loop over `[0, horizon_s]` and return the effective
    /// clock rate error as a step function of true time.
    ///
    /// The returned path includes the oscillator's intrinsic `base_rate`
    /// — it is the *total* drift of the disciplined clock.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        initial_offset_s: f64,
        horizon_s: f64,
    ) -> PiecewiseLinearDrift {
        assert!(self.poll_interval_s > 0.0 && horizon_s > 0.0);
        assert!(self.gain > 0.0 && self.gain <= 1.0, "gain must be in (0,1]");
        let steps = (horizon_s / self.poll_interval_s).ceil() as usize + 1;
        let mut points = Vec::with_capacity(steps);
        let mut offset = initial_offset_s; // true offset to the reference
        let mut intrinsic = self.base_rate;
        let mut slew = 0.0f64;
        for i in 0..steps {
            let t = i as f64 * self.poll_interval_s;
            let effective = (intrinsic + slew).clamp(-self.max_slew, self.max_slew);
            points.push((Time::from_secs_f64(t), effective));
            // The clock accumulates offset at the effective rate until the
            // next poll, where the daemon measures (noisily) and re-slews.
            offset += effective * self.poll_interval_s;
            let measured = offset + gaussian(rng) * self.measurement_sigma_s;
            slew = -self.gain * measured / self.poll_interval_s;
            intrinsic += gaussian(rng) * self.rate_noise;
        }
        PiecewiseLinearDrift::piecewise_constant(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::DriftModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn discipline_bounds_long_term_offset() {
        // Left alone, a 2 ppm clock diverges 7.2 ms over 3600 s; disciplined,
        // the offset must stay within a few milliseconds of the reference.
        let mut rng = StdRng::seed_from_u64(5);
        let d = NtpDiscipline::typical(2e-6).generate(&mut rng, 0.0, 3600.0);
        let end = d.integrated(Time::from_secs(3600)) + 2e-6 * 0.0;
        assert!(end.abs() < 5e-3, "undisciplined divergence: {end}");
    }

    #[test]
    fn rate_path_has_turning_points() {
        // The effective rate must actually change between poll intervals —
        // that is the non-constant drift the paper blames.
        let mut rng = StdRng::seed_from_u64(6);
        let d = NtpDiscipline::typical(1e-6).generate(&mut rng, 0.0, 1800.0);
        let mut distinct = 0;
        let mut prev = d.rate_at(Time::from_secs(1));
        for i in 1..14 {
            let r = d.rate_at(Time::from_secs(i * 128));
            if (r - prev).abs() > 1e-9 {
                distinct += 1;
            }
            prev = r;
        }
        assert!(distinct >= 5, "rate path suspiciously smooth: {distinct}");
    }

    #[test]
    fn deterministic_per_seed() {
        let ntp = NtpDiscipline::typical(1e-6);
        let a = ntp.generate(&mut StdRng::seed_from_u64(9), 1e-4, 600.0);
        let b = ntp.generate(&mut StdRng::seed_from_u64(9), 1e-4, 600.0);
        for i in 0..60 {
            let t = Time::from_secs(i * 10);
            assert_eq!(a.rate_at(t), b.rate_at(t));
        }
    }

    #[test]
    fn slew_respects_clamp() {
        let ntp = NtpDiscipline {
            base_rate: 400e-6,
            max_slew: 500e-6,
            ..NtpDiscipline::typical(0.0)
        };
        let d = ntp.generate(&mut StdRng::seed_from_u64(2), 0.5, 600.0);
        for i in 0..60 {
            let r = d.rate_at(Time::from_secs(i * 10));
            assert!(r.abs() <= 500e-6 + 1e-12, "slew clamp violated: {r}");
        }
    }

    #[test]
    #[should_panic(expected = "gain")]
    fn zero_gain_rejected() {
        let ntp = NtpDiscipline {
            gain: 0.0,
            ..NtpDiscipline::typical(0.0)
        };
        let _ = ntp.generate(&mut StdRng::seed_from_u64(0), 0.0, 10.0);
    }
}
