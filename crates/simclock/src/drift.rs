//! Clock drift models.
//!
//! A clock's *drift* is the fractional error of its oscillation rate: a drift
//! of `1e-6` (one ppm) means the clock gains one microsecond per second of
//! true time. The paper's central observation is that drift is **not
//! constant**: NTP slewing introduces abrupt rate changes, temperature makes
//! oscillators wander, and power management perturbs cycle counters. Each of
//! these effects is a [`DriftModel`] here, and effects compose additively via
//! [`CompositeDrift`].
//!
//! Every model must report both the instantaneous rate error
//! ([`DriftModel::rate_at`]) and its exact integral from the origin
//! ([`DriftModel::integrated`]); the integral is what actually displaces
//! timestamps. Models are immutable after construction so that clock reads
//! are pure functions of true time, which keeps simulations deterministic
//! and replayable.

use crate::time::Time;
use rand::Rng;
use std::fmt;

/// A deterministic model of a clock's fractional rate error over true time.
pub trait DriftModel: Send + Sync + fmt::Debug {
    /// Instantaneous fractional rate error at true time `t`
    /// (dimensionless; `1e-6` = 1 ppm fast).
    fn rate_at(&self, t: Time) -> f64;

    /// Accumulated offset contributed by the drift between the origin and
    /// `t`, in **seconds**: `∫₀ᵗ rate(τ) dτ`.
    fn integrated(&self, t: Time) -> f64;
}

/// A clock running fast or slow by a constant factor — the assumption behind
/// linear offset interpolation (paper Eq. 3 and Fig. 1).
#[derive(Debug, Clone, Copy)]
pub struct ConstantDrift {
    /// Fractional rate error.
    pub rate: f64,
}

impl ConstantDrift {
    /// A constant drift of `rate` (e.g. `2e-6` for 2 ppm fast).
    pub fn new(rate: f64) -> Self {
        ConstantDrift { rate }
    }

    /// The ideal clock: no drift at all.
    pub fn zero() -> Self {
        ConstantDrift { rate: 0.0 }
    }
}

impl DriftModel for ConstantDrift {
    fn rate_at(&self, _t: Time) -> f64 {
        self.rate
    }

    fn integrated(&self, t: Time) -> f64 {
        self.rate * t.as_secs_f64()
    }
}

/// Drift that is linear between knots and constant outside them.
///
/// This is the workhorse shape: NTP slew adjustments produce
/// piecewise-*constant* rates (a special case, see
/// [`PiecewiseLinearDrift::piecewise_constant`]) whose integral is the
/// piecewise-linear offset divergence with abrupt "turning points" visible in
/// the paper's Fig. 4(a) and 4(b).
///
/// ```
/// use simclock::{DriftModel, PiecewiseLinearDrift, Time};
///
/// // 1 ppm for the first 100 s, then an NTP adjustment to 4 ppm.
/// let d = PiecewiseLinearDrift::piecewise_constant(vec![
///     (Time::ZERO, 1e-6),
///     (Time::from_secs(100), 4e-6),
/// ]);
/// // Accumulated offset: 100 µs after 100 s, then 400 µs more per 100 s.
/// assert!((d.integrated(Time::from_secs(100)) - 100e-6).abs() < 1e-12);
/// assert!((d.integrated(Time::from_secs(200)) - 500e-6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct PiecewiseLinearDrift {
    /// Knot positions, strictly increasing.
    knots: Vec<Time>,
    /// Rate at each knot. Between knots the rate interpolates linearly;
    /// before the first and after the last knot it is held constant.
    rates: Vec<f64>,
    /// `cumulative[i]` = integral of the rate from `knots[0]` to `knots[i]`,
    /// in seconds.
    cumulative: Vec<f64>,
    /// When true the rate is held at `rates[i]` on `[knots[i], knots[i+1])`
    /// instead of interpolating (step function).
    step: bool,
}

impl PiecewiseLinearDrift {
    /// Linearly interpolated drift through `(time, rate)` knots.
    ///
    /// # Panics
    /// Panics if fewer than one knot is given or knots are not strictly
    /// increasing.
    pub fn new(points: Vec<(Time, f64)>) -> Self {
        Self::build(points, false)
    }

    /// Step-function drift: rate `rates[i]` holds from `knots[i]` until the
    /// next knot. This is the exact shape produced by periodic NTP slew
    /// adjustments.
    pub fn piecewise_constant(points: Vec<(Time, f64)>) -> Self {
        Self::build(points, true)
    }

    fn build(points: Vec<(Time, f64)>, step: bool) -> Self {
        assert!(!points.is_empty(), "need at least one knot");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "knots must be strictly increasing");
        }
        let knots: Vec<Time> = points.iter().map(|p| p.0).collect();
        let rates: Vec<f64> = points.iter().map(|p| p.1).collect();
        let mut cumulative = Vec::with_capacity(knots.len());
        cumulative.push(0.0);
        for i in 1..knots.len() {
            let dt = (knots[i] - knots[i - 1]).as_secs_f64();
            let seg = if step {
                rates[i - 1] * dt
            } else {
                0.5 * (rates[i - 1] + rates[i]) * dt
            };
            cumulative.push(cumulative[i - 1] + seg);
        }
        PiecewiseLinearDrift {
            knots,
            rates,
            cumulative,
            step,
        }
    }

    /// Number of knots.
    pub fn len(&self) -> usize {
        self.knots.len()
    }

    /// True if the model has a single knot (i.e. is constant).
    pub fn is_empty(&self) -> bool {
        false // construction guarantees >= 1 knot
    }

    /// Index of the segment containing `t`: largest `i` with
    /// `knots[i] <= t`, or `None` if `t` precedes the first knot.
    fn segment(&self, t: Time) -> Option<usize> {
        if t < self.knots[0] {
            return None;
        }
        Some(match self.knots.binary_search(&t) {
            Ok(i) => i,
            Err(i) => i - 1,
        })
    }
}

impl DriftModel for PiecewiseLinearDrift {
    fn rate_at(&self, t: Time) -> f64 {
        match self.segment(t) {
            None => self.rates[0],
            Some(i) if i + 1 >= self.knots.len() => self.rates[i],
            Some(i) if self.step => self.rates[i],
            Some(i) => {
                let t0 = self.knots[i].as_secs_f64();
                let t1 = self.knots[i + 1].as_secs_f64();
                let frac = (t.as_secs_f64() - t0) / (t1 - t0);
                self.rates[i] + frac * (self.rates[i + 1] - self.rates[i])
            }
        }
    }

    fn integrated(&self, t: Time) -> f64 {
        match self.segment(t) {
            // Constant extrapolation before the first knot.
            None => self.rates[0] * (t - self.knots[0]).as_secs_f64(),
            Some(i) if i + 1 >= self.knots.len() => {
                self.cumulative[i] + self.rates[i] * (t - self.knots[i]).as_secs_f64()
            }
            Some(i) => {
                let dt = (t - self.knots[i]).as_secs_f64();
                let seg = if self.step {
                    self.rates[i] * dt
                } else {
                    // Trapezoid from knots[i] to t with interpolated end rate.
                    let r_end = self.rate_at(t);
                    0.5 * (self.rates[i] + r_end) * dt
                };
                self.cumulative[i] + seg
            }
        }
    }
}

/// Thermally induced oscillator wander modelled as a rate sinusoid.
///
/// Machine-room temperature and on-die heating vary slowly and periodically
/// (air-conditioning cycles, load phases); a crystal's frequency follows.
/// `rate(t) = A · sin(2π t / P + φ)` integrates to a bounded offset
/// oscillation of amplitude `A·P/2π` seconds — the gentle curvature that
/// defeats a single straight interpolation line over long runs (Fig. 5).
#[derive(Debug, Clone, Copy)]
pub struct SinusoidalDrift {
    /// Peak fractional rate error.
    pub amplitude: f64,
    /// Oscillation period in seconds.
    pub period_s: f64,
    /// Phase at the origin, radians.
    pub phase: f64,
}

impl SinusoidalDrift {
    /// A thermal wander component.
    pub fn new(amplitude: f64, period_s: f64, phase: f64) -> Self {
        assert!(period_s > 0.0, "period must be positive");
        SinusoidalDrift {
            amplitude,
            period_s,
            phase,
        }
    }
}

impl DriftModel for SinusoidalDrift {
    fn rate_at(&self, t: Time) -> f64 {
        let w = core::f64::consts::TAU / self.period_s;
        self.amplitude * (w * t.as_secs_f64() + self.phase).sin()
    }

    fn integrated(&self, t: Time) -> f64 {
        let w = core::f64::consts::TAU / self.period_s;
        // ∫ A sin(wτ+φ) dτ = -A/w (cos(wt+φ) - cos(φ))
        -self.amplitude / w * ((w * t.as_secs_f64() + self.phase).cos() - self.phase.cos())
    }
}

/// Unpredictable low-frequency oscillator wander as a sampled random walk.
///
/// The rate takes a Gaussian step every `step_s` seconds; between samples it
/// interpolates linearly. The whole path for a fixed horizon is drawn at
/// construction from the supplied RNG, so reads remain pure and the
/// simulation deterministic. Queries beyond the horizon clamp to the last
/// sample (and `debug_assert` so misconfigured horizons are caught in
/// tests).
#[derive(Debug, Clone)]
pub struct RandomWalkDrift {
    inner: PiecewiseLinearDrift,
    horizon: Time,
}

impl RandomWalkDrift {
    /// Draw a random-walk rate path.
    ///
    /// * `step_sigma` — standard deviation of the rate step per sample.
    /// * `step_s` — seconds between samples.
    /// * `horizon_s` — path length in seconds; queries beyond clamp.
    pub fn generate<R: Rng + ?Sized>(
        rng: &mut R,
        step_sigma: f64,
        step_s: f64,
        horizon_s: f64,
    ) -> Self {
        assert!(step_s > 0.0 && horizon_s > 0.0);
        let n = (horizon_s / step_s).ceil() as usize + 1;
        let mut rate = 0.0;
        let mut points = Vec::with_capacity(n);
        for i in 0..n {
            points.push((Time::from_secs_f64(i as f64 * step_s), rate));
            rate += gaussian(rng) * step_sigma;
        }
        RandomWalkDrift {
            horizon: Time::from_secs_f64((n - 1) as f64 * step_s),
            inner: PiecewiseLinearDrift::new(points),
        }
    }

    /// End of the sampled path.
    pub fn horizon(&self) -> Time {
        self.horizon
    }
}

impl DriftModel for RandomWalkDrift {
    fn rate_at(&self, t: Time) -> f64 {
        debug_assert!(t <= self.horizon, "random-walk drift queried past horizon");
        self.inner.rate_at(t.min(self.horizon))
    }

    fn integrated(&self, t: Time) -> f64 {
        debug_assert!(t <= self.horizon, "random-walk drift queried past horizon");
        self.inner.integrated(t.min(self.horizon))
    }
}

/// Sum of independent drift components (e.g. constant rate error + thermal
/// sinusoid + random-walk wander).
pub struct CompositeDrift {
    parts: Vec<Box<dyn DriftModel>>,
}

impl CompositeDrift {
    /// Compose drift components additively.
    pub fn new(parts: Vec<Box<dyn DriftModel>>) -> Self {
        CompositeDrift { parts }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True if there are no components (the ideal clock).
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl fmt::Debug for CompositeDrift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompositeDrift")
            .field("parts", &self.parts.len())
            .finish()
    }
}

impl DriftModel for CompositeDrift {
    fn rate_at(&self, t: Time) -> f64 {
        self.parts.iter().map(|p| p.rate_at(t)).sum()
    }

    fn integrated(&self, t: Time) -> f64 {
        self.parts.iter().map(|p| p.integrated(t)).sum()
    }
}

/// A drift path shared between several clocks (e.g. the chips of one node,
/// whose timestamp counters derive from the same motherboard oscillator and
/// share its thermal environment). Sharing the path is what makes
/// *relative* intra-node deviations tiny while the node as a whole still
/// wanders against the rest of the cluster — the paper's §IV intra-node
/// finding.
impl DriftModel for std::sync::Arc<dyn DriftModel> {
    fn rate_at(&self, t: Time) -> f64 {
        (**self).rate_at(t)
    }

    fn integrated(&self, t: Time) -> f64 {
        (**self).integrated(t)
    }
}

/// Standard normal sample via Box–Muller (avoids a dependency on
/// `rand_distr`, which is not in the approved crate set). Shared by the
/// whole workspace for jitter and spread sampling.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(s: f64) -> Time {
        Time::from_secs_f64(s)
    }

    #[test]
    fn constant_drift_integrates_linearly() {
        let d = ConstantDrift::new(2e-6);
        assert_eq!(d.rate_at(t(5.0)), 2e-6);
        assert!((d.integrated(t(100.0)) - 2e-4).abs() < 1e-15);
        assert!((d.integrated(t(-10.0)) + 2e-5).abs() < 1e-15);
    }

    #[test]
    fn piecewise_linear_interpolates() {
        let d = PiecewiseLinearDrift::new(vec![(t(0.0), 0.0), (t(10.0), 1e-6)]);
        assert!((d.rate_at(t(5.0)) - 5e-7).abs() < 1e-18);
        // Integral of a ramp 0 → 1e-6 over 10 s is 5e-6 s.
        assert!((d.integrated(t(10.0)) - 5e-6).abs() < 1e-15);
        // Constant extrapolation after the last knot.
        assert!((d.rate_at(t(20.0)) - 1e-6).abs() < 1e-18);
        assert!((d.integrated(t(20.0)) - 1.5e-5).abs() < 1e-15);
        // Constant extrapolation before the first knot.
        assert!((d.rate_at(t(-5.0)) - 0.0).abs() < 1e-18);
        assert!((d.integrated(t(-5.0)) - 0.0).abs() < 1e-15);
    }

    #[test]
    fn piecewise_constant_is_a_step_function() {
        let d = PiecewiseLinearDrift::piecewise_constant(vec![
            (t(0.0), 1e-6),
            (t(100.0), 3e-6),
            (t(200.0), 2e-6),
        ]);
        assert_eq!(d.rate_at(t(50.0)), 1e-6);
        assert_eq!(d.rate_at(t(150.0)), 3e-6);
        assert_eq!(d.rate_at(t(250.0)), 2e-6);
        // 100 s at 1 ppm + 50 s at 3 ppm = 100e-6 + 150e-6.
        assert!((d.integrated(t(150.0)) - 2.5e-4).abs() < 1e-12);
    }

    #[test]
    fn integral_is_consistent_with_rate() {
        // Numerical check: d/dt integrated == rate for the interpolating model.
        let d = PiecewiseLinearDrift::new(vec![
            (t(0.0), -1e-6),
            (t(60.0), 4e-6),
            (t(120.0), 1e-6),
            (t(300.0), 2e-6),
        ]);
        let h = 1e-3;
        for &s in &[10.0, 59.9, 60.1, 119.0, 200.0, 299.0, 400.0] {
            let num = (d.integrated(t(s + h)) - d.integrated(t(s - h))) / (2.0 * h);
            assert!(
                (num - d.rate_at(t(s))).abs() < 1e-9,
                "derivative mismatch at {s}: {num} vs {}",
                d.rate_at(t(s))
            );
        }
    }

    #[test]
    fn sinusoid_has_bounded_integral() {
        let d = SinusoidalDrift::new(1e-7, 600.0, 0.3);
        let bound = 1e-7 * 600.0 / core::f64::consts::TAU * 2.0 + 1e-12;
        for i in 0..200 {
            let x = d.integrated(t(i as f64 * 37.0));
            assert!(x.abs() <= bound, "unbounded sinusoid integral {x}");
        }
        assert_eq!(d.integrated(Time::ZERO), 0.0);
    }

    #[test]
    fn random_walk_is_deterministic_per_seed() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = RandomWalkDrift::generate(&mut r1, 1e-9, 10.0, 600.0);
        let b = RandomWalkDrift::generate(&mut r2, 1e-9, 10.0, 600.0);
        for i in 0..60 {
            let q = t(i as f64 * 10.0);
            assert_eq!(a.rate_at(q), b.rate_at(q));
            assert_eq!(a.integrated(q), b.integrated(q));
        }
    }

    #[test]
    fn random_walk_scales_with_sigma() {
        let mut rng = StdRng::seed_from_u64(42);
        let d = RandomWalkDrift::generate(&mut rng, 0.0, 10.0, 600.0);
        for i in 0..60 {
            assert_eq!(d.rate_at(t(i as f64 * 10.0)), 0.0);
        }
    }

    #[test]
    fn composite_sums_components() {
        let d = CompositeDrift::new(vec![
            Box::new(ConstantDrift::new(1e-6)),
            Box::new(ConstantDrift::new(2e-6)),
        ]);
        assert!((d.rate_at(t(1.0)) - 3e-6).abs() < 1e-18);
        assert!((d.integrated(t(10.0)) - 3e-5).abs() < 1e-15);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_knots_panic() {
        let _ = PiecewiseLinearDrift::new(vec![(t(10.0), 0.0), (t(0.0), 1e-6)]);
    }
}
