//! A shared, monotonic **virtual clock** for deterministic simulation.
//!
//! Unlike the drift-model clocks in this crate — which answer "what would
//! this oscillator read at true time `t`?" — a [`VirtualClock`] *is* the
//! notion of true time for a simulated system: it starts at an origin and
//! moves only when the simulation explicitly advances it. Deadlines,
//! retry-backoff timers, and latency measurements taken against it are
//! therefore fully reproducible: the same schedule of `advance` calls
//! yields the same timestamps, bit for bit, on every run.
//!
//! The clock is an atomic picosecond counter, so any number of simulated
//! actors may read it without locking; advancing is a single atomic max,
//! so interleaved advances compose monotonically.

use crate::time::{Dur, Time};
use std::sync::atomic::{AtomicI64, Ordering};

/// A monotonic simulated clock: reads are free, time moves only on
/// [`advance`](VirtualClock::advance)/[`advance_to`](VirtualClock::advance_to).
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ps: AtomicI64,
}

impl VirtualClock {
    /// A clock at the origin ([`Time::ZERO`]).
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// A clock starting at `t`.
    pub fn starting_at(t: Time) -> Self {
        VirtualClock {
            now_ps: AtomicI64::new(t.as_ps()),
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> Time {
        Time::from_ps(self.now_ps.load(Ordering::Acquire))
    }

    /// Advance by `d` (negative spans are ignored — the clock never runs
    /// backwards) and return the new instant.
    pub fn advance(&self, d: Dur) -> Time {
        if d.as_ps() <= 0 {
            return self.now();
        }
        Time::from_ps(self.now_ps.fetch_add(d.as_ps(), Ordering::AcqRel) + d.as_ps())
    }

    /// Move the clock forward to `t` if `t` is in the future (monotonic
    /// max — a target already in the past leaves the clock untouched).
    /// Returns the clock's instant afterwards.
    pub fn advance_to(&self, t: Time) -> Time {
        Time::from_ps(
            self.now_ps
                .fetch_max(t.as_ps(), Ordering::AcqRel)
                .max(t.as_ps()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_origin_and_advances_monotonically() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Time::ZERO);
        assert_eq!(c.advance(Dur::from_us(5)), Time::from_us(5));
        assert_eq!(c.now(), Time::from_us(5));
        // Negative advance is a no-op.
        assert_eq!(c.advance(Dur::from_us(-3)), Time::from_us(5));
    }

    #[test]
    fn advance_to_is_a_monotonic_max() {
        let c = VirtualClock::starting_at(Time::from_ms(10));
        assert_eq!(c.advance_to(Time::from_ms(4)), Time::from_ms(10));
        assert_eq!(c.advance_to(Time::from_ms(25)), Time::from_ms(25));
        assert_eq!(c.now(), Time::from_ms(25));
    }
}
