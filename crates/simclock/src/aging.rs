//! Additional drift phenomena: crystal aging and clock steps.
//!
//! [`AgingDrift`] models the slow, roughly linear frequency change of a
//! quartz oscillator over its lifetime (fractions of a ppm per day — tiny
//! within one run, but exactly the kind of systematic curvature that a
//! single interpolation line mistakes for measurement error on long runs).
//!
//! [`SteppedClock`] models a clock that **jumps**: badly configured time
//! daemons (`ntpdate` in cron, manual `settimeofday`) step the system clock
//! instead of slewing it. The paper notes NTP "avoids jumps by changing the
//! drift"; a stepping clock is the pathological opposite and the harshest
//! failure-injection case for postmortem synchronisation — backward steps
//! even violate local monotonicity until the tracer's clamp hides them.

use crate::drift::DriftModel;
use crate::time::{Dur, Time};

/// Linearly aging oscillator: `rate(t) = rate0 + aging_per_s · t`.
#[derive(Debug, Clone, Copy)]
pub struct AgingDrift {
    /// Rate error at the origin (fractional).
    pub rate0: f64,
    /// Rate change per second (fractional/s); quartz ages on the order of
    /// `1e-12`–`1e-11` per second (≈0.03–0.3 ppm/year).
    pub aging_per_s: f64,
}

impl AgingDrift {
    /// A new aging model.
    pub fn new(rate0: f64, aging_per_s: f64) -> Self {
        AgingDrift { rate0, aging_per_s }
    }
}

impl DriftModel for AgingDrift {
    fn rate_at(&self, t: Time) -> f64 {
        self.rate0 + self.aging_per_s * t.as_secs_f64()
    }

    fn integrated(&self, t: Time) -> f64 {
        let s = t.as_secs_f64();
        self.rate0 * s + 0.5 * self.aging_per_s * s * s
    }
}

/// Discrete clock steps layered over a base drift: at each `(time, step)`
/// the reported local time jumps by `step` (positive or negative).
///
/// Expressed as a [`DriftModel`] whose integral is a step function; the
/// instantaneous rate between steps comes from the base model (the step
/// instants themselves have no defined rate — `rate_at` reports the base).
#[derive(Debug, Clone)]
pub struct SteppedClock<D: DriftModel> {
    base: D,
    /// Strictly increasing step instants with their jump sizes.
    steps: Vec<(Time, Dur)>,
}

impl<D: DriftModel> SteppedClock<D> {
    /// Wrap `base` with discrete steps.
    ///
    /// # Panics
    /// Panics if step instants are not strictly increasing.
    pub fn new(base: D, steps: Vec<(Time, Dur)>) -> Self {
        for w in steps.windows(2) {
            assert!(w[0].0 < w[1].0, "step instants must be strictly increasing");
        }
        SteppedClock { base, steps }
    }

    /// Sum of all steps at or before `t`.
    pub fn steps_before(&self, t: Time) -> Dur {
        self.steps
            .iter()
            .take_while(|&&(at, _)| at <= t)
            .map(|&(_, d)| d)
            .fold(Dur::ZERO, |a, b| a + b)
    }
}

impl<D: DriftModel> DriftModel for SteppedClock<D> {
    fn rate_at(&self, t: Time) -> f64 {
        self.base.rate_at(t)
    }

    fn integrated(&self, t: Time) -> f64 {
        self.base.integrated(t) + self.steps_before(t).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{SimClock, TimerKind};
    use crate::drift::ConstantDrift;
    use crate::noise::NoiseSpec;
    use std::sync::Arc;

    fn t(s: f64) -> Time {
        Time::from_secs_f64(s)
    }

    #[test]
    fn aging_integral_is_quadratic() {
        let d = AgingDrift::new(1e-6, 2e-11);
        assert!((d.rate_at(t(0.0)) - 1e-6).abs() < 1e-18);
        assert!((d.rate_at(t(1000.0)) - (1e-6 + 2e-8)).abs() < 1e-15);
        // ∫ = 1e-6·1000 + 0.5·2e-11·1000² = 1e-3 + 1e-5.
        assert!((d.integrated(t(1000.0)) - 1.01e-3).abs() < 1e-12);
    }

    #[test]
    fn aging_defeats_a_straight_line() {
        // Sample the offset at three points: the midpoint deviates from the
        // chord — a single interpolation line must mis-fit.
        let d = AgingDrift::new(0.0, 1e-9);
        let (a, b, c) = (
            d.integrated(t(0.0)),
            d.integrated(t(1800.0)),
            d.integrated(t(3600.0)),
        );
        let chord_mid = 0.5 * (a + c);
        let curvature = (chord_mid - b).abs();
        // 0.5·1e-9·(1800²·... ) => ~1.6 ms of mid-run error.
        assert!(curvature > 1e-3, "curvature {curvature}");
    }

    #[test]
    fn steps_accumulate() {
        let s = SteppedClock::new(
            ConstantDrift::zero(),
            vec![
                (t(10.0), Dur::from_ms(5)),
                (t(20.0), Dur::from_ms(-8)),
            ],
        );
        assert_eq!(s.steps_before(t(5.0)), Dur::ZERO);
        assert_eq!(s.steps_before(t(10.0)), Dur::from_ms(5));
        assert_eq!(s.steps_before(t(25.0)), Dur::from_ms(-3));
        assert!((s.integrated(t(25.0)) + 3e-3).abs() < 1e-12);
    }

    #[test]
    fn backward_step_is_hidden_by_the_tracer_clamp() {
        // A clock stepped back 1 ms: raw samples go backward, but a
        // single-reader `read()` stream stays monotone — exactly what a
        // tracing library's clamp does.
        let stepped = SteppedClock::new(
            ConstantDrift::zero(),
            vec![(t(10.0), Dur::from_ms(-1))],
        );
        let mut c = SimClock::new(
            TimerKind::Gettimeofday,
            Dur::ZERO,
            Arc::new(stepped),
            NoiseSpec::noiseless(),
            0,
        );
        let before = c.read(t(9.9999));
        let after = c.read(t(10.0001));
        assert!(after >= before, "clamped stream must not go backward");
        // The unclamped sample shows the truth: time went backward.
        assert!(c.sample(t(10.0001)) < before);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_steps_panic() {
        let _ = SteppedClock::new(
            ConstantDrift::zero(),
            vec![(t(20.0), Dur::from_ms(1)), (t(10.0), Dur::from_ms(1))],
        );
    }
}
