//! Fixed-point time arithmetic used across the whole workspace.
//!
//! Simulated *true time* as well as local clock readings are represented in
//! integer **picoseconds** (`i64`). Picosecond resolution leaves comfortable
//! headroom below the smallest physical effects we model (sub-nanosecond
//! drift accumulation per event) while an `i64` still spans ±106 days, far
//! beyond the paper's longest 3600 s measurement runs. Using a fixed-point
//! integer instead of `f64` keeps comparisons exact and event ordering
//! deterministic.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// Picoseconds per second.
pub const PS_PER_SEC: i64 = 1_000_000_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: i64 = 1_000_000_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: i64 = 1_000_000;
/// Picoseconds per nanosecond.
pub const PS_PER_NS: i64 = 1_000;

/// An instant on some time axis (true time or a local clock), in picoseconds
/// since that axis' origin. May be negative: a worker clock that starts
/// behind the master produces negative local readings near the origin.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Time(i64);

/// A signed span between two [`Time`] values, in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Dur(i64);

impl Time {
    /// The origin of the axis.
    pub const ZERO: Time = Time(0);
    /// Largest representable instant.
    pub const MAX: Time = Time(i64::MAX);
    /// Smallest representable instant.
    pub const MIN: Time = Time(i64::MIN);

    /// Instant from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: i64) -> Self {
        Time(ps)
    }

    /// Instant from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: i64) -> Self {
        Time(ns * PS_PER_NS)
    }

    /// Instant from microseconds.
    #[inline]
    pub const fn from_us(us: i64) -> Self {
        Time(us * PS_PER_US)
    }

    /// Instant from milliseconds.
    #[inline]
    pub const fn from_ms(ms: i64) -> Self {
        Time(ms * PS_PER_MS)
    }

    /// Instant from whole seconds.
    #[inline]
    pub const fn from_secs(s: i64) -> Self {
        Time(s * PS_PER_SEC)
    }

    /// Instant from fractional seconds (rounded to the nearest picosecond).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        Time((s * PS_PER_SEC as f64).round() as i64)
    }

    /// Raw picoseconds.
    #[inline]
    pub const fn as_ps(self) -> i64 {
        self.0
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Span from the origin to this instant.
    #[inline]
    pub const fn since_origin(self) -> Dur {
        Dur(self.0)
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Element-wise minimum.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Saturating addition of a span.
    #[inline]
    pub fn saturating_add(self, d: Dur) -> Time {
        Time(self.0.saturating_add(d.0))
    }

    /// Saturating subtraction of a span.
    #[inline]
    pub fn saturating_sub(self, d: Dur) -> Time {
        Time(self.0.saturating_sub(d.0))
    }

    /// Saturating span from `earlier` to `self` (`self - earlier`, clamped
    /// to the representable range instead of wrapping or panicking).
    ///
    /// The CLC kernels run over tenant-supplied timestamps, which may sit
    /// at the `i64` edges; plain `Time - Time` debug-panics there.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// Round down to an integer multiple of `res` (no-op for `res <= 1 ps`).
    ///
    /// Models the finite resolution of a timer: `gettimeofday()` cannot
    /// report below one microsecond, a 3 GHz timestamp counter below one
    /// third of a nanosecond.
    #[inline]
    pub fn quantize(self, res: Dur) -> Time {
        if res.0 <= 1 {
            return self;
        }
        Time(self.0.div_euclid(res.0) * res.0)
    }
}

impl Dur {
    /// Zero-length span.
    pub const ZERO: Dur = Dur(0);
    /// Largest representable span.
    pub const MAX: Dur = Dur(i64::MAX);

    /// Span from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: i64) -> Self {
        Dur(ps)
    }

    /// Span from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: i64) -> Self {
        Dur(ns * PS_PER_NS)
    }

    /// Span from microseconds.
    #[inline]
    pub const fn from_us(us: i64) -> Self {
        Dur(us * PS_PER_US)
    }

    /// Span from milliseconds.
    #[inline]
    pub const fn from_ms(ms: i64) -> Self {
        Dur(ms * PS_PER_MS)
    }

    /// Span from whole seconds.
    #[inline]
    pub const fn from_secs(s: i64) -> Self {
        Dur(s * PS_PER_SEC)
    }

    /// Span from fractional seconds (rounded to the nearest picosecond).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        Dur((s * PS_PER_SEC as f64).round() as i64)
    }

    /// Span from fractional microseconds.
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        Dur((us * PS_PER_US as f64).round() as i64)
    }

    /// Raw picoseconds.
    #[inline]
    pub const fn as_ps(self) -> i64 {
        self.0
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Absolute value.
    #[inline]
    pub const fn abs(self) -> Dur {
        Dur(self.0.abs())
    }

    /// True if the span is negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    /// Element-wise minimum.
    #[inline]
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }

    /// Multiply by a dimensionless factor, rounding to the nearest ps.
    #[inline]
    pub fn scale(self, f: f64) -> Dur {
        Dur((self.0 as f64 * f).round() as i64)
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Dur) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign<Dur> for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl SubAssign for Dur {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}

impl Neg for Dur {
    type Output = Dur;
    #[inline]
    fn neg(self) -> Dur {
        Dur(-self.0)
    }
}

impl Mul<i64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: i64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Div<i64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: i64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T[{:.9}s]", self.as_secs_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}", self.as_secs_f64())
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D[{:.3}us]", self.as_us_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Time::from_secs(2), Time::from_ms(2000));
        assert_eq!(Time::from_ms(3), Time::from_us(3000));
        assert_eq!(Time::from_us(5), Time::from_ns(5000));
        assert_eq!(Time::from_ns(7), Time::from_ps(7000));
        assert_eq!(Dur::from_secs(1), Dur::from_ps(PS_PER_SEC));
    }

    #[test]
    fn float_round_trip() {
        let t = Time::from_secs_f64(1_234.567_890_123);
        assert!((t.as_secs_f64() - 1_234.567_890_123).abs() < 1e-9);
        let d = Dur::from_us_f64(4.29);
        assert!((d.as_us_f64() - 4.29).abs() < 1e-6);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_secs(10);
        let d = Dur::from_us(250);
        assert_eq!((t + d) - t, d);
        assert_eq!(t - d + d, t);
        assert_eq!(d * 4, Dur::from_ms(1));
        assert_eq!(Dur::from_ms(1) / 4, d);
        assert_eq!(-d + d, Dur::ZERO);
    }

    #[test]
    fn quantize_floors_to_grid() {
        let res = Dur::from_us(1);
        let t = Time::from_ns(1999);
        assert_eq!(t.quantize(res), Time::from_us(1));
        // Negative instants still land on the grid below.
        let neg = Time::from_ns(-500);
        assert_eq!(neg.quantize(res), Time::from_us(-1));
        // Sub-picosecond resolution is a no-op.
        assert_eq!(t.quantize(Dur::from_ps(1)), t);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Time::from_us(1);
        let b = Time::from_us(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(Dur::from_us(-3).abs(), Dur::from_us(3));
        assert!(Dur::from_ns(-1).is_negative());
    }

    #[test]
    fn scale_rounds() {
        let d = Dur::from_us(10);
        assert_eq!(d.scale(0.5), Dur::from_us(5));
        assert_eq!(d.scale(1e-6), Dur::from_ps(10));
    }

    #[test]
    fn saturating_ops_clamp_at_the_edges() {
        assert_eq!(Time::MAX.saturating_add(Dur::from_ps(1)), Time::MAX);
        assert_eq!(Time::MIN.saturating_sub(Dur::from_ps(1)), Time::MIN);
        assert_eq!(Time::MAX.saturating_since(Time::MIN), Dur::MAX);
        assert_eq!(
            Time::MIN.saturating_since(Time::MAX),
            Dur::from_ps(i64::MIN)
        );
        assert_eq!(Dur::MAX.saturating_add(Dur::from_ps(1)), Dur::MAX);
        assert_eq!(
            Dur::from_ps(i64::MIN).saturating_sub(Dur::from_ps(1)),
            Dur::from_ps(i64::MIN)
        );
        // Away from the edges the saturating forms are the plain ops.
        let t = Time::from_us(5);
        let d = Dur::from_us(2);
        assert_eq!(t.saturating_add(d), t + d);
        assert_eq!(t.saturating_sub(d), t - d);
        assert_eq!(t.saturating_since(Time::from_us(1)), Dur::from_us(4));
    }
}
