//! What must be true of the service, at every step and at quiescence.
//!
//! Per-step invariants are cheap accounting checks run after every
//! scheduling decision: the metrics gauges must agree with the ground
//! truth read under the queue lock, never go negative, and never exceed
//! the configured budget, and the admitted-job population must be
//! conserved across queue, executors, and terminal counters.
//!
//! Quiescence invariants run once everything is drained: no job may be
//! lost or double-counted, observed scheduler events must reconcile with
//! the counters, and — the strongest check — every job that *completed*
//! must be bit-identical to running the same input through the pipeline
//! directly, faults and all, while every pipeline *failure* must match
//! the direct call's error kind. The service adds scheduling, never
//! arithmetic; this is where that claim is enforced under chaos.

use crate::workload::WorkItem;
use clocksync::{
    synchronize_stream_incremental_with_cancel, synchronize_stream_with_cancel,
    synchronize_with_cancel, CancelToken, PipelineError,
};
use syncd::{Counter, JobError, JobInput, JobOutcome, JobSpec, MetricsSnapshot};
use tracefmt::Trace;

/// One invariant violation: where the run was and what broke.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Scheduling step at which the check failed (steps count applied
    /// decisions; drain steps keep counting).
    pub step: usize,
    /// Human-readable description of the broken invariant.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "step {}: {}", self.step, self.message)
    }
}

/// Service state read outside the metrics registry (under the queue
/// lock), for cross-checking the gauges.
pub struct GroundTruth {
    /// Bytes currently charged against the budget.
    pub admitted_bytes: u64,
    /// Jobs currently queued.
    pub queue_len: usize,
    /// Jobs currently held by executors (dispatched or parked).
    pub held_jobs: usize,
    /// The configured memory budget.
    pub budget: u64,
    /// Number of logical executors.
    pub executors: usize,
}

/// The cheap per-step checks. Returns the first broken invariant.
pub fn check_step(m: &MetricsSnapshot, truth: &GroundTruth) -> Option<String> {
    if m.admitted_bytes < 0 {
        return Some(format!("admitted_bytes gauge negative: {}", m.admitted_bytes));
    }
    if m.admitted_bytes as u64 != truth.admitted_bytes {
        return Some(format!(
            "admitted_bytes gauge {} != ground truth {}",
            m.admitted_bytes, truth.admitted_bytes
        ));
    }
    if truth.admitted_bytes > truth.budget {
        return Some(format!(
            "budget exceeded: {} admitted > {} budget",
            truth.admitted_bytes, truth.budget
        ));
    }
    if m.queue_depth < 0 || m.queue_depth as usize != truth.queue_len {
        return Some(format!(
            "queue_depth gauge {} != ground truth {}",
            m.queue_depth, truth.queue_len
        ));
    }
    if m.running_jobs < 0 || m.running_jobs as usize != truth.held_jobs {
        return Some(format!(
            "running gauge {} != executors holding jobs {}",
            m.running_jobs, truth.held_jobs
        ));
    }
    if m.running_jobs as usize > truth.executors {
        return Some(format!(
            "running gauge {} exceeds executor count {}",
            m.running_jobs, truth.executors
        ));
    }
    let accepted = m.counter(Counter::Accepted);
    let settled = m.counter(Counter::Completed) + m.counter(Counter::Failed);
    let in_flight = (truth.queue_len + truth.held_jobs) as u64;
    if accepted != settled + in_flight {
        return Some(format!(
            "job conservation broken: accepted {accepted} != settled {settled} + in-flight {in_flight}"
        ));
    }
    if m.counter(Counter::ServiceCrashes) != 0 {
        return Some("a panic escaped attempt isolation (ServiceCrashes != 0)".to_string());
    }
    None
}

/// Scheduler-event tallies the harness observed, reconciled against the
/// metrics counters at quiescence.
pub struct ObservedEvents {
    /// `StepEvent::BackoffStarted` events seen.
    pub backoffs: u64,
    /// Crash faults actually delivered at a pipeline checkpoint.
    pub crashes_delivered: u64,
}

/// Everything the checker tracked about one submitted job.
pub struct TrackedOutcome<'a> {
    /// The workload item the job came from.
    pub item: &'a WorkItem,
    /// The job's resolved outcome (`None` = lost job, itself a violation).
    pub outcome: Option<JobOutcome>,
    /// Whether the job had a deadline.
    pub had_deadline: bool,
    /// Whether anyone (submitter decision or injected fault) requested
    /// cancellation.
    pub cancel_requested: bool,
    /// Crash faults delivered while this job was being attempted.
    pub crashes: u64,
}

/// What a direct pipeline call on the identical input produces.
pub enum Oracle {
    /// The pipeline succeeds with this corrected trace.
    Success(Box<Trace>),
    /// The pipeline fails with this error kind.
    Error(&'static str),
}

/// A stable label for each pipeline error family.
pub fn error_kind(e: &PipelineError) -> &'static str {
    match e {
        PipelineError::BadMeasurements(_) => "bad-measurements",
        PipelineError::BadTrace(_) => "bad-trace",
        PipelineError::Clc(_) => "clc",
        PipelineError::Codec(_) => "codec",
        PipelineError::Cancelled => "cancelled",
        PipelineError::Unsupported(_) => "unsupported",
    }
}

/// Run the job's input through the pipeline directly — no service, no
/// faults, no cancellation — with the worker count clamped exactly as the
/// service clamps it.
pub fn run_oracle(spec: &JobSpec, fair_share: usize) -> Oracle {
    let mut pipeline = spec.pipeline.clone();
    if let Some(par) = pipeline.parallel.as_mut() {
        par.workers = par.workers.clamp(1, fair_share.max(1));
    }
    let fin = spec.fin.as_deref();
    let lmin = &*spec.lmin;
    let cancel = CancelToken::none();
    let result = match &spec.input {
        JobInput::Trace(trace) => {
            let mut work = trace.clone();
            synchronize_with_cancel(&mut work, &spec.init, fin, lmin, &pipeline, &cancel)
                .map(|_| work)
        }
        JobInput::Stream(chunks) => synchronize_stream_with_cancel(
            chunks.iter().map(|c| c.as_slice()),
            &spec.init,
            fin,
            lmin,
            &pipeline,
            &cancel,
        )
        .map(|(trace, _)| trace),
        JobInput::StreamIncremental {
            chunks,
            window_events,
        } => {
            let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
            synchronize_stream_incremental_with_cancel(
                &refs,
                &spec.init,
                fin,
                lmin,
                &pipeline,
                *window_events,
                &cancel,
            )
            // The oracle compares *traces*, so decode the emitted frames
            // the same way the checker decodes the job's frames below.
            .and_then(|(frames, _)| {
                tracefmt::io::from_binary_columnar(frames.concat().into())
                    .map_err(PipelineError::Codec)
            })
        }
    };
    match result {
        Ok(trace) => Oracle::Success(Box::new(trace)),
        Err(e) => Oracle::Error(error_kind(&e)),
    }
}

pub(crate) fn traces_identical(a: &Trace, b: &Trace) -> bool {
    a.procs.len() == b.procs.len()
        && a.procs.iter().zip(&b.procs).all(|(p, q)| {
            p.events.len() == q.events.len()
                && p.events.iter().zip(&q.events).all(|(x, y)| x.time == y.time)
        })
}

/// Check one resolved job against its oracle and its fault history.
/// Returns the first broken invariant.
pub fn check_job(id: u64, t: &TrackedOutcome<'_>, fair_share: usize) -> Option<String> {
    let outcome = match &t.outcome {
        Some(o) => o,
        None => return Some(format!("job {id} lost: submitted but never resolved")),
    };
    match outcome {
        Ok(success) => {
            if success.attempts == 0 {
                return Some(format!("job {id} completed with zero attempts"));
            }
            // An incremental job's corrected output is its emitted frames;
            // decode them so the same trace comparison applies.
            let got = match &t.item.spec.input {
                JobInput::StreamIncremental { .. } => {
                    match tracefmt::io::from_binary_columnar(success.frames.concat().into()) {
                        Ok(trace) => trace,
                        Err(e) => {
                            return Some(format!(
                                "job {id} completed but its emitted frames do not decode: {e}"
                            ));
                        }
                    }
                }
                _ => success.trace.clone(),
            };
            match run_oracle(&t.item.spec, fair_share) {
                Oracle::Success(direct) => {
                    if !traces_identical(&got, &direct) {
                        return Some(format!(
                            "job {id} completed but its trace differs from the direct pipeline call"
                        ));
                    }
                }
                Oracle::Error(kind) => {
                    return Some(format!(
                        "job {id} completed but the direct pipeline call fails with {kind}"
                    ));
                }
            }
        }
        Err(failure) => match &failure.error {
            JobError::Pipeline(e) => {
                let got = error_kind(e);
                match run_oracle(&t.item.spec, fair_share) {
                    Oracle::Error(want) if want == got => {}
                    Oracle::Error(want) => {
                        return Some(format!(
                            "job {id} failed with pipeline error {got} but the direct call fails with {want}"
                        ));
                    }
                    Oracle::Success(_) => {
                        return Some(format!(
                            "job {id} failed with pipeline error {got} but the direct call succeeds"
                        ));
                    }
                }
            }
            JobError::Panicked(_) => {
                if t.crashes == 0 {
                    return Some(format!(
                        "job {id} reported a panic but no crash fault was delivered to it"
                    ));
                }
            }
            JobError::Cancelled => {
                if !t.cancel_requested {
                    return Some(format!(
                        "job {id} reported Cancelled but nobody requested cancellation"
                    ));
                }
            }
            JobError::DeadlineExceeded => {
                if !t.had_deadline {
                    return Some(format!(
                        "job {id} reported DeadlineExceeded but had no deadline"
                    ));
                }
            }
            JobError::Shutdown => {}
        },
    }
    None
}

/// The counter-reconciliation checks at quiescence (job-level checks run
/// separately via [`check_job`]).
pub fn check_quiescence(
    m: &MetricsSnapshot,
    truth: &GroundTruth,
    observed: &ObservedEvents,
) -> Option<String> {
    if truth.queue_len != 0 || truth.held_jobs != 0 {
        return Some(format!(
            "not quiescent: {} queued, {} held",
            truth.queue_len, truth.held_jobs
        ));
    }
    if truth.admitted_bytes != 0 {
        return Some(format!(
            "budget leak: {} bytes still admitted after drain",
            truth.admitted_bytes
        ));
    }
    let accepted = m.counter(Counter::Accepted);
    let settled = m.counter(Counter::Completed) + m.counter(Counter::Failed);
    if accepted != settled {
        return Some(format!(
            "accepted {accepted} != completed+failed {settled} at quiescence"
        ));
    }
    if m.counter(Counter::Retried) != observed.backoffs {
        return Some(format!(
            "Retried counter {} != observed backoff events {}",
            m.counter(Counter::Retried),
            observed.backoffs
        ));
    }
    if m.counter(Counter::JobPanics) != observed.crashes_delivered {
        return Some(format!(
            "JobPanics counter {} != delivered crash faults {}",
            m.counter(Counter::JobPanics),
            observed.crashes_delivered
        ));
    }
    if m.counter(Counter::ServiceCrashes) != 0 {
        return Some("a panic escaped attempt isolation (ServiceCrashes != 0)".to_string());
    }
    None
}
