//! The decision trace: every choice a simulated schedule makes, as data.
//!
//! A campaign run *records* each scheduling decision the seeded PRNG
//! makes; the resulting [`Decision`] list, together with the seed (which
//! fixes the workload), reproduces the run exactly. Shrinking exploits
//! the same property in the other direction: replaying a *prefix* of a
//! failing trace and letting the deterministic drain finish the run is
//! itself a valid schedule, so the minimal failing prefix is found by
//! replaying shorter and shorter prefixes.
//!
//! Traces serialize to a small tagged binary format (`SIMT`) so a failing
//! schedule can be written next to the campaign output and replayed from
//! the command line. Decoding is strict: truncation, unknown tags, and
//! trailing bytes are typed errors, never panics — a shrinker must be
//! able to feed the codec garbage safely.

/// What an injected fault does when its pipeline checkpoint arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Arm the job's cancel flag (a submitter cancelling mid-attempt).
    Cancel,
    /// Panic at the checkpoint (a worker crash mid-replay; the service's
    /// `catch_unwind` isolation must contain it).
    Crash,
    /// Advance the virtual clock by `ns` (a stall that may trip the
    /// job's deadline mid-attempt).
    Jump {
        /// Nanoseconds to advance.
        ns: u64,
    },
}

/// One scheduling decision of a simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Submit the next not-yet-submitted workload job.
    Submit,
    /// Step executor `exec` with no fault armed.
    Exec {
        /// Executor index.
        exec: u8,
    },
    /// Step executor `exec` with a one-shot fault armed: skip `skip`
    /// pipeline checkpoints, then apply `op`.
    ExecFault {
        /// Executor index.
        exec: u8,
        /// Checkpoints to let pass before the fault fires.
        skip: u8,
        /// The fault to apply.
        op: FaultOp,
    },
    /// Cancel the `nth` (0-based, submission order) still-unresolved job
    /// from outside — the submitter giving up on a queued or running job.
    Cancel {
        /// Index into the submitted-and-unresolved set.
        nth: u16,
    },
    /// Advance the virtual clock by `ns`.
    Advance {
        /// Nanoseconds to advance.
        ns: u64,
    },
    /// Begin service shutdown (drain if `abandon` is false, abandon the
    /// queue if true).
    Shutdown {
        /// Fail queued jobs instead of draining them.
        abandon: bool,
    },
}

const MAGIC: &[u8; 4] = b"SIMT";
const VERSION: u8 = 1;

const TAG_SUBMIT: u8 = 0;
const TAG_EXEC: u8 = 1;
const TAG_EXEC_FAULT: u8 = 2;
const TAG_CANCEL: u8 = 3;
const TAG_ADVANCE: u8 = 4;
const TAG_SHUTDOWN: u8 = 5;

const OP_CANCEL: u8 = 0;
const OP_CRASH: u8 = 1;
const OP_JUMP: u8 = 2;

/// Why a trace failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The buffer does not start with `SIMT`.
    BadMagic,
    /// A format version this build does not understand.
    BadVersion(u8),
    /// The buffer ended mid-field (truncated trace).
    UnexpectedEof,
    /// An unknown decision or fault-op tag.
    UnknownTag(u8),
    /// Well-formed decisions followed by leftover bytes.
    TrailingBytes(usize),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a SIMT decision trace"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::UnexpectedEof => write!(f, "trace truncated mid-field"),
            TraceError::UnknownTag(t) => write!(f, "unknown tag {t:#04x}"),
            TraceError::TrailingBytes(n) => write!(f, "{n} trailing bytes after trace"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Serialize a seed + decision list to the `SIMT` binary format.
pub fn encode_trace(seed: u64, decisions: &[Decision]) -> Vec<u8> {
    let mut out = Vec::with_capacity(17 + decisions.len() * 4);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&seed.to_le_bytes());
    out.extend_from_slice(&(decisions.len() as u32).to_le_bytes());
    for d in decisions {
        match *d {
            Decision::Submit => out.push(TAG_SUBMIT),
            Decision::Exec { exec } => {
                out.push(TAG_EXEC);
                out.push(exec);
            }
            Decision::ExecFault { exec, skip, op } => {
                out.push(TAG_EXEC_FAULT);
                out.push(exec);
                out.push(skip);
                match op {
                    FaultOp::Cancel => out.push(OP_CANCEL),
                    FaultOp::Crash => out.push(OP_CRASH),
                    FaultOp::Jump { ns } => {
                        out.push(OP_JUMP);
                        out.extend_from_slice(&ns.to_le_bytes());
                    }
                }
            }
            Decision::Cancel { nth } => {
                out.push(TAG_CANCEL);
                out.extend_from_slice(&nth.to_le_bytes());
            }
            Decision::Advance { ns } => {
                out.push(TAG_ADVANCE);
                out.extend_from_slice(&ns.to_le_bytes());
            }
            Decision::Shutdown { abandon } => {
                out.push(TAG_SHUTDOWN);
                out.push(abandon as u8);
            }
        }
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let end = self.pos.checked_add(n).ok_or(TraceError::UnexpectedEof)?;
        if end > self.buf.len() {
            return Err(TraceError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, TraceError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, TraceError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, TraceError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, TraceError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Parse a `SIMT` buffer back into its seed and decision list.
pub fn decode_trace(bytes: &[u8]) -> Result<(u64, Vec<Decision>), TraceError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(TraceError::BadVersion(version));
    }
    let seed = r.u64()?;
    let count = r.u32()? as usize;
    let mut decisions = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let d = match r.u8()? {
            TAG_SUBMIT => Decision::Submit,
            TAG_EXEC => Decision::Exec { exec: r.u8()? },
            TAG_EXEC_FAULT => {
                let exec = r.u8()?;
                let skip = r.u8()?;
                let op = match r.u8()? {
                    OP_CANCEL => FaultOp::Cancel,
                    OP_CRASH => FaultOp::Crash,
                    OP_JUMP => FaultOp::Jump { ns: r.u64()? },
                    t => return Err(TraceError::UnknownTag(t)),
                };
                Decision::ExecFault { exec, skip, op }
            }
            TAG_CANCEL => Decision::Cancel { nth: r.u16()? },
            TAG_ADVANCE => Decision::Advance { ns: r.u64()? },
            TAG_SHUTDOWN => Decision::Shutdown {
                abandon: r.u8()? != 0,
            },
            t => return Err(TraceError::UnknownTag(t)),
        };
        decisions.push(d);
    }
    if r.pos != bytes.len() {
        return Err(TraceError::TrailingBytes(bytes.len() - r.pos));
    }
    Ok((seed, decisions))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Decision> {
        vec![
            Decision::Submit,
            Decision::Exec { exec: 2 },
            Decision::ExecFault { exec: 0, skip: 3, op: FaultOp::Crash },
            Decision::ExecFault { exec: 1, skip: 0, op: FaultOp::Jump { ns: 1_000_000 } },
            Decision::Cancel { nth: 7 },
            Decision::Advance { ns: 42 },
            Decision::Shutdown { abandon: true },
        ]
    }

    #[test]
    fn round_trip_is_identity() {
        let encoded = encode_trace(0xDEAD_BEEF, &sample());
        let (seed, decoded) = decode_trace(&encoded).unwrap();
        assert_eq!(seed, 0xDEAD_BEEF);
        assert_eq!(decoded, sample());
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let encoded = encode_trace(1, &sample());
        for cut in 0..encoded.len() {
            let err = decode_trace(&encoded[..cut]).unwrap_err();
            assert!(
                matches!(err, TraceError::UnexpectedEof | TraceError::BadMagic),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_version_tag_and_trailing_are_rejected() {
        assert_eq!(decode_trace(b"NOPE\x01").unwrap_err(), TraceError::BadMagic);

        let mut v = encode_trace(1, &[]);
        v[4] = 9;
        assert_eq!(decode_trace(&v).unwrap_err(), TraceError::BadVersion(9));

        let mut v = encode_trace(1, &[Decision::Submit]);
        let tag_at = v.len() - 1;
        v[tag_at] = 0xFF;
        assert_eq!(decode_trace(&v).unwrap_err(), TraceError::UnknownTag(0xFF));

        let mut v = encode_trace(1, &[Decision::Submit]);
        v.push(0);
        assert_eq!(decode_trace(&v).unwrap_err(), TraceError::TrailingBytes(1));
    }
}
