//! Seeded workload generation: the jobs a simulated campaign runs.
//!
//! Everything about the workload — trace shapes, clock skews, stream vs.
//! in-memory inputs, byte-level poisoning, priorities, deadlines, retry
//! budgets — is drawn from one PRNG seeded with the campaign seed alone.
//! The *schedule* draws from a different stream (see
//! [`harness`](crate::harness)), so shrinking a failing schedule never
//! changes which jobs exist.

use clocksync::{OffsetMeasurement, OnlineSpec, ParallelConfig, PipelineConfig, SyncMethod};
use onlinesync::NetworkConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simclock::{Dur, Time};
use std::sync::Arc;
use std::time::Duration;
use syncd::{chunked, Fault, FaultInjector, JobInput, JobSpec, Priority};
use tracefmt::io::{to_binary_columnar_blocked, to_binary_columnar_v3_blocked};
use tracefmt::{EventKind, MinLatency, Rank, Tag, Trace, UniformLatency};
use workloads::churn_scenario;

/// One workload job plus what the invariant checker needs to know about
/// it.
pub struct WorkItem {
    /// The job. Submission clones it; the original stays with the checker
    /// so the direct-pipeline oracle runs the *identical* input.
    pub spec: JobSpec,
    /// Whether the input bytes were deliberately corrupted.
    pub poisoned: bool,
}

type Measurements = Vec<Option<OffsetMeasurement>>;

/// A causally valid multi-rank trace with skewed linear clocks, plus
/// matching init/finalize offset measurements (same construction as the
/// syncd benches, scaled down for simulation).
pub(crate) fn job_trace(
    rng: &mut StdRng,
    procs: usize,
    msgs: usize,
) -> (Trace, Measurements, Measurements) {
    let offsets: Vec<i64> = (0..procs)
        .map(|p| if p == 0 { 0 } else { rng.gen_range(-400i64..400) })
        .collect();
    let local = |p: usize, t: i64| t + offsets[p];
    let mut trace = Trace::for_ranks(procs);
    let mut now = vec![0i64; procs];
    for m in 0..msgs {
        let from = rng.gen_range(0usize..procs);
        let to = (from + rng.gen_range(1usize..procs)) % procs;
        let send_true = now[from] + rng.gen_range(5i64..40);
        now[from] = send_true;
        let recv_true = send_true.max(now[to]) + 4 + rng.gen_range(0i64..20);
        now[to] = recv_true;
        trace.procs[from].push(
            Time::from_us(local(from, send_true)),
            EventKind::Send { to: Rank(to as u32), tag: Tag(m as u32), bytes: 64 },
        );
        trace.procs[to].push(
            Time::from_us(local(to, recv_true)),
            EventKind::Recv { from: Rank(from as u32), tag: Tag(m as u32), bytes: 64 },
        );
    }
    let end = now.iter().max().copied().unwrap_or(0) + 100;
    let measure = |p: usize, t: i64| -> Option<OffsetMeasurement> {
        (p != 0).then(|| OffsetMeasurement {
            worker_time: Time::from_us(local(p, t)),
            offset: Dur::from_us(-offsets[p] + 2),
            rtt: Dur::from_us(10),
        })
    };
    let init: Vec<_> = (0..procs).map(|p| measure(p, 0)).collect();
    let fin: Vec<_> = (0..procs).map(|p| measure(p, end)).collect();
    (trace, init, fin)
}

/// A churn-shaped job: dynamic membership, NTP islands, WAN links, and
/// per-node probe schedules, scaled down to simulation size.
fn churn_job(
    rng: &mut StdRng,
    msgs: usize,
) -> (Trace, Measurements, Measurements, Vec<Vec<OffsetMeasurement>>) {
    let cfg = NetworkConfig {
        nodes: rng.gen_range(4usize..7),
        horizon_s: 0.2,
        probe_interval_ms: 10.0,
        ..NetworkConfig::default()
    };
    let s = churn_scenario(cfg, msgs, rng.gen());
    let conv = |m: &workloads::ProbeMeasurement| OffsetMeasurement {
        worker_time: m.worker_time,
        offset: m.offset,
        rtt: m.rtt,
    };
    let init = s.init.iter().map(|m| m.as_ref().map(conv)).collect();
    let fin = s.fin.iter().map(|m| m.as_ref().map(conv)).collect();
    let probes = s.probes.iter().map(|ps| ps.iter().map(conv).collect()).collect();
    (s.trace, init, fin, probes)
}

/// Generate `jobs` work items from `seed`. Roughly a third arrive as
/// columnar streams (half `DTC2`, half the zero-copy `DTC3` variant), a
/// quarter of those poisoned at the byte level and a third of them run
/// through the incremental windowed engine with a small random window;
/// a fifth of the traces come from the dynamic-membership churn scenario
/// (NTP islands, joins/leaves, probe schedules), and a quarter of the
/// non-incremental jobs run the online sync method instead of the CLC;
/// jobs carry a mix of priorities, deadlines, retry-budget overrides, and
/// parallel pipeline configs.
pub fn generate(seed: u64, jobs: usize) -> Vec<WorkItem> {
    let mut rng = StdRng::seed_from_u64(seed);
    let lmin: Arc<dyn MinLatency + Send + Sync> = Arc::new(UniformLatency(Dur::from_us(4)));
    (0..jobs)
        .map(|_| {
            let procs = rng.gen_range(2usize..5);
            let msgs = rng.gen_range(3usize..32);
            let (trace, init, fin, probes) = if rng.gen_bool(0.2) {
                churn_job(&mut rng, msgs.max(8))
            } else {
                let (trace, init, fin) = job_trace(&mut rng, procs, msgs);
                // A two-probe schedule per worker (the init/fin anchors) is
                // enough for the online filter on these linear clocks.
                let probes = init
                    .iter()
                    .zip(&fin)
                    .map(|(i, f)| i.iter().chain(f.iter()).copied().collect())
                    .collect();
                (trace, init, fin, probes)
            };

            let as_stream = rng.gen_bool(1.0 / 3.0);
            let mut poisoned = false;
            let input = if as_stream {
                // Both wire versions go through the same negotiating
                // decoder; the campaign must poison both.
                let bytes = if rng.gen_bool(0.5) {
                    to_binary_columnar_v3_blocked(&trace, 16)
                } else {
                    to_binary_columnar_blocked(&trace, 16)
                };
                let mut chunks = chunked(&bytes, rng.gen_range(32usize..256));
                if rng.gen_bool(0.25) {
                    poisoned = true;
                    let fault = match rng.gen_range(0u8..3) {
                        0 => Fault::Truncate { at: rng.gen_range(0..bytes.len().max(1)) },
                        1 => Fault::FlipByte {
                            at: rng.gen_range(0..bytes.len().max(1)),
                            xor: rng.gen_range(1u8..=255),
                        },
                        _ => Fault::DropChunk { index: rng.gen_range(0..chunks.len().max(1)) },
                    };
                    chunks = FaultInjector::new().with(fault).apply(&chunks);
                }
                if rng.gen_bool(1.0 / 3.0) {
                    // The incremental engine must survive the same chaos
                    // as the batch stream path: both wire versions, byte
                    // poisoning, cancellation, deadlines, retries.
                    JobInput::StreamIncremental {
                        chunks,
                        window_events: rng.gen_range(1usize..64),
                    }
                } else {
                    JobInput::Stream(chunks)
                }
            } else {
                JobInput::Trace(trace)
            };

            let mut pipeline = PipelineConfig::default();
            if rng.gen_bool(0.25) {
                pipeline.parallel = Some(ParallelConfig {
                    workers: rng.gen_range(1usize..8),
                    shard_size: rng.gen_range(8usize..64),
                });
            }
            // The online method is batch-only (the windowed engine rejects
            // it), so keep it off incremental jobs.
            if !matches!(input, JobInput::StreamIncremental { .. }) && rng.gen_bool(0.25) {
                pipeline.method = SyncMethod::Online(OnlineSpec::new(probes));
            }

            let mut spec = JobSpec::new(input, init, Some(fin), Arc::clone(&lmin), pipeline);
            spec = match rng.gen_range(0u8..3) {
                0 => spec.with_priority(Priority::High),
                1 => spec.with_priority(Priority::Normal),
                _ => spec.with_priority(Priority::Low),
            };
            if rng.gen_bool(0.3) {
                // Virtual-time deadlines on the same scale as the
                // schedule's clock advances and the service's backoff, so
                // all three race each other.
                spec = spec.with_deadline(Duration::from_micros(rng.gen_range(100u64..8_000)));
            }
            if rng.gen_bool(0.25) {
                spec = spec.with_max_retries(rng.gen_range(0u32..4));
            }
            WorkItem { spec, poisoned }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_workload() {
        let a = generate(7, 12);
        let b = generate(7, 12);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.poisoned, y.poisoned);
            assert_eq!(x.spec.deadline, y.spec.deadline);
            assert_eq!(x.spec.max_retries, y.spec.max_retries);
            match (&x.spec.input, &y.spec.input) {
                (JobInput::Trace(t), JobInput::Trace(u)) => {
                    assert_eq!(t.n_events(), u.n_events())
                }
                (JobInput::Stream(c), JobInput::Stream(d)) => assert_eq!(c, d),
                (
                    JobInput::StreamIncremental { chunks: c, window_events: v },
                    JobInput::StreamIncremental { chunks: d, window_events: w },
                ) => {
                    assert_eq!(c, d);
                    assert_eq!(v, w);
                }
                _ => panic!("input kind diverged between runs"),
            }
        }
    }

    #[test]
    fn workload_mixes_kinds() {
        let items = generate(3, 64);
        let streams = items
            .iter()
            .filter(|i| matches!(i.spec.input, JobInput::Stream(_)))
            .count();
        let incremental = items
            .iter()
            .filter(|i| matches!(i.spec.input, JobInput::StreamIncremental { .. }))
            .count();
        let poisoned = items.iter().filter(|i| i.poisoned).count();
        let deadlines = items.iter().filter(|i| i.spec.deadline.is_some()).count();
        assert!(streams > 0 && streams < 64);
        assert!(incremental > 0, "no incremental jobs in the workload");
        assert!(poisoned > 0);
        assert!(deadlines > 0);
        // Both wire versions must be represented among the streams.
        let leading = |magic: &[u8]| {
            items
                .iter()
                .filter(|i| match &i.spec.input {
                    JobInput::Stream(chunks)
                    | JobInput::StreamIncremental { chunks, .. } => chunks
                        .first()
                        .is_some_and(|c| c.starts_with(magic)),
                    JobInput::Trace(_) => false,
                })
                .count()
        };
        assert!(leading(b"DTC2") > 0, "no v2 streams in the workload");
        assert!(leading(b"DTC3") > 0, "no v3 streams in the workload");
    }

    #[test]
    fn workload_mixes_sync_methods() {
        let items = generate(5, 64);
        let online = items
            .iter()
            .filter(|i| matches!(i.spec.pipeline.method, SyncMethod::Online(_)))
            .count();
        assert!(online > 0, "no online-method jobs in the workload");
        assert!(online < 64, "every job went online");
        // Online never rides the incremental engine, which rejects it.
        for i in &items {
            if matches!(i.spec.input, JobInput::StreamIncremental { .. }) {
                assert!(
                    !matches!(i.spec.pipeline.method, SyncMethod::Online(_)),
                    "online method paired with an incremental job"
                );
            }
        }
        // Churn traces (more than 4 linear-clock procs never happen in
        // job_trace, and churn probes are dense) must be represented.
        let churny = items
            .iter()
            .filter(|i| match &i.spec.pipeline.method {
                SyncMethod::Online(spec) => spec.probes.iter().any(|p| p.len() > 2),
                _ => false,
            })
            .count();
        assert!(churny > 0, "no churn-shaped online jobs in the workload");
    }
}
