//! Seeded connection-fault campaigns against the network layer.
//!
//! The scheduler campaigns ([`crate::harness`]) shake the service from
//! the *inside* — executor interleavings, pipeline faults, clock jumps.
//! This module shakes it from the *edge*: every connection a peer could
//! mishandle, replayed deterministically from one seed over the
//! in-memory [`ScriptedTransport`] (no sockets, no kernel timing):
//!
//! * **partial writes** — sessions arrive fragmented at arbitrary byte
//!   boundaries (`read_limit`), so frame headers and payloads straddle
//!   reads;
//! * **slow senders** — `idle_every` interleaves empty polls, stretching
//!   an upload across many scheduler turns;
//! * **mid-stream disconnects** — the inbound script is truncated at a
//!   seeded byte offset (client vanished), or writes start failing with
//!   `BrokenPipe` after a seeded quota (client vanished while the server
//!   streamed results at it);
//! * **corruption** — a seeded byte flip anywhere in the session.
//!
//! Invariants checked per campaign:
//!
//! 1. **no leaks** — after every connection closes, the service's
//!    admitted-byte gauge returns to zero;
//! 2. **no crashes** — the executor crash counter stays zero; a hostile
//!    connection can fail only *itself*;
//! 3. **typed endings** — every server reply stream parses as well-formed
//!    frames (a clean session ends in `JobResult`, a faulted one in a
//!    typed `Error` or a silent disconnect — never garbage bytes);
//! 4. **bit-identity survives chaos** — clean sessions interleaved with
//!    the hostile ones return exactly the direct pipeline's corrected
//!    trace.

use crate::invariant::traces_identical;
use crate::workload::job_trace;
use clocksync::{synchronize, PipelineConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simclock::Dur;
use syncd::{Counter, NetServer, NetServerConfig, ScriptedTransport, ServiceConfig, TenantConfig};
use syncd_wire::{encode_frame, Frame, FrameScanner, WireJobConfig, WireLatency, MAGIC, VERSION};
use tracefmt::io::{from_binary_columnar, to_binary_columnar_blocked};
use tracefmt::UniformLatency;

/// Campaign shape.
#[derive(Debug, Clone)]
pub struct NetChaosConfig {
    /// Connections per campaign (each is one scripted session).
    pub connections: usize,
    /// Server-side per-connection upload credit window.
    pub ingest_window: u64,
}

impl Default for NetChaosConfig {
    fn default() -> Self {
        NetChaosConfig { connections: 12, ingest_window: 1 << 20 }
    }
}

/// What one campaign did and found.
#[derive(Debug)]
pub struct NetChaosReport {
    /// Connections driven.
    pub connections: usize,
    /// Clean sessions that ran a job to a verified bit-identical result.
    pub clean_ok: usize,
    /// Sessions with an injected connection fault.
    pub faulted: usize,
    /// First broken invariant, if any.
    pub violation: Option<String>,
}

/// The connection-level fault classes the campaign draws from.
#[derive(Debug, Clone, Copy)]
enum ConnFault {
    /// No fault: the session must succeed bit-identically.
    None,
    /// Client vanishes mid-upload: session bytes cut at `at`.
    TruncateUpload { per_mille: u32 },
    /// One byte of the session flipped.
    FlipByte { per_mille: u32, xor: u8 },
    /// Client vanishes mid-download: server writes fail after `bytes`.
    DropDownload { bytes: u64 },
}

/// Run one seeded connection-chaos campaign. Deterministic given
/// `(seed, cfg)` up to the executor's internal timing, which none of the
/// checked invariants depend on.
pub fn run_net_chaos(seed: u64, cfg: &NetChaosConfig) -> NetChaosReport {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6e65_7463_6861_6f73); // "netchaos"
    let server = NetServer::start_loopback(NetServerConfig {
        tenants: vec![TenantConfig::new("chaos")],
        ingest_window: cfg.ingest_window,
        service: ServiceConfig {
            executors: 2,
            pool_workers: 2,
            max_retries: 1,
            retry_backoff: std::time::Duration::from_millis(1),
            ..ServiceConfig::default()
        },
    })
    .expect("bind loopback");

    let mut report = NetChaosReport {
        connections: 0,
        clean_ok: 0,
        faulted: 0,
        violation: None,
    };

    for c in 0..cfg.connections {
        let procs = rng.gen_range(2usize..5);
        let msgs = rng.gen_range(4usize..40);
        let (trace, init, fin) = job_trace(&mut rng, procs, msgs);
        let lmin = UniformLatency(Dur::from_us(4));
        let pipeline = PipelineConfig::default();
        let bytes = to_binary_columnar_blocked(&trace, 16);

        let mut session = encode_frame(&Frame::Hello {
            magic: MAGIC,
            version: VERSION,
            token: "chaos".into(),
        });
        let config = WireJobConfig::new(&pipeline, WireLatency::Uniform(lmin.0.as_ps()))
            .with_measurements(&init, Some(&fin));
        session.extend(encode_frame(&Frame::JobConfig(Box::new(config))));
        for chunk in bytes.chunks(1024) {
            session.extend(encode_frame(&Frame::Chunk(chunk.to_vec())));
        }
        session.extend(encode_frame(&Frame::ChunkEnd));

        let fault = match rng.gen_range(0u8..8) {
            0..=2 => ConnFault::None,
            3 | 4 => ConnFault::TruncateUpload { per_mille: rng.gen_range(0..1000) },
            5 | 6 => ConnFault::FlipByte {
                per_mille: rng.gen_range(0..1000),
                xor: rng.gen_range(1u8..=255),
            },
            _ => ConnFault::DropDownload { bytes: rng.gen_range(0u64..512) },
        };

        match fault {
            ConnFault::None => {}
            ConnFault::TruncateUpload { per_mille } => {
                let cut = (session.len() as u64 * per_mille as u64 / 1000) as usize;
                session.truncate(cut.max(1));
            }
            ConnFault::FlipByte { per_mille, xor } => {
                let at = (session.len() as u64 * per_mille as u64 / 1000) as usize;
                let at = at.min(session.len() - 1);
                session[at] ^= xor;
            }
            ConnFault::DropDownload { .. } => {}
        }

        // Every session gets fragmented reads and a randomly slow sender.
        let mut t = ScriptedTransport::new(session)
            .read_limit([3usize, 17, 256, 4096, usize::MAX][rng.gen_range(0usize..5)])
            .idle_every([0usize, 2, 5][rng.gen_range(0usize..3)]);
        match fault {
            // A clean or corrupted-but-connected peer waits for its
            // verdict instead of hanging up at end-of-upload; the poll
            // cap bounds sessions the server can neither finish nor fail
            // (a corruption ate the end-of-stream marker).
            ConnFault::None | ConnFault::FlipByte { .. } => {
                t = t.close_after_reply(4_000);
            }
            ConnFault::TruncateUpload { .. } => {}
            ConnFault::DropDownload { bytes } => {
                t = t.close_after_reply(4_000).fail_writes_after(bytes);
            }
        }
        server.serve_transport(&mut t);
        report.connections += 1;

        // Invariant 3: whatever happened, the reply stream is well-formed
        // frames.
        let mut scanner = FrameScanner::new();
        let frames = match scanner.feed(t.outbound()) {
            Ok(f) => f,
            Err(e) => {
                report.violation =
                    Some(format!("seed {seed} conn {c}: server wrote malformed frames: {e}"));
                break;
            }
        };

        if matches!(fault, ConnFault::None) {
            // Invariant 4: the corrected stream is bit-identical to the
            // direct pipeline call on the same input.
            let mut direct = trace.clone();
            if let Err(e) = synchronize(&mut direct, &init, Some(&fin), &lmin, &pipeline) {
                report.violation =
                    Some(format!("seed {seed} conn {c}: direct oracle failed: {e}"));
                break;
            }
            if !matches!(frames.last(), Some(Frame::JobResult(_))) {
                report.violation = Some(format!(
                    "seed {seed} conn {c}: clean session did not end in JobResult: {:?}",
                    frames.last().map(|f| f.kind())
                ));
                break;
            }
            let out: Vec<u8> = frames
                .iter()
                .filter_map(|f| match f {
                    Frame::Chunk(b) => Some(b.as_slice()),
                    _ => None,
                })
                .collect::<Vec<_>>()
                .concat();
            match from_binary_columnar(out.into()) {
                Ok(got) if traces_identical(&got, &direct) => report.clean_ok += 1,
                Ok(_) => {
                    report.violation = Some(format!(
                        "seed {seed} conn {c}: corrected trace diverges from the direct call"
                    ));
                    break;
                }
                Err(e) => {
                    report.violation = Some(format!(
                        "seed {seed} conn {c}: returned stream does not decode: {e}"
                    ));
                    break;
                }
            }
        } else {
            report.faulted += 1;
        }
    }

    // Invariants 1 and 2 at quiescence: nothing admitted, nothing crashed.
    if report.violation.is_none() {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let m = server.metrics();
            if m.admitted_bytes == 0 {
                if m.counter(Counter::ServiceCrashes) != 0 {
                    report.violation = Some(format!(
                        "seed {seed}: {} executor crash(es) under connection chaos",
                        m.counter(Counter::ServiceCrashes)
                    ));
                }
                break;
            }
            if std::time::Instant::now() >= deadline {
                report.violation = Some(format!(
                    "seed {seed}: admission charge leaked: {} bytes still admitted",
                    m.admitted_bytes
                ));
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }

    server.shutdown();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_holds_every_invariant_across_seeds() {
        for seed in 0..6 {
            let rep = run_net_chaos(seed, &NetChaosConfig::default());
            assert!(rep.violation.is_none(), "{}", rep.violation.unwrap());
            assert_eq!(rep.connections, 12);
            assert_eq!(rep.clean_ok + rep.faulted, rep.connections);
        }
    }

    #[test]
    fn campaign_mixes_clean_and_faulted_sessions() {
        let mut clean = 0;
        let mut faulted = 0;
        for seed in 0..4 {
            let rep = run_net_chaos(seed, &NetChaosConfig::default());
            clean += rep.clean_ok;
            faulted += rep.faulted;
        }
        assert!(clean > 0, "some sessions must run clean");
        assert!(faulted > 0, "some sessions must be faulted");
    }

    #[test]
    fn tiny_window_starves_but_never_leaks() {
        // A window far below one chunk forces the credit path into its
        // halving fallback; jobs may fail typed, but nothing may leak.
        let rep = run_net_chaos(
            1,
            &NetChaosConfig { connections: 4, ingest_window: 64 * 1024 },
        );
        assert!(rep.violation.is_none(), "{}", rep.violation.unwrap());
    }
}
