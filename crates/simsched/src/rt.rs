//! The simulated runtime: `syncd`'s clock seam over a
//! [`simclock::VirtualClock`].
//!
//! Time exists only as the virtual clock's picosecond counter; it moves
//! when the harness (or an injected fault) advances it, never on its own.
//! Deadlines, retry backoffs, and latency histograms inside the service
//! therefore depend solely on the simulated schedule — two runs of the
//! same schedule read identical timestamps, bit for bit.

use simclock::{Dur, Time, VirtualClock};
use std::time::Duration;

/// A [`syncd::Runtime`] whose `now` is a shared [`VirtualClock`].
///
/// The service sees nanosecond resolution (its seam speaks [`Duration`]);
/// the clock stores picoseconds, so conversions are exact in both
/// directions for every duration the harness produces.
#[derive(Debug, Default)]
pub struct SimRuntime {
    clock: VirtualClock,
}

impl SimRuntime {
    /// A runtime whose clock is at the origin.
    pub fn new() -> Self {
        SimRuntime::default()
    }

    /// The simulated instant as the service sees it.
    pub fn now(&self) -> Duration {
        ps_to_duration(self.clock.now().as_ps())
    }

    /// Advance the clock by `d` and return the new instant.
    pub fn advance(&self, d: Duration) -> Duration {
        ps_to_duration(self.clock.advance(duration_to_dur(d)).as_ps())
    }

    /// Advance the clock *to* `t` (monotonic max; a past target is a
    /// no-op) and return the instant afterwards.
    pub fn advance_to(&self, t: Duration) -> Duration {
        let target = Time::from_ps((t.as_nanos() as i64).saturating_mul(1000));
        ps_to_duration(self.clock.advance_to(target).as_ps())
    }
}

fn ps_to_duration(ps: i64) -> Duration {
    Duration::from_nanos((ps / 1000).max(0) as u64)
}

fn duration_to_dur(d: Duration) -> Dur {
    Dur::from_ps((d.as_nanos() as i64).saturating_mul(1000))
}

impl syncd::Runtime for SimRuntime {
    fn now(&self) -> Duration {
        SimRuntime::now(self)
    }

    /// A simulated sleep *is* an advance: the only thing the threaded
    /// executor loop sleeps for is retry backoff, and in simulation that
    /// time passes instantly. (The step-mode service never calls this —
    /// it parks the executor and lets the harness decide when the clock
    /// moves.)
    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncd::Runtime;

    #[test]
    fn conversions_are_exact_at_nanosecond_resolution() {
        let rt = SimRuntime::new();
        assert_eq!(Runtime::now(&rt), Duration::ZERO);
        rt.advance(Duration::from_nanos(1));
        assert_eq!(Runtime::now(&rt), Duration::from_nanos(1));
        rt.advance(Duration::from_millis(3));
        assert_eq!(Runtime::now(&rt), Duration::from_nanos(3_000_001));
    }

    #[test]
    fn advance_to_is_monotonic() {
        let rt = SimRuntime::new();
        rt.advance_to(Duration::from_micros(10));
        rt.advance_to(Duration::from_micros(4));
        assert_eq!(Runtime::now(&rt), Duration::from_micros(10));
    }
}
