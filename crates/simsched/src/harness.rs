//! The simulation harness: seeded chaos schedules over a stepped
//! [`syncd::StepService`] on a virtual clock.
//!
//! One run is two PRNG streams derived from one seed — the *workload*
//! stream fixes the jobs ([`crate::workload`]), the *schedule* stream
//! picks, round after round, which enabled action happens next: submit a
//! job, step an executor (optionally with a one-shot fault armed at a
//! pipeline checkpoint), cancel a job from outside, advance the virtual
//! clock, or begin shutdown. Every choice is recorded as a
//! [`Decision`], so a failing run replays exactly from `(seed,
//! decisions)` — and because the deterministic drain can finish a run
//! from *any* prefix, a failure shrinks to a minimal decision prefix
//! (see [`crate::shrink`]).
//!
//! Invariants ([`crate::invariant`]) are checked after every decision
//! and once more at quiescence; the first broken one stops the run.

use crate::decision::{Decision, FaultOp};
use crate::invariant::{
    check_job, check_quiescence, check_step, GroundTruth, ObservedEvents, TrackedOutcome,
    Violation,
};
use crate::rt::SimRuntime;
use crate::workload::{self, WorkItem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Once};
use std::time::Duration;
use syncd::{
    AttemptProbe, Counter, JobHandle, ServiceConfig, StepEvent, StepService,
};

/// Distinct PRNG stream for scheduling so that decision shrinking never
/// perturbs the workload (golden-ratio offset, as in SplitMix).
const SCHED_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;

/// Simulation shape: service knobs plus campaign workload size.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Logical executors.
    pub executors: usize,
    /// Pipeline worker pool the fair-share clamp divides up.
    pub pool_workers: usize,
    /// Submission queue capacity (small, so QueueFull is reachable).
    pub queue_capacity: usize,
    /// Memory budget (small, so OverBudget is reachable).
    pub memory_budget_bytes: u64,
    /// Service-default retry budget.
    pub max_retries: u32,
    /// Base retry backoff (virtual time).
    pub retry_backoff: Duration,
    /// Jobs per seed.
    pub jobs: usize,
    /// Scheduling decisions per seed before the deterministic drain.
    pub max_decisions: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            executors: 3,
            pool_workers: 6,
            queue_capacity: 6,
            memory_budget_bytes: 192 * 1024,
            max_retries: 3,
            retry_backoff: Duration::from_micros(400),
            jobs: 10,
            max_decisions: 300,
        }
    }
}

impl SimConfig {
    fn service_config(&self) -> ServiceConfig {
        ServiceConfig {
            executors: self.executors,
            pool_workers: self.pool_workers,
            queue_capacity: self.queue_capacity,
            memory_budget_bytes: self.memory_budget_bytes,
            max_retries: self.max_retries,
            retry_backoff: self.retry_backoff,
            default_deadline: None,
        }
    }

    /// The worker count the service clamps each job to.
    pub fn fair_share(&self) -> usize {
        (self.pool_workers / self.executors.max(1)).max(1)
    }
}

/// The outcome of one simulated run.
#[derive(Debug)]
pub struct SimReport {
    /// The seed the run derives from.
    pub seed: u64,
    /// Decisions actually applied (recording or replaying); replaying
    /// this list with the same seed reproduces the run bit-for-bit.
    pub decisions: Vec<Decision>,
    /// Total steps taken, deterministic drain included.
    pub steps: usize,
    /// The first broken invariant, if any.
    pub violation: Option<Violation>,
    /// Digest of final counters, clock, and per-job outcomes — equal
    /// fingerprints mean indistinguishable runs.
    pub fingerprint: u64,
    /// Jobs that completed successfully.
    pub completed: u64,
    /// Jobs that failed (all typed reasons).
    pub failed: u64,
    /// Terminal state of every job the service accepted, in submission
    /// order: `"ok"`, `"pipeline"`, `"panicked"`, `"cancelled"`,
    /// `"deadline"`, `"shutdown"`, or `"unresolved"` (the last is
    /// unreachable in a passing run — quiescence requires every accepted
    /// job to settle).
    pub outcomes: Vec<&'static str>,
}

/// The `outcomes` tag for one settled (or not) job handle.
fn outcome_kind(handle: &JobHandle) -> &'static str {
    match handle.peek() {
        None => "unresolved",
        Some(Ok(_)) => "ok",
        Some(Err(failure)) => match failure.error {
            syncd::JobError::Pipeline(_) => "pipeline",
            syncd::JobError::Panicked(_) => "panicked",
            syncd::JobError::Cancelled => "cancelled",
            syncd::JobError::DeadlineExceeded => "deadline",
            syncd::JobError::Shutdown => "shutdown",
        },
    }
}

/// Injected-crash panics carry this payload; the quiet hook (installed by
/// every run) suppresses their default stderr backtrace while leaving all
/// other panics untouched.
pub const CRASH_PAYLOAD: &str = "simsched: injected worker crash";

/// Install (once) a panic hook that silences injected-crash panics.
pub fn install_quiet_crash_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            // Formatted panics carry String payloads, literal ones &str;
            // injected crashes are formatted, but check both to be safe.
            let injected = payload
                .downcast_ref::<String>()
                .map(|s| s.as_str())
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .is_some_and(|s| s.contains(CRASH_PAYLOAD));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// A one-shot fault armed for a single executor step, delivered at the
/// n-th pipeline checkpoint the attempt reaches.
struct FaultPlan {
    skip: AtomicU32,
    op: FaultOp,
    canceller: Option<Arc<dyn Fn() + Send + Sync>>,
    rt: Arc<SimRuntime>,
    delivered: AtomicBool,
}

impl FaultPlan {
    fn probe(self: &Arc<Self>) -> AttemptProbe {
        let plan = Arc::clone(self);
        Arc::new(move || {
            if plan.delivered.load(Ordering::Relaxed) {
                return false;
            }
            if plan.skip.load(Ordering::Relaxed) > 0 {
                plan.skip.fetch_sub(1, Ordering::Relaxed);
                return false;
            }
            match plan.op {
                FaultOp::Cancel => match &plan.canceller {
                    Some(cancel) => {
                        plan.delivered.store(true, Ordering::Relaxed);
                        cancel();
                        true
                    }
                    None => false,
                },
                FaultOp::Crash => {
                    plan.delivered.store(true, Ordering::Relaxed);
                    panic!("{}", CRASH_PAYLOAD);
                }
                FaultOp::Jump { ns } => {
                    plan.delivered.store(true, Ordering::Relaxed);
                    plan.rt.advance(Duration::from_nanos(ns));
                    false
                }
            }
        })
    }
}

/// Checker-side state for one submitted job.
struct Tracked {
    handle: JobHandle,
    item_idx: usize,
    deadline: Option<Duration>,
    cancel_requested: bool,
    crashes: u64,
}

struct Sim {
    cfg: SimConfig,
    rt: Arc<SimRuntime>,
    svc: StepService,
    items: Vec<WorkItem>,
    next_submit: usize,
    tracked: Vec<Tracked>,
    by_id: HashMap<u64, usize>,
    shutdown_sent: bool,
    abandon_sent: bool,
    backoffs: u64,
    crashes_delivered: u64,
    decisions: Vec<Decision>,
    steps: usize,
    violation: Option<Violation>,
}

impl Sim {
    fn new(seed: u64, cfg: SimConfig) -> Self {
        install_quiet_crash_hook();
        let rt = Arc::new(SimRuntime::new());
        let svc = StepService::new(cfg.service_config(), Arc::clone(&rt) as _);
        let items = workload::generate(seed, cfg.jobs);
        Sim {
            cfg,
            rt,
            svc,
            items,
            next_submit: 0,
            tracked: Vec::new(),
            by_id: HashMap::new(),
            shutdown_sent: false,
            abandon_sent: false,
            backoffs: 0,
            crashes_delivered: 0,
            decisions: Vec::new(),
            steps: 0,
            violation: None,
        }
    }

    fn held_jobs(&self) -> usize {
        (0..self.svc.executors())
            .filter(|&i| self.svc.current_job(i).is_some())
            .count()
    }

    fn ground_truth(&self) -> GroundTruth {
        GroundTruth {
            admitted_bytes: self.svc.admitted_bytes(),
            queue_len: self.svc.queue_len(),
            held_jobs: self.held_jobs(),
            budget: self.cfg.memory_budget_bytes,
            executors: self.svc.executors(),
        }
    }

    fn fail(&mut self, message: String) {
        if self.violation.is_none() {
            self.violation = Some(Violation {
                step: self.steps,
                message,
            });
        }
    }

    fn unresolved(&self) -> Vec<usize> {
        self.tracked
            .iter()
            .enumerate()
            .filter(|(_, t)| t.handle.peek().is_none())
            .map(|(i, _)| i)
            .collect()
    }

    fn submit_next(&mut self) {
        let Some(item) = self.items.get(self.next_submit) else {
            return;
        };
        let item_idx = self.next_submit;
        self.next_submit += 1;
        let spec = item.spec.clone();
        let deadline_rel = spec.deadline;
        match self.svc.submit(spec) {
            Ok(handle) => {
                let deadline = deadline_rel.map(|d| self.rt.now() + d);
                self.by_id.insert(handle.id().0, self.tracked.len());
                self.tracked.push(Tracked {
                    handle,
                    item_idx,
                    deadline,
                    cancel_requested: false,
                    crashes: 0,
                });
            }
            Err(_) => {
                // Typed rejection (QueueFull / OverBudget / Shutdown):
                // the job never entered the service, so the checker owes
                // it nothing.
            }
        }
    }

    fn observe(&mut self, event: StepEvent) {
        match event {
            StepEvent::BackoffStarted { job, until } => {
                self.backoffs += 1;
                if let Some(&idx) = self.by_id.get(&job.0) {
                    if let Some(deadline) = self.tracked[idx].deadline {
                        if until >= deadline {
                            self.fail(format!(
                                "{job} parked in retry backoff until {until:?}, past its \
                                 deadline {deadline:?}: the retry is doomed and the executor \
                                 is head-of-line blocked"
                            ));
                        }
                    }
                }
            }
            StepEvent::Dispatched { .. }
            | StepEvent::Parked { .. }
            | StepEvent::Finished { .. }
            | StepEvent::Idle
            | StepEvent::Exited { .. }
            | StepEvent::Stopped => {}
        }
    }

    fn step_exec(&mut self, exec: usize, fault: Option<(u8, FaultOp)>) {
        if exec >= self.svc.executors() {
            return;
        }
        let target = self.svc.current_job(exec);
        let event = match fault {
            None => self.svc.step(exec, None),
            Some((skip, op)) => {
                let canceller = target
                    .and_then(|id| self.by_id.get(&id.0))
                    .map(|&idx| self.tracked[idx].handle.canceller());
                let plan = Arc::new(FaultPlan {
                    skip: AtomicU32::new(skip as u32),
                    op,
                    canceller,
                    rt: Arc::clone(&self.rt),
                    delivered: AtomicBool::new(false),
                });
                let probe = plan.probe();
                let event = self.svc.step(exec, Some(&probe));
                if plan.delivered.load(Ordering::Relaxed) {
                    if let Some(&idx) = target.and_then(|id| self.by_id.get(&id.0)) {
                        match op {
                            FaultOp::Crash => {
                                self.crashes_delivered += 1;
                                self.tracked[idx].crashes += 1;
                            }
                            FaultOp::Cancel => self.tracked[idx].cancel_requested = true,
                            FaultOp::Jump { .. } => {}
                        }
                    }
                }
                event
            }
        };
        self.observe(event);
    }

    /// Apply one decision and run the per-step checks.
    fn apply(&mut self, d: Decision) {
        self.decisions.push(d);
        self.steps += 1;
        match d {
            Decision::Submit => self.submit_next(),
            Decision::Exec { exec } => self.step_exec(exec as usize, None),
            Decision::ExecFault { exec, skip, op } => {
                self.step_exec(exec as usize, Some((skip, op)))
            }
            Decision::Cancel { nth } => {
                let unresolved = self.unresolved();
                if !unresolved.is_empty() {
                    let idx = unresolved[nth as usize % unresolved.len()];
                    self.tracked[idx].handle.cancel();
                    self.tracked[idx].cancel_requested = true;
                }
            }
            Decision::Advance { ns } => {
                self.rt.advance(Duration::from_nanos(ns));
            }
            Decision::Shutdown { abandon } => {
                if !self.shutdown_sent {
                    self.svc.begin_shutdown(abandon);
                    self.shutdown_sent = true;
                    self.abandon_sent = abandon;
                }
            }
        }
        if let Some(msg) = check_step(&self.svc.metrics(), &self.ground_truth()) {
            self.fail(msg);
        }
    }

    /// One unrecorded drain step (round-robin over executors, advance the
    /// clock to the next wake when stuck, shut down when idle).
    fn drain_step(&mut self) -> bool {
        self.steps += 1;
        let mut progressed = false;
        for exec in 0..self.svc.executors() {
            if self.svc.can_progress(exec) {
                self.step_exec(exec, None);
                progressed = true;
                if self.violation.is_some() {
                    return false;
                }
            }
        }
        if let Some(msg) = check_step(&self.svc.metrics(), &self.ground_truth()) {
            self.fail(msg);
            return false;
        }
        if progressed {
            return true;
        }
        if let Some(wake) = self.svc.next_wake() {
            self.rt.advance_to(wake);
            return true;
        }
        if !self.shutdown_sent {
            self.svc.begin_shutdown(false);
            self.shutdown_sent = true;
            return true;
        }
        !self.svc.all_stopped()
    }

    /// Submit whatever the schedule never got to, then run the service to
    /// full quiescence.
    fn drain(&mut self) {
        while self.next_submit < self.items.len() && self.violation.is_none() {
            self.submit_next();
            if let Some(msg) = check_step(&self.svc.metrics(), &self.ground_truth()) {
                self.fail(msg);
            }
        }
        const DRAIN_LIMIT: usize = 200_000;
        let mut budget = DRAIN_LIMIT;
        while self.violation.is_none() && !self.svc.all_stopped() {
            if budget == 0 {
                self.fail(format!(
                    "service did not quiesce within {DRAIN_LIMIT} drain steps (livelock)"
                ));
                return;
            }
            budget -= 1;
            if !self.drain_step() && self.svc.all_stopped() {
                break;
            }
        }
    }

    fn quiescence_checks(&mut self) {
        if self.violation.is_some() {
            return;
        }
        let m = self.svc.metrics();
        let observed = ObservedEvents {
            backoffs: self.backoffs,
            crashes_delivered: self.crashes_delivered,
        };
        if let Some(msg) = check_quiescence(&m, &self.ground_truth(), &observed) {
            self.fail(msg);
            return;
        }
        let fair_share = self.cfg.fair_share();
        for i in 0..self.tracked.len() {
            let t = &self.tracked[i];
            let outcome = TrackedOutcome {
                item: &self.items[t.item_idx],
                outcome: t.handle.peek(),
                had_deadline: t.deadline.is_some(),
                cancel_requested: t.cancel_requested,
                crashes: t.crashes,
            };
            if let Some(msg) = check_job(t.handle.id().0, &outcome, fair_share) {
                self.fail(msg);
                return;
            }
        }
    }

    fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        let m = self.svc.metrics();
        for c in Counter::ALL {
            h.write(m.counter(c));
        }
        h.write(self.rt.now().as_nanos() as u64);
        for t in &self.tracked {
            match t.handle.peek() {
                None => h.write(0),
                Some(Ok(success)) => {
                    h.write(1);
                    h.write(success.attempts as u64);
                    for p in &success.trace.procs {
                        for e in &p.events {
                            h.write(e.time.as_ps() as u64);
                        }
                    }
                }
                Some(Err(failure)) => {
                    h.write(2);
                    h.write(failure.attempts as u64);
                    h.write(match failure.error {
                        syncd::JobError::Pipeline(_) => 10,
                        syncd::JobError::Panicked(_) => 11,
                        syncd::JobError::Cancelled => 12,
                        syncd::JobError::DeadlineExceeded => 13,
                        syncd::JobError::Shutdown => 14,
                    });
                }
            }
        }
        h.finish()
    }

    fn report(mut self, seed: u64) -> SimReport {
        self.quiescence_checks();
        let m = self.svc.metrics();
        SimReport {
            seed,
            fingerprint: self.fingerprint(),
            completed: m.counter(Counter::Completed),
            failed: m.counter(Counter::Failed),
            outcomes: self.tracked.iter().map(|t| outcome_kind(&t.handle)).collect(),
            decisions: self.decisions,
            steps: self.steps,
            violation: self.violation,
        }
    }
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Record mode: run `seed` with a PRNG-driven schedule, checking
/// invariants throughout, and return the full report (decision trace
/// included).
pub fn run_random(seed: u64, cfg: &SimConfig) -> SimReport {
    let mut sim = Sim::new(seed, cfg.clone());
    let mut rng = StdRng::seed_from_u64(seed ^ SCHED_STREAM);
    while sim.violation.is_none() && sim.decisions.len() < sim.cfg.max_decisions {
        let pending = sim.next_submit < sim.items.len();
        let mut candidates: Vec<Decision> = Vec::with_capacity(24);
        if pending {
            for _ in 0..3 {
                candidates.push(Decision::Submit);
            }
        }
        for exec in 0..sim.svc.executors() {
            if !sim.svc.can_progress(exec) {
                continue;
            }
            for _ in 0..3 {
                candidates.push(Decision::Exec { exec: exec as u8 });
            }
            if sim.svc.current_job(exec).is_some() {
                let op = match rng.gen_range(0u8..3) {
                    0 => FaultOp::Cancel,
                    1 => FaultOp::Crash,
                    _ => FaultOp::Jump { ns: rng.gen_range(100_000u64..10_000_000) },
                };
                candidates.push(Decision::ExecFault {
                    exec: exec as u8,
                    skip: rng.gen_range(0u8..8),
                    op,
                });
            }
        }
        let unresolved = sim.unresolved();
        if !unresolved.is_empty() {
            candidates.push(Decision::Cancel {
                nth: rng.gen_range(0u16..unresolved.len() as u16),
            });
        }
        candidates.push(Decision::Advance {
            ns: rng.gen_range(1_000u64..2_000_000),
        });
        candidates.push(Decision::Advance {
            ns: rng.gen_range(1_000u64..2_000_000),
        });
        if !sim.shutdown_sent && (!pending || rng.gen_bool(0.02)) {
            candidates.push(Decision::Shutdown {
                abandon: rng.gen_bool(0.5),
            });
        }
        // Finished seeds stop early: everything submitted, resolved, and
        // the service fully stopped.
        if !pending && unresolved.is_empty() && sim.svc.all_stopped() {
            break;
        }
        let d = candidates[rng.gen_range(0usize..candidates.len())];
        sim.apply(d);
    }
    sim.drain();
    sim.report(seed)
}

/// Replay mode: apply a recorded (or truncated) decision list, then let
/// the deterministic drain finish the run. With the full recorded list
/// this reproduces the original run exactly (equal fingerprints).
pub fn replay(seed: u64, cfg: &SimConfig, decisions: &[Decision]) -> SimReport {
    let mut sim = Sim::new(seed, cfg.clone());
    for &d in decisions {
        if sim.violation.is_some() {
            break;
        }
        sim.apply(d);
    }
    sim.drain();
    sim.report(seed)
}
