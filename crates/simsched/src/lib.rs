//! # simsched — deterministic simulation testing for `syncd`
//!
//! A VOPR-style harness (in the TigerBeetle sense: *Viewstamped
//! Operation Replicator* — seeded chaos with full replayability) for the
//! multi-tenant synchronization service:
//!
//! * [`rt::SimRuntime`] — `syncd`'s clock seam over a
//!   [`simclock::VirtualClock`]; deadlines, backoff, and latency advance
//!   only on simulated ticks.
//! * [`workload`] — seeded job mixes: trace and stream inputs, byte-level
//!   poisoning, priorities, deadlines, retry budgets.
//! * [`harness`] — the scheduler: every run is a seed; every scheduling
//!   choice (which executor steps, which checkpoint a fault fires at,
//!   when the clock moves, when shutdown begins) is drawn from the
//!   seeded PRNG and recorded as a [`decision::Decision`].
//! * [`invariant`] — checks after every step (budget conservation, gauge
//!   ground-truthing, job-population conservation) and at quiescence (no
//!   lost jobs, counter reconciliation, and bit-identity of every
//!   completed job against a direct pipeline call on the same input).
//! * [`shrink`] — failing schedules shrink to a minimal decision prefix;
//!   the `(seed, prefix)` pair replays the failure exactly.
//! * [`netchaos`] — seeded *connection*-fault campaigns against the
//!   network layer over an in-memory transport: fragmented reads, slow
//!   senders, mid-stream disconnects in both directions, corrupted
//!   sessions — checked for leak-freedom, crash-freedom, well-formed
//!   replies, and bit-identity of the clean sessions in the mix.
//! * `vopr` — the campaign binary:
//!   `cargo run -p simsched --bin vopr -- --seeds 2000`.
//!
//! ```
//! use simsched::{run_random, replay, SimConfig};
//!
//! let cfg = SimConfig { jobs: 4, max_decisions: 60, ..SimConfig::default() };
//! let rec = run_random(42, &cfg);
//! assert!(rec.violation.is_none());
//! // Same seed + same decisions = the same run, bit for bit.
//! let rep = replay(42, &cfg, &rec.decisions);
//! assert_eq!(rep.fingerprint, rec.fingerprint);
//! ```

#![warn(missing_docs)]

pub mod decision;
pub mod harness;
pub mod invariant;
pub mod netchaos;
pub mod rt;
pub mod shrink;
pub mod workload;

pub use decision::{decode_trace, encode_trace, Decision, FaultOp, TraceError};
pub use harness::{install_quiet_crash_hook, replay, run_random, SimConfig, SimReport};
pub use invariant::Violation;
pub use netchaos::{run_net_chaos, NetChaosConfig, NetChaosReport};
pub use rt::SimRuntime;
pub use shrink::{shrink_prefix, Shrunk};
