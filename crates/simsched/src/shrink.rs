//! Shrinking: reduce a failing schedule to a minimal decision prefix.
//!
//! Replaying any *prefix* of a recorded trace is a valid run — the
//! deterministic drain finishes whatever the prefix started — so
//! shrinking is pure prefix search: first truncate to the decisions the
//! failing run actually consumed, then shorten geometrically while the
//! failure reproduces, then polish linearly. The result is the shortest
//! prefix whose replay still breaks an invariant (not necessarily the
//! same invariant — any failure is a bug worth keeping).

use crate::decision::Decision;
use crate::harness::{replay, SimConfig, SimReport};

/// Outcome of shrinking one failing run.
#[derive(Debug)]
pub struct Shrunk {
    /// The minimal failing prefix.
    pub decisions: Vec<Decision>,
    /// The report of replaying that prefix.
    pub report: SimReport,
    /// Replays spent searching.
    pub replays: usize,
}

/// Shrink `decisions` (a schedule that breaks an invariant for `seed`)
/// to a minimal failing prefix. Returns `None` if the full replay
/// unexpectedly passes (a nondeterminism bug in the harness itself —
/// callers should treat that as its own failure).
pub fn shrink_prefix(seed: u64, cfg: &SimConfig, decisions: &[Decision]) -> Option<Shrunk> {
    let mut replays = 0;
    let mut check = |prefix: &[Decision]| -> Option<SimReport> {
        replays += 1;
        let rep = replay(seed, cfg, prefix);
        rep.violation.is_some().then_some(rep)
    };

    let mut best = check(decisions)?;
    // A violation mid-replay means later decisions were never applied;
    // `best.decisions` is already the consumed prefix.
    let mut len = best.decisions.len();

    // Geometric: halve while the failure survives.
    while len > 0 {
        let half = len / 2;
        match check(&best.decisions[..half]) {
            Some(rep) => {
                len = rep.decisions.len().min(half);
                best = rep;
            }
            None => break,
        }
    }
    // Linear polish from the short end.
    while len > 0 {
        match check(&best.decisions[..len - 1]) {
            Some(rep) => {
                len = rep.decisions.len().min(len - 1);
                best = rep;
            }
            None => break,
        }
    }
    let mut decisions = best.decisions.clone();
    decisions.truncate(len);
    Some(Shrunk {
        decisions,
        report: best,
        replays,
    })
}
