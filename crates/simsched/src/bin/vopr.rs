//! The VOPR campaign runner: thousands of seeded chaos schedules against
//! the syncd service, each checked against every invariant, with failing
//! seeds shrunk to a minimal decision prefix and written out for exact
//! replay.
//!
//! ```text
//! vopr --seeds 2000              # campaign: seeds 0..2000
//! vopr --seeds 500 --start 1000  # campaign: seeds 1000..1500
//! vopr --seed 1234               # one seed, verbose, with replay check
//! vopr --replay vopr-failure-1234.simt   # replay a written trace
//! vopr --jobs 16                 # workload size per seed
//! vopr --net-seeds 200           # connection-fault campaign (netchaos)
//! ```
//!
//! Exit code 0 = every seed passed; 1 = at least one invariant broke
//! (the failing seed and a copy-pasteable repro command are printed).

use simsched::{
    decode_trace, encode_trace, replay, run_net_chaos, run_random, shrink_prefix,
    NetChaosConfig, SimConfig, SimReport,
};
use std::process::ExitCode;

struct Args {
    seeds: u64,
    start: u64,
    single: Option<u64>,
    replay_path: Option<String>,
    jobs: Option<usize>,
    net_seeds: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 500,
        start: 0,
        single: None,
        replay_path: None,
        jobs: None,
        net_seeds: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--seeds" => {
                args.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--start" => {
                args.start = value("--start")?
                    .parse()
                    .map_err(|e| format!("--start: {e}"))?
            }
            "--seed" => {
                args.single = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--replay" => args.replay_path = Some(value("--replay")?),
            "--net-seeds" => {
                args.net_seeds = Some(
                    value("--net-seeds")?
                        .parse()
                        .map_err(|e| format!("--net-seeds: {e}"))?,
                )
            }
            "--jobs" => {
                args.jobs = Some(
                    value("--jobs")?
                        .parse()
                        .map_err(|e| format!("--jobs: {e}"))?,
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn config(args: &Args) -> SimConfig {
    let mut cfg = SimConfig::default();
    if let Some(jobs) = args.jobs {
        cfg.jobs = jobs;
    }
    cfg
}

fn describe(rep: &SimReport) {
    println!(
        "seed {}: {} decisions, {} steps, {} completed, {} failed, fingerprint {:016x}",
        rep.seed,
        rep.decisions.len(),
        rep.steps,
        rep.completed,
        rep.failed,
        rep.fingerprint
    );
}

/// Shrink a failure, write its trace, print the repro recipe.
fn report_failure(seed: u64, cfg: &SimConfig, rep: &SimReport) {
    let v = rep.violation.as_ref().expect("failure report");
    println!("seed {seed} FAILED at {v}");
    match shrink_prefix(seed, cfg, &rep.decisions) {
        Some(shrunk) => {
            let sv = shrunk.report.violation.as_ref().expect("shrunk failure");
            println!(
                "  shrunk to {} decisions (from {}) in {} replays; minimal failure: {sv}",
                shrunk.decisions.len(),
                rep.decisions.len(),
                shrunk.replays
            );
            let path = format!("vopr-failure-{seed}.simt");
            match std::fs::write(&path, encode_trace(seed, &shrunk.decisions)) {
                Ok(()) => println!("  minimal trace written to {path}"),
                Err(e) => println!("  could not write {path}: {e}"),
            }
            println!("  reproduce:   cargo run -p simsched --bin vopr -- --seed {seed}");
            println!("  or replay:   cargo run -p simsched --bin vopr -- --replay {path}");
        }
        None => {
            // The recorded schedule passed on replay: the harness itself
            // is nondeterministic, which is a bug of its own.
            println!("  NOT REPRODUCIBLE on replay — harness nondeterminism, investigate");
            println!("  reproduce:   cargo run -p simsched --bin vopr -- --seed {seed}");
        }
    }
}

fn run_single(seed: u64, cfg: &SimConfig) -> bool {
    let rec = run_random(seed, cfg);
    describe(&rec);
    if rec.violation.is_some() {
        report_failure(seed, cfg, &rec);
        return false;
    }
    // Replay determinism is part of the contract: the recorded decisions
    // must reproduce the run exactly.
    let rep = replay(seed, cfg, &rec.decisions);
    if rep.fingerprint != rec.fingerprint || rep.violation.is_some() {
        println!(
            "seed {seed} REPLAY DIVERGED: fingerprint {:016x} vs {:016x}, violation {:?}",
            rep.fingerprint, rec.fingerprint, rep.violation
        );
        return false;
    }
    println!("seed {seed}: replay identical (fingerprint {:016x})", rep.fingerprint);
    true
}

fn run_replay_file(path: &str, cfg: &SimConfig) -> bool {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            println!("cannot read {path}: {e}");
            return false;
        }
    };
    let (seed, decisions) = match decode_trace(&bytes) {
        Ok(t) => t,
        Err(e) => {
            println!("cannot decode {path}: {e}");
            return false;
        }
    };
    println!("replaying {path}: seed {seed}, {} decisions", decisions.len());
    let rep = replay(seed, cfg, &decisions);
    describe(&rep);
    match &rep.violation {
        Some(v) => {
            println!("replay FAILED at {v}");
            false
        }
        None => {
            println!("replay passed every invariant");
            true
        }
    }
}

fn run_campaign(args: &Args, cfg: &SimConfig) -> bool {
    let mut completed = 0u64;
    let mut failed_jobs = 0u64;
    let mut replays_checked = 0u64;
    let t0 = std::time::Instant::now();
    for seed in args.start..args.start + args.seeds {
        let rec = run_random(seed, cfg);
        if rec.violation.is_some() {
            report_failure(seed, cfg, &rec);
            return false;
        }
        // Every seed must also replay identically from its decision
        // trace — determinism is an invariant, not a feature.
        let rep = replay(seed, cfg, &rec.decisions);
        if rep.fingerprint != rec.fingerprint || rep.violation.is_some() {
            println!(
                "seed {seed} REPLAY DIVERGED: fingerprint {:016x} vs {:016x}, violation {:?}",
                rep.fingerprint, rec.fingerprint, rep.violation
            );
            println!("  reproduce:   cargo run -p simsched --bin vopr -- --seed {seed}");
            return false;
        }
        replays_checked += 1;
        completed += rec.completed;
        failed_jobs += rec.failed;
        let done = seed - args.start + 1;
        if done.is_multiple_of(500) {
            println!(
                "  ... {done}/{} seeds, {completed} jobs completed, {failed_jobs} failed typed, {:.1}s",
                args.seeds,
                t0.elapsed().as_secs_f64()
            );
        }
    }
    println!(
        "vopr: {} seeds passed every invariant ({} jobs completed, {} failed typed, \
         {} replays verified identical) in {:.1}s",
        args.seeds,
        completed,
        failed_jobs,
        replays_checked,
        t0.elapsed().as_secs_f64()
    );
    true
}

/// The connection-fault campaign: seeded chaos at the network edge
/// rather than inside the scheduler.
fn run_net_campaign(start: u64, seeds: u64) -> bool {
    let cfg = NetChaosConfig::default();
    let mut clean = 0usize;
    let mut faulted = 0usize;
    let t0 = std::time::Instant::now();
    for seed in start..start + seeds {
        let rep = run_net_chaos(seed, &cfg);
        if let Some(v) = rep.violation {
            println!("net seed {seed} FAILED: {v}");
            println!(
                "  reproduce:   cargo run -p simsched --bin vopr -- --net-seeds 1 --start {seed}"
            );
            return false;
        }
        clean += rep.clean_ok;
        faulted += rep.faulted;
    }
    println!(
        "vopr: {seeds} net seeds passed every invariant ({clean} clean sessions \
         bit-identical, {faulted} faulted sessions contained) in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
    true
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("vopr: {e}");
            eprintln!(
                "usage: vopr [--seeds N] [--start S] [--seed X] [--replay FILE] [--jobs J] [--net-seeds N]"
            );
            return ExitCode::from(2);
        }
    };
    let cfg = config(&args);
    let ok = if let Some(path) = &args.replay_path {
        run_replay_file(path, &cfg)
    } else if let Some(seeds) = args.net_seeds {
        run_net_campaign(args.start, seeds)
    } else if let Some(seed) = args.single {
        run_single(seed, &cfg)
    } else {
        run_campaign(&args, &cfg)
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
