//! The simulated MPI runtime.
//!
//! [`Cluster`] bundles the machine model (placement, topology, latency,
//! clocks); [`run`] executes a [`Program`] on it with a conservative
//! rank-stepping scheduler:
//!
//! * each rank advances greedily along its script until it blocks on a
//!   receive whose message has not been posted or on an incomplete
//!   collective;
//! * sends are eager — the sender deposits the message with a sampled
//!   arrival time and moves on; per-channel arrival times are clamped
//!   monotone so MPI's non-overtaking rule holds;
//! * collectives complete via [`crate::collective::schedule_collective`]
//!   once every member has entered.
//!
//! The tracer mirrors a PMPI interposition layer (paper §III): every MPI
//! call is bracketed by `Enter`/`Exit` events, and each event costs one
//! local clock read whose overhead advances the rank's true time. Recorded
//! timestamps come from the rank's core-local [`simclock::SimClock`] — they
//! are exactly as wrong as the paper says.

use crate::collective::{schedule_collective, CollTuning, PairwiseLatency};
use crate::program::{regions, MpiOp, Program, ReqId};
use netsim::rng::streams;
use netsim::{HierarchicalLatency, Placement, SeedTree, Topology};
use rand::rngs::StdRng;
use simclock::{gaussian, ClockEnsemble, Dur, Locality, Time};
use std::collections::{HashMap, VecDeque};
use tracefmt::{CollOp, CommId, EventKind, Rank, Trace};

/// The simulated machine: placement, network, and clocks.
pub struct Cluster {
    /// Rank → core pinning.
    pub placement: Placement,
    /// Node interconnect.
    pub topology: Topology,
    /// Hierarchical latency model.
    pub latency: HierarchicalLatency,
    /// Per-core clocks.
    pub clocks: ClockEnsemble,
    /// Collective software costs.
    pub coll_tuning: CollTuning,
    net_rng: StdRng,
    seeds: SeedTree,
}

impl Cluster {
    /// Assemble a cluster.
    pub fn new(
        placement: Placement,
        topology: Topology,
        latency: HierarchicalLatency,
        clocks: ClockEnsemble,
        seed: u64,
    ) -> Self {
        let seeds = SeedTree::new(seed);
        Cluster {
            placement,
            topology,
            latency,
            clocks,
            coll_tuning: CollTuning::default(),
            net_rng: seeds.rng(streams::NETWORK),
            seeds,
        }
    }

    /// Number of placed ranks.
    pub fn n_ranks(&self) -> usize {
        self.placement.n_ranks()
    }

    /// Hierarchy relation of two ranks.
    pub fn locality(&self, a: Rank, b: Rank) -> Locality {
        self.placement.locality(a.idx(), b.idx())
    }

    /// Network hops between the nodes of two ranks.
    pub fn hops(&self, a: Rank, b: Rank) -> u32 {
        self.topology
            .hops(self.placement.node_of(a.idx()), self.placement.node_of(b.idx()))
    }

    /// Sample one transfer delay between two ranks, departing at true time
    /// `at` (selects the instantaneous background network load, if any).
    /// Congestion is directional: the lower-rank → higher-rank direction of
    /// each pair carries the full queueing delay, the reverse only its
    /// `asymmetry` fraction.
    pub fn sample_transfer(&mut self, from: Rank, to: Rank, bytes: u64, at: Time) -> Dur {
        let loc = self.locality(from, to);
        let hops = self.hops(from, to);
        let mut d = self.latency.sample(&mut self.net_rng, loc, hops, bytes, at);
        if loc == Locality::InterNode {
            if let Some(w) = self.latency.load {
                d += w.congestion_at(at, from < to);
            }
        }
        d
    }

    /// The user-visible minimum latency between two ranks — send overhead
    /// plus minimum transfer. This is the `l_min` of the clock condition.
    pub fn l_min(&self, from: Rank, to: Rank, bytes: u64) -> Dur {
        self.latency.send_overhead + self.latency.l_min(self.locality(from, to), bytes)
    }

    /// A closure implementing [`tracefmt::MinLatency`] for zero-byte
    /// messages, usable by the violation checkers after the run.
    pub fn l_min_model(&self) -> impl Fn(Rank, Rank) -> Dur + '_ {
        move |a, b| self.l_min(a, b, 0)
    }

    /// The seed tree of this cluster (for derived RNG streams).
    pub fn seeds(&self) -> SeedTree {
        self.seeds
    }
}

impl PairwiseLatency for Cluster {
    fn sample_latency(&mut self, from: Rank, to: Rank, bytes: u64, at: Time) -> Dur {
        self.sample_transfer(from, to, bytes, at)
    }
}

/// Options controlling a run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Bracket each MPI call with `Enter`/`Exit` wrapper events, as PMPI
    /// tracers do.
    pub wrap_mpi_calls: bool,
    /// Whether ranks start with tracing enabled.
    pub tracing_initially: bool,
    /// True time at which all ranks start.
    pub start_time: Time,
    /// Extra communicators (id, member ranks); `CommId::WORLD` covering all
    /// ranks always exists.
    pub extra_comms: Vec<(CommId, Vec<Rank>)>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            wrap_mpi_calls: true,
            tracing_initially: true,
            start_time: Time::ZERO,
            extra_comms: Vec::new(),
        }
    }
}

/// Summary of a completed run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// True time when the last rank finished.
    pub end_time: Time,
    /// Point-to-point messages transferred.
    pub messages: usize,
    /// Collective instances completed.
    pub collectives: usize,
    /// Events recorded in the trace.
    pub events: usize,
}

/// A finished run: the recorded trace plus statistics.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The event trace with local-clock timestamps.
    pub trace: Trace,
    /// Run statistics.
    pub stats: RunStats,
}

/// Errors the scheduler can detect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No rank can make progress but not all are finished.
    Deadlock {
        /// Ranks stuck waiting, with their program counters.
        stuck: Vec<(u32, usize)>,
    },
    /// Program references a rank outside the placement.
    BadRank(Rank),
    /// Mismatched collective ops on one communicator instance.
    CollectiveMismatch(String),
    /// A wait referenced an unknown or already-completed request.
    BadRequest(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { stuck } => write!(f, "deadlock; stuck ranks: {stuck:?}"),
            SimError::BadRank(r) => write!(f, "rank {r} not placed"),
            SimError::CollectiveMismatch(s) => write!(f, "collective mismatch: {s}"),
            SimError::BadRequest(s) => write!(f, "bad request: {s}"),
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocked {
    No,
    Recv,
    Coll(usize), // index into `collectives`
    /// Waiting for one request to complete.
    WaitReq(ReqId),
    /// Waiting inside Waitall.
    Waitall,
    Done,
}

/// A posted non-blocking request.
#[derive(Debug, Clone, Copy)]
enum PendingReq {
    /// Eager send: already complete.
    SendDone,
    /// Posted receive: channel plus its slot in the channel's posting order.
    Recv {
        key: ChannelKey,
        slot: usize,
        from: Rank,
    },
}

struct RankState {
    pc: usize,
    now: Time,
    blocked: Blocked,
    /// Wrapper Enter already recorded for the current (possibly blocking)
    /// call.
    entered_call: bool,
    tracing: bool,
    /// Monotone clamp for this rank's timestamp stream.
    last_ts: Time,
    /// Slot claimed by an in-progress blocking receive.
    active_slot: Option<usize>,
    /// Outstanding non-blocking requests.
    reqs: std::collections::HashMap<ReqId, PendingReq>,
    /// Posting order of outstanding requests (for Waitall).
    req_order: Vec<ReqId>,
    /// Progress cursor into `req_order` during a Waitall.
    waitall_idx: usize,
}

struct CollState {
    op: CollOp,
    comm: CommId,
    root: Option<Rank>,
    bytes: u64,
    /// (rank, begin true-time) per member position; None until entered.
    begun: Vec<Option<Time>>,
    /// Completion times, computed when the last member enters.
    ends: Option<Vec<Time>>,
}

type ChannelKey = (u32, u32, u32); // from, to, tag

/// Assign delivered messages to receive-posting slots in order; returns the
/// arrival time for `slot` once enough messages have been delivered.
fn claim(
    mailboxes: &mut HashMap<ChannelKey, VecDeque<Time>>,
    claimed: &mut HashMap<ChannelKey, Vec<Time>>,
    key: ChannelKey,
    slot: usize,
) -> Option<Time> {
    let c = claimed.entry(key).or_default();
    while c.len() <= slot {
        match mailboxes.get_mut(&key).and_then(|q| q.pop_front()) {
            Some(t) => c.push(t),
            None => return None,
        }
    }
    Some(c[slot])
}

/// Execute `program` on `cluster`.
pub fn run(cluster: &mut Cluster, program: &Program, opts: &RunOptions) -> Result<RunOutput, SimError> {
    let n = program.n_ranks();
    if n > cluster.n_ranks() {
        return Err(SimError::BadRank(Rank(cluster.n_ranks() as u32)));
    }

    // Communicator membership: WORLD plus extras.
    let mut comm_members: HashMap<CommId, Vec<Rank>> = HashMap::new();
    comm_members.insert(CommId::WORLD, (0..n as u32).map(Rank).collect());
    for (id, members) in &opts.extra_comms {
        comm_members.insert(*id, members.clone());
    }

    let mut states: Vec<RankState> = (0..n)
        .map(|_| RankState {
            pc: 0,
            now: opts.start_time,
            blocked: Blocked::No,
            entered_call: false,
            tracing: opts.tracing_initially,
            last_ts: Time::MIN,
            active_slot: None,
            reqs: std::collections::HashMap::new(),
            req_order: Vec::new(),
            waitall_idx: 0,
        })
        .collect();
    let mut trace = Trace::for_ranks(n);
    let mut mailboxes: HashMap<ChannelKey, VecDeque<Time>> = HashMap::new();
    let mut channel_clamp: HashMap<ChannelKey, Time> = HashMap::new();
    // Receive matching: MPI pairs messages with receives in *posting*
    // order per channel. `posted` counts posted receives; `claimed` maps
    // posting slots to delivered arrival times.
    let mut posted: HashMap<ChannelKey, usize> = HashMap::new();
    let mut claimed: HashMap<ChannelKey, Vec<Time>> = HashMap::new();
    let mut collectives: Vec<CollState> = Vec::new();
    // (comm, rank) -> number of collective calls already issued.
    let mut call_count: HashMap<(CommId, u32), usize> = HashMap::new();
    // (comm, instance) -> index into `collectives`.
    let mut coll_index: HashMap<(CommId, usize), usize> = HashMap::new();
    let mut workload_rngs: Vec<StdRng> = (0..n as u64)
        .map(|r| cluster.seeds().child(streams::WORKLOAD).rng(r))
        .collect();
    let mut messages = 0usize;

    // Record one event on a rank's timeline: advances true time by the
    // clock-read overhead and clamps the local timestamp stream monotone.
    fn record(
        cluster: &mut Cluster,
        trace: &mut Trace,
        st: &mut RankState,
        rank: usize,
        kind: EventKind,
    ) {
        if !st.tracing {
            return;
        }
        let core = cluster.placement.core_of(rank);
        st.now += cluster.clocks.read_overhead(core);
        let ts = cluster.clocks.sample(core, st.now).max(st.last_ts);
        st.last_ts = ts;
        trace.procs[rank].push(ts, kind);
    }

    loop {
        let mut progressed = false;
        for rank in 0..n {
            loop {
                // Split-borrow dance: take the state out of the slice
                // index to satisfy the borrow checker cheaply.
                let st = &mut states[rank];
                if st.blocked == Blocked::Done {
                    break;
                }
                // A rank blocked in a collective resumes only once the
                // instance completed.
                if let Blocked::Coll(ci) = st.blocked {
                    let Some(ends) = collectives[ci].ends.as_ref() else {
                        break;
                    };
                    let members = &comm_members[&collectives[ci].comm];
                    let pos = members
                        .iter()
                        .position(|&r| r.idx() == rank)
                        .expect("member vanished");
                    st.now = ends[pos];
                    let (op, comm, root, bytes) = (
                        collectives[ci].op,
                        collectives[ci].comm,
                        collectives[ci].root,
                        collectives[ci].bytes,
                    );
                    record(
                        cluster,
                        &mut trace,
                        &mut states[rank],
                        rank,
                        EventKind::CollEnd { op, comm, root, bytes },
                    );
                    if opts.wrap_mpi_calls {
                        record(
                            cluster,
                            &mut trace,
                            &mut states[rank],
                            rank,
                            EventKind::Exit { region: regions::coll_region(op) },
                        );
                    }
                    let st = &mut states[rank];
                    st.blocked = Blocked::No;
                    st.entered_call = false;
                    st.pc += 1;
                    progressed = true;
                    continue;
                }
                let st = &mut states[rank];
                if matches!(
                    st.blocked,
                    Blocked::Recv | Blocked::WaitReq(_) | Blocked::Waitall
                ) {
                    // Re-check by falling through to the blocking op's
                    // handler with entered_call already set.
                    st.blocked = Blocked::No;
                }
                let Some(op) = program.ranks[rank].ops.get(states[rank].pc).cloned() else {
                    states[rank].blocked = Blocked::Done;
                    progressed = true;
                    break;
                };
                match op {
                    MpiOp::Compute { dur } => {
                        states[rank].now += dur;
                        states[rank].pc += 1;
                    }
                    MpiOp::ComputeJitter { mean, cv } => {
                        let factor = (1.0 + cv * gaussian(&mut workload_rngs[rank])).max(0.05);
                        states[rank].now += mean.scale(factor);
                        states[rank].pc += 1;
                    }
                    MpiOp::Sleep { dur } => {
                        states[rank].now += dur;
                        states[rank].pc += 1;
                    }
                    MpiOp::TraceOn => {
                        states[rank].tracing = true;
                        states[rank].pc += 1;
                    }
                    MpiOp::TraceOff => {
                        states[rank].tracing = false;
                        states[rank].pc += 1;
                    }
                    MpiOp::Enter { region } => {
                        record(cluster, &mut trace, &mut states[rank], rank, EventKind::Enter { region });
                        states[rank].pc += 1;
                    }
                    MpiOp::Exit { region } => {
                        record(cluster, &mut trace, &mut states[rank], rank, EventKind::Exit { region });
                        states[rank].pc += 1;
                    }
                    MpiOp::Send { to, tag, bytes } => {
                        if to.idx() >= n {
                            return Err(SimError::BadRank(to));
                        }
                        if opts.wrap_mpi_calls {
                            record(
                                cluster,
                                &mut trace,
                                &mut states[rank],
                                rank,
                                EventKind::Enter { region: regions::MPI_SEND },
                            );
                        }
                        record(
                            cluster,
                            &mut trace,
                            &mut states[rank],
                            rank,
                            EventKind::Send { to, tag, bytes },
                        );
                        let from = Rank(rank as u32);
                        let st_now = states[rank].now;
                        let transfer = cluster.sample_transfer(from, to, bytes, st_now);
                        let depart = st_now + cluster.latency.send_overhead;
                        let mut arrival = depart + transfer;
                        let key: ChannelKey = (rank as u32, to.0, tag.0);
                        // MPI non-overtaking: a later message on the same
                        // channel never arrives before an earlier one.
                        if let Some(&prev) = channel_clamp.get(&key) {
                            arrival = arrival.max(prev);
                        }
                        channel_clamp.insert(key, arrival);
                        mailboxes.entry(key).or_default().push_back(arrival);
                        messages += 1;
                        states[rank].now = depart;
                        if opts.wrap_mpi_calls {
                            record(
                                cluster,
                                &mut trace,
                                &mut states[rank],
                                rank,
                                EventKind::Exit { region: regions::MPI_SEND },
                            );
                        }
                        states[rank].pc += 1;
                    }
                    MpiOp::Recv { from, tag } => {
                        if from.idx() >= n {
                            return Err(SimError::BadRank(from));
                        }
                        if opts.wrap_mpi_calls && !states[rank].entered_call {
                            record(
                                cluster,
                                &mut trace,
                                &mut states[rank],
                                rank,
                                EventKind::Enter { region: regions::MPI_RECV },
                            );
                        }
                        states[rank].entered_call = true;
                        let key: ChannelKey = (from.0, rank as u32, tag.0);
                        // A blocking receive is post + wait: claim the next
                        // posting slot once, then wait for its delivery.
                        let slot = match states[rank].active_slot {
                            Some(s) => s,
                            None => {
                                let c = posted.entry(key).or_insert(0);
                                let slot = *c;
                                *c += 1;
                                states[rank].active_slot = Some(slot);
                                slot
                            }
                        };
                        match claim(&mut mailboxes, &mut claimed, key, slot) {
                            None => {
                                states[rank].blocked = Blocked::Recv;
                                break;
                            }
                            Some(arrival) => {
                                let st = &mut states[rank];
                                st.now = st.now.max(arrival) + cluster.latency.send_overhead;
                                // The Recv DSL op carries no byte count;
                                // matching recovers sizes from the send side.
                                record(
                                    cluster,
                                    &mut trace,
                                    &mut states[rank],
                                    rank,
                                    EventKind::Recv { from, tag, bytes: 0 },
                                );
                                if opts.wrap_mpi_calls {
                                    record(
                                        cluster,
                                        &mut trace,
                                        &mut states[rank],
                                        rank,
                                        EventKind::Exit { region: regions::MPI_RECV },
                                    );
                                }
                                let st = &mut states[rank];
                                st.entered_call = false;
                                st.active_slot = None;
                                st.pc += 1;
                            }
                        }
                    }
                    MpiOp::Isend { to, tag, bytes, req } => {
                        if to.idx() >= n {
                            return Err(SimError::BadRank(to));
                        }
                        if states[rank].reqs.contains_key(&req) {
                            return Err(SimError::BadRequest(format!(
                                "rank {rank}: request {req:?} already in use"
                            )));
                        }
                        if opts.wrap_mpi_calls {
                            record(
                                cluster,
                                &mut trace,
                                &mut states[rank],
                                rank,
                                EventKind::Enter { region: regions::MPI_ISEND },
                            );
                        }
                        record(
                            cluster,
                            &mut trace,
                            &mut states[rank],
                            rank,
                            EventKind::Send { to, tag, bytes },
                        );
                        let from = Rank(rank as u32);
                        let st_now = states[rank].now;
                        let transfer = cluster.sample_transfer(from, to, bytes, st_now);
                        let depart = st_now + cluster.latency.send_overhead;
                        let mut arrival = depart + transfer;
                        let key: ChannelKey = (rank as u32, to.0, tag.0);
                        if let Some(&prev) = channel_clamp.get(&key) {
                            arrival = arrival.max(prev);
                        }
                        channel_clamp.insert(key, arrival);
                        mailboxes.entry(key).or_default().push_back(arrival);
                        messages += 1;
                        states[rank].now = depart;
                        if opts.wrap_mpi_calls {
                            record(
                                cluster,
                                &mut trace,
                                &mut states[rank],
                                rank,
                                EventKind::Exit { region: regions::MPI_ISEND },
                            );
                        }
                        let st = &mut states[rank];
                        st.reqs.insert(req, PendingReq::SendDone);
                        st.req_order.push(req);
                        st.pc += 1;
                    }
                    MpiOp::Irecv { from, tag, req } => {
                        if from.idx() >= n {
                            return Err(SimError::BadRank(from));
                        }
                        if states[rank].reqs.contains_key(&req) {
                            return Err(SimError::BadRequest(format!(
                                "rank {rank}: request {req:?} already in use"
                            )));
                        }
                        if opts.wrap_mpi_calls {
                            record(
                                cluster,
                                &mut trace,
                                &mut states[rank],
                                rank,
                                EventKind::Enter { region: regions::MPI_IRECV },
                            );
                            record(
                                cluster,
                                &mut trace,
                                &mut states[rank],
                                rank,
                                EventKind::Exit { region: regions::MPI_IRECV },
                            );
                        }
                        let key: ChannelKey = (from.0, rank as u32, tag.0);
                        let c = posted.entry(key).or_insert(0);
                        let slot = *c;
                        *c += 1;
                        let st = &mut states[rank];
                        st.reqs.insert(req, PendingReq::Recv { key, slot, from });
                        st.req_order.push(req);
                        st.pc += 1;
                    }
                    MpiOp::Wait { req } => {
                        if opts.wrap_mpi_calls && !states[rank].entered_call {
                            record(
                                cluster,
                                &mut trace,
                                &mut states[rank],
                                rank,
                                EventKind::Enter { region: regions::MPI_WAIT },
                            );
                        }
                        states[rank].entered_call = true;
                        let Some(&pending) = states[rank].reqs.get(&req) else {
                            return Err(SimError::BadRequest(format!(
                                "rank {rank}: wait on unknown request {req:?}"
                            )));
                        };
                        match pending {
                            PendingReq::SendDone => {}
                            PendingReq::Recv { key, slot, from } => {
                                match claim(&mut mailboxes, &mut claimed, key, slot) {
                                    None => {
                                        states[rank].blocked = Blocked::WaitReq(req);
                                        break;
                                    }
                                    Some(arrival) => {
                                        let st = &mut states[rank];
                                        st.now = st.now.max(arrival)
                                            + cluster.latency.send_overhead;
                                        record(
                                            cluster,
                                            &mut trace,
                                            &mut states[rank],
                                            rank,
                                            EventKind::Recv {
                                                from,
                                                tag: tracefmt::Tag(key.2),
                                                bytes: 0,
                                            },
                                        );
                                    }
                                }
                            }
                        }
                        if opts.wrap_mpi_calls {
                            record(
                                cluster,
                                &mut trace,
                                &mut states[rank],
                                rank,
                                EventKind::Exit { region: regions::MPI_WAIT },
                            );
                        }
                        let st = &mut states[rank];
                        st.reqs.remove(&req);
                        st.entered_call = false;
                        st.pc += 1;
                    }
                    MpiOp::Waitall => {
                        if opts.wrap_mpi_calls && !states[rank].entered_call {
                            record(
                                cluster,
                                &mut trace,
                                &mut states[rank],
                                rank,
                                EventKind::Enter { region: regions::MPI_WAIT },
                            );
                        }
                        states[rank].entered_call = true;
                        let order = states[rank].req_order.clone();
                        let mut stuck = false;
                        while states[rank].waitall_idx < order.len() {
                            let req = order[states[rank].waitall_idx];
                            let Some(&pending) = states[rank].reqs.get(&req) else {
                                // Completed earlier by an explicit Wait.
                                states[rank].waitall_idx += 1;
                                continue;
                            };
                            match pending {
                                PendingReq::SendDone => {}
                                PendingReq::Recv { key, slot, from } => {
                                    match claim(&mut mailboxes, &mut claimed, key, slot) {
                                        None => {
                                            states[rank].blocked = Blocked::Waitall;
                                            stuck = true;
                                            break;
                                        }
                                        Some(arrival) => {
                                            let st = &mut states[rank];
                                            st.now = st.now.max(arrival)
                                                + cluster.latency.send_overhead;
                                            record(
                                                cluster,
                                                &mut trace,
                                                &mut states[rank],
                                                rank,
                                                EventKind::Recv {
                                                    from,
                                                    tag: tracefmt::Tag(key.2),
                                                    bytes: 0,
                                                },
                                            );
                                        }
                                    }
                                }
                            }
                            let st = &mut states[rank];
                            st.reqs.remove(&req);
                            st.waitall_idx += 1;
                        }
                        if stuck {
                            break;
                        }
                        if opts.wrap_mpi_calls {
                            record(
                                cluster,
                                &mut trace,
                                &mut states[rank],
                                rank,
                                EventKind::Exit { region: regions::MPI_WAIT },
                            );
                        }
                        let st = &mut states[rank];
                        st.req_order.clear();
                        st.waitall_idx = 0;
                        st.entered_call = false;
                        st.pc += 1;
                    }
                    MpiOp::Coll { op, comm, root, bytes } => {
                        let members = comm_members
                            .get(&comm)
                            .ok_or_else(|| SimError::CollectiveMismatch(format!("unknown {comm}")))?
                            .clone();
                        let pos = members
                            .iter()
                            .position(|&r| r.idx() == rank)
                            .ok_or_else(|| {
                                SimError::CollectiveMismatch(format!(
                                    "rank {rank} not in {comm}"
                                ))
                            })?;
                        if opts.wrap_mpi_calls {
                            record(
                                cluster,
                                &mut trace,
                                &mut states[rank],
                                rank,
                                EventKind::Enter { region: regions::coll_region(op) },
                            );
                        }
                        record(
                            cluster,
                            &mut trace,
                            &mut states[rank],
                            rank,
                            EventKind::CollBegin { op, comm, root, bytes },
                        );
                        let inst = {
                            let c = call_count.entry((comm, rank as u32)).or_insert(0);
                            let i = *c;
                            *c += 1;
                            i
                        };
                        let ci = *coll_index.entry((comm, inst)).or_insert_with(|| {
                            collectives.push(CollState {
                                op,
                                comm,
                                root,
                                bytes,
                                begun: vec![None; members.len()],
                                ends: None,
                            });
                            collectives.len() - 1
                        });
                        let cs = &mut collectives[ci];
                        if cs.op != op || cs.root != root {
                            return Err(SimError::CollectiveMismatch(format!(
                                "instance {inst} on {comm}: {:?} vs {:?}",
                                cs.op, op
                            )));
                        }
                        cs.begun[pos] = Some(states[rank].now);
                        if cs.begun.iter().all(|b| b.is_some()) {
                            let begins: Vec<(Rank, Time)> = members
                                .iter()
                                .zip(cs.begun.iter())
                                .map(|(&r, b)| (r, b.unwrap()))
                                .collect();
                            let (op2, root2, bytes2) = (cs.op, cs.root, cs.bytes);
                            let tuning = cluster.coll_tuning;
                            let ends =
                                schedule_collective(op2, &begins, root2, cluster, &tuning, bytes2);
                            collectives[ci].ends = Some(ends);
                        }
                        states[rank].blocked = Blocked::Coll(ci);
                        // Stay at this pc; CollEnd is emitted on resume.
                        progressed = true;
                        break;
                    }
                }
                progressed = true;
            }
        }
        let all_done = states.iter().all(|s| s.blocked == Blocked::Done);
        if all_done {
            break;
        }
        if !progressed {
            let stuck = states
                .iter()
                .enumerate()
                .filter(|(_, s)| s.blocked != Blocked::Done)
                .map(|(r, s)| (r as u32, s.pc))
                .collect();
            return Err(SimError::Deadlock { stuck });
        }
    }

    let end_time = states.iter().map(|s| s.now).max().unwrap_or(opts.start_time);
    let events = trace.n_events();
    Ok(RunOutput {
        trace,
        stats: RunStats {
            end_time,
            messages,
            collectives: collectives.len(),
            events,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Program, RankProgram};
    use simclock::{ClockDomain, ClockProfile, MachineShape, TimerKind};
    use tracefmt::{match_collectives, match_messages, Tag, UniformLatency};

    fn ideal_cluster(nodes: usize, ranks: usize) -> Cluster {
        let shape = MachineShape::new(nodes, 2, 4);
        let profile = ClockProfile::bare(TimerKind::IntelTsc);
        let clocks = ClockEnsemble::build(shape, ClockDomain::Global, &profile, 1);
        Cluster::new(
            netsim::Placement::round_robin(shape, ranks),
            Topology::Crossbar,
            HierarchicalLatency::xeon_infiniband(),
            clocks,
            7,
        )
    }

    #[test]
    fn ping_pong_produces_consistent_trace() {
        let mut cluster = ideal_cluster(2, 2);
        let prog = Program::build(2, |r| {
            if r.0 == 0 {
                RankProgram::new()
                    .send(Rank(1), Tag(0), 8)
                    .recv(Rank(1), Tag(1))
            } else {
                RankProgram::new()
                    .recv(Rank(0), Tag(0))
                    .send(Rank(0), Tag(1), 8)
            }
        });
        let out = run(&mut cluster, &prog, &RunOptions::default()).unwrap();
        assert_eq!(out.stats.messages, 2);
        let m = match_messages(&out.trace);
        assert!(m.is_complete());
        assert_eq!(m.messages.len(), 2);
        // With a global ideal clock there can be no violations.
        let report = tracefmt::check_p2p(&out.trace, &m, &UniformLatency(Dur::from_us(4)));
        assert!(report.violations.is_empty());
        // Wrapper events present: Enter(MPI_Send) Send Exit + Enter(MPI_Recv) Recv Exit.
        assert_eq!(out.trace.procs[0].len(), 6);
    }

    #[test]
    fn recv_before_send_blocks_and_completes() {
        // Rank 1 posts its recv long before rank 0 sends.
        let mut cluster = ideal_cluster(2, 2);
        let prog = Program::build(2, |r| {
            if r.0 == 0 {
                RankProgram::new()
                    .compute(Dur::from_ms(5))
                    .send(Rank(1), Tag(0), 8)
            } else {
                RankProgram::new().recv(Rank(0), Tag(0))
            }
        });
        let out = run(&mut cluster, &prog, &RunOptions::default()).unwrap();
        let m = match_messages(&out.trace);
        assert!(m.is_complete());
        // Receive completes after the send plus transfer.
        let send_t = out.trace.time(m.messages[0].send);
        let recv_t = out.trace.time(m.messages[0].recv);
        assert!(recv_t - send_t >= Dur::from_us(4));
        assert!(recv_t >= Time::from_ms(5));
    }

    #[test]
    fn deadlock_is_detected() {
        let mut cluster = ideal_cluster(2, 2);
        // Both ranks receive first: classic deadlock.
        let prog = Program::build(2, |r| {
            RankProgram::new()
                .recv(Rank(1 - r.0), Tag(0))
                .send(Rank(1 - r.0), Tag(0), 8)
        });
        let err = run(&mut cluster, &prog, &RunOptions::default()).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn collective_trace_is_well_formed() {
        let mut cluster = ideal_cluster(4, 4);
        let prog = Program::build(4, |_| {
            RankProgram::new()
                .compute(Dur::from_us(50))
                .barrier(CommId::WORLD)
                .allreduce(CommId::WORLD, 8)
        });
        let out = run(&mut cluster, &prog, &RunOptions::default()).unwrap();
        assert_eq!(out.stats.collectives, 2);
        let insts = match_collectives(&out.trace).unwrap();
        assert_eq!(insts.len(), 2);
        assert_eq!(insts[0].op, CollOp::Barrier);
        assert_eq!(insts[1].op, CollOp::Allreduce);
        // With ideal clocks, no collective violations either.
        let r = tracefmt::check_collectives(
            &out.trace,
            &insts,
            &UniformLatency(Dur::from_ns(100)),
        );
        assert_eq!(r.logical_violated, 0);
    }

    #[test]
    fn barrier_synchronises_stragglers() {
        let mut cluster = ideal_cluster(4, 4);
        let prog = Program::build(4, |r| {
            RankProgram::new()
                .compute(Dur::from_ms(r.0 as i64 * 10))
                .barrier(CommId::WORLD)
        });
        let out = run(&mut cluster, &prog, &RunOptions::default()).unwrap();
        let insts = match_collectives(&out.trace).unwrap();
        // All ends after the last begin (rank 3 at 30 ms).
        for m in &insts[0].members {
            assert!(out.trace.time(m.end) >= Time::from_ms(30));
        }
    }

    #[test]
    fn non_overtaking_holds_under_jitter() {
        let mut cluster = ideal_cluster(2, 2);
        let n_msgs = 200;
        let prog = Program::build(2, |r| {
            let mut p = RankProgram::new();
            if r.0 == 0 {
                for _ in 0..n_msgs {
                    p = p.send(Rank(1), Tag(0), 8);
                }
            } else {
                for _ in 0..n_msgs {
                    p = p.recv(Rank(0), Tag(0));
                }
            }
            p
        });
        let out = run(&mut cluster, &prog, &RunOptions::default()).unwrap();
        let m = match_messages(&out.trace);
        assert!(m.is_complete());
        // Receive timestamps must be non-decreasing in send order.
        let mut prev = Time::MIN;
        for msg in &m.messages {
            let t = out.trace.time(msg.recv);
            assert!(t >= prev, "message overtaking detected");
            prev = t;
        }
    }

    #[test]
    fn trace_off_suppresses_events() {
        let mut cluster = ideal_cluster(2, 2);
        let prog = Program::build(2, |r| {
            if r.0 == 0 {
                RankProgram::new()
                    .trace_off()
                    .send(Rank(1), Tag(0), 8)
                    .trace_on()
                    .send(Rank(1), Tag(1), 8)
            } else {
                RankProgram::new()
                    .recv(Rank(0), Tag(0))
                    .recv(Rank(0), Tag(1))
            }
        });
        let out = run(&mut cluster, &prog, &RunOptions::default()).unwrap();
        // Rank 0 recorded only the second send (3 events with wrappers).
        assert_eq!(out.trace.procs[0].len(), 3);
        // Rank 1 recorded both receives.
        assert_eq!(out.trace.procs[1].len(), 6);
    }

    #[test]
    fn subcommunicator_collectives() {
        let mut cluster = ideal_cluster(4, 4);
        let sub = CommId(1);
        let prog = Program::build(4, |r| {
            if r.0 < 2 {
                RankProgram::new().allreduce(sub, 8)
            } else {
                RankProgram::new().compute(Dur::from_us(1))
            }
        });
        let opts = RunOptions {
            extra_comms: vec![(sub, vec![Rank(0), Rank(1)])],
            ..RunOptions::default()
        };
        let out = run(&mut cluster, &prog, &opts).unwrap();
        let insts = match_collectives(&out.trace).unwrap();
        assert_eq!(insts.len(), 1);
        assert_eq!(insts[0].members.len(), 2);
    }

    #[test]
    fn local_timestamps_are_monotone_even_with_drifting_clocks() {
        let shape = MachineShape::new(2, 2, 4);
        let profile = ClockProfile::bare(TimerKind::Gettimeofday)
            .with_node_spread(1e-3, 5e-6)
            .with_noise(simclock::NoiseSpec {
                resolution: Dur::from_us(1),
                base_sigma: Dur::from_ns(200),
                spike_prob: 1e-2,
                spike_mean: Dur::from_us(3),
                read_overhead: Dur::from_ns(60),
            })
            .with_horizon(10.0);
        let clocks = ClockEnsemble::build(shape, ClockDomain::PerChip, &profile, 3);
        let mut cluster = Cluster::new(
            netsim::Placement::packed(shape, 8),
            Topology::Crossbar,
            HierarchicalLatency::xeon_infiniband(),
            clocks,
            9,
        );
        let prog = Program::build(8, |r| {
            let next = Rank((r.0 + 1) % 8);
            let prev = Rank((r.0 + 7) % 8);
            let mut p = RankProgram::new();
            for i in 0..50 {
                p = p
                    .compute(Dur::from_us(20))
                    .send(next, Tag(i), 64)
                    .recv(prev, Tag(i));
            }
            p
        });
        let out = run(&mut cluster, &prog, &RunOptions::default()).unwrap();
        assert!(out.trace.is_locally_monotone());
        assert_eq!(out.stats.messages, 400);
    }
}

#[cfg(test)]
mod nonblocking_tests {
    use super::*;
    use crate::program::{Program, RankProgram, ReqId};
    use simclock::{ClockDomain, ClockProfile, MachineShape, TimerKind};
    use tracefmt::{match_messages, Tag};

    fn ideal_cluster(ranks: usize) -> Cluster {
        let shape = MachineShape::new(ranks, 1, 2);
        let clocks = ClockEnsemble::build(
            shape,
            ClockDomain::Global,
            &ClockProfile::bare(TimerKind::IntelTsc),
            0,
        );
        Cluster::new(
            netsim::Placement::one_per_node(shape, ranks),
            Topology::Crossbar,
            HierarchicalLatency::xeon_infiniband(),
            clocks,
            5,
        )
    }

    #[test]
    fn isend_wait_matches_blocking_recv() {
        let mut cluster = ideal_cluster(2);
        let prog = Program::build(2, |r| {
            if r.0 == 0 {
                RankProgram::new()
                    .isend(Rank(1), Tag(0), 64, ReqId(1))
                    .compute(simclock::Dur::from_us(100))
                    .wait(ReqId(1))
            } else {
                RankProgram::new().recv(Rank(0), Tag(0))
            }
        });
        let out = run(&mut cluster, &prog, &RunOptions::default()).unwrap();
        let m = match_messages(&out.trace);
        assert!(m.is_complete());
        assert_eq!(m.messages.len(), 1);
    }

    #[test]
    fn irecv_overlaps_compute() {
        // Receiver posts early, computes, waits: completion time must not
        // include the transfer (overlap), unlike post-compute-blocking-recv.
        let mut cluster = ideal_cluster(2);
        let prog = Program::build(2, |r| {
            if r.0 == 0 {
                RankProgram::new().send(Rank(1), Tag(0), 0)
            } else {
                RankProgram::new()
                    .irecv(Rank(0), Tag(0), ReqId(7))
                    .compute(simclock::Dur::from_ms(1))
                    .wait(ReqId(7))
            }
        });
        let out = run(&mut cluster, &prog, &RunOptions::default()).unwrap();
        // Recv event exists and run ends just after the 1 ms compute.
        let m = match_messages(&out.trace);
        assert_eq!(m.messages.len(), 1);
        assert!(out.stats.end_time < Time::from_us(1100));
    }

    #[test]
    fn posting_order_matching_with_mixed_waits() {
        // Two messages on one channel; requests waited out of order must
        // still match in posting order (MPI non-overtaking).
        let mut cluster = ideal_cluster(2);
        let prog = Program::build(2, |r| {
            if r.0 == 0 {
                RankProgram::new()
                    .send(Rank(1), Tag(3), 1)
                    .send(Rank(1), Tag(3), 2)
            } else {
                RankProgram::new()
                    .irecv(Rank(0), Tag(3), ReqId(1))
                    .irecv(Rank(0), Tag(3), ReqId(2))
                    .wait(ReqId(2))
                    .wait(ReqId(1))
            }
        });
        let out = run(&mut cluster, &prog, &RunOptions::default()).unwrap();
        let m = match_messages(&out.trace);
        assert!(m.is_complete());
        assert_eq!(m.messages.len(), 2);
        // Matching follows program order of recvs: the first *recorded*
        // recv belongs to the wait(ReqId(2)) — slot 1 — so its payload is
        // the second message. The checker sees sizes from the send side.
        assert_eq!(m.messages[0].bytes, 1);
        assert_eq!(m.messages[1].bytes, 2);
    }

    #[test]
    fn waitall_completes_everything() {
        let mut cluster = ideal_cluster(3);
        let prog = Program::build(3, |r| {
            let next = Rank((r.0 + 1) % 3);
            let prev = Rank((r.0 + 2) % 3);
            let mut p = RankProgram::new();
            for i in 0..5u32 {
                p = p
                    .irecv(prev, Tag(i), ReqId(100 + i))
                    .isend(next, Tag(i), 32, ReqId(i));
            }
            p.waitall()
        });
        let out = run(&mut cluster, &prog, &RunOptions::default()).unwrap();
        let m = match_messages(&out.trace);
        assert!(m.is_complete());
        assert_eq!(m.messages.len(), 15);
    }

    #[test]
    fn duplicate_request_id_is_an_error() {
        let mut cluster = ideal_cluster(2);
        let prog = Program::build(2, |r| {
            if r.0 == 0 {
                RankProgram::new()
                    .isend(Rank(1), Tag(0), 0, ReqId(1))
                    .isend(Rank(1), Tag(1), 0, ReqId(1))
                    .waitall()
            } else {
                RankProgram::new().recv(Rank(0), Tag(0)).recv(Rank(0), Tag(1))
            }
        });
        let err = run(&mut cluster, &prog, &RunOptions::default()).unwrap_err();
        assert!(matches!(err, SimError::BadRequest(_)));
    }

    #[test]
    fn wait_on_unknown_request_is_an_error() {
        let mut cluster = ideal_cluster(1);
        let prog = Program::build(1, |_| RankProgram::new().wait(ReqId(9)));
        let err = run(&mut cluster, &prog, &RunOptions::default()).unwrap_err();
        assert!(matches!(err, SimError::BadRequest(_)));
    }

    #[test]
    fn deadlock_free_exchange_with_nonblocking() {
        // Symmetric simultaneous exchange that would deadlock with
        // blocking receives first: irecv + isend + waitall sails through.
        let mut cluster = ideal_cluster(2);
        let prog = Program::build(2, |r| {
            let peer = Rank(1 - r.0);
            RankProgram::new()
                .irecv(peer, Tag(0), ReqId(0))
                .isend(peer, Tag(0), 128, ReqId(1))
                .waitall()
        });
        let out = run(&mut cluster, &prog, &RunOptions::default()).unwrap();
        let m = match_messages(&out.trace);
        assert!(m.is_complete());
        assert_eq!(m.messages.len(), 2);
    }
}

#[cfg(test)]
mod sendrecv_tests {
    use super::*;
    use crate::program::{Program, RankProgram};
    use simclock::{ClockDomain, ClockProfile, MachineShape, TimerKind};
    use tracefmt::{match_messages, Tag};

    #[test]
    fn symmetric_sendrecv_ring_does_not_deadlock() {
        let shape = MachineShape::new(4, 1, 1);
        let clocks = ClockEnsemble::build(
            shape,
            ClockDomain::Global,
            &ClockProfile::bare(TimerKind::IntelTsc),
            0,
        );
        let mut cluster = Cluster::new(
            netsim::Placement::one_per_node(shape, 4),
            Topology::Crossbar,
            HierarchicalLatency::xeon_infiniband(),
            clocks,
            1,
        );
        let prog = Program::build(4, |r| {
            let next = Rank((r.0 + 1) % 4);
            let prev = Rank((r.0 + 3) % 4);
            let mut p = RankProgram::new();
            for i in 0..10u32 {
                p = p.sendrecv(next, Tag(i), 128, prev, Tag(i));
            }
            p
        });
        let out = run(&mut cluster, &prog, &RunOptions::default()).unwrap();
        let m = match_messages(&out.trace);
        assert!(m.is_complete());
        assert_eq!(m.messages.len(), 40);
    }
}

#[cfg(test)]
mod error_path_tests {
    use super::*;
    use crate::program::{Program, RankProgram};
    use simclock::{ClockDomain, ClockProfile, MachineShape, TimerKind};
    use tracefmt::Tag;

    fn tiny_cluster(ranks: usize) -> Cluster {
        let shape = MachineShape::new(ranks, 1, 1);
        let clocks = ClockEnsemble::build(
            shape,
            ClockDomain::Global,
            &ClockProfile::bare(TimerKind::IntelTsc),
            0,
        );
        Cluster::new(
            netsim::Placement::one_per_node(shape, ranks),
            Topology::Crossbar,
            HierarchicalLatency::xeon_infiniband(),
            clocks,
            2,
        )
    }

    #[test]
    fn send_to_unknown_rank_is_an_error() {
        let mut c = tiny_cluster(2);
        let prog = Program::build(2, |r| {
            if r.0 == 0 {
                RankProgram::new().send(Rank(7), Tag(0), 8)
            } else {
                RankProgram::new()
            }
        });
        assert!(matches!(
            run(&mut c, &prog, &RunOptions::default()),
            Err(SimError::BadRank(Rank(7)))
        ));
    }

    #[test]
    fn program_larger_than_cluster_is_an_error() {
        let mut c = tiny_cluster(2);
        let prog = Program::new(5);
        assert!(matches!(
            run(&mut c, &prog, &RunOptions::default()),
            Err(SimError::BadRank(_))
        ));
    }

    #[test]
    fn mismatched_collective_ops_are_an_error() {
        let mut c = tiny_cluster(2);
        let prog = Program::build(2, |r| {
            if r.0 == 0 {
                RankProgram::new().barrier(CommId::WORLD)
            } else {
                RankProgram::new().allreduce(CommId::WORLD, 8)
            }
        });
        assert!(matches!(
            run(&mut c, &prog, &RunOptions::default()),
            Err(SimError::CollectiveMismatch(_))
        ));
    }

    #[test]
    fn unknown_communicator_is_an_error() {
        let mut c = tiny_cluster(2);
        let prog = Program::build(2, |_| RankProgram::new().barrier(CommId(9)));
        assert!(matches!(
            run(&mut c, &prog, &RunOptions::default()),
            Err(SimError::CollectiveMismatch(_))
        ));
    }

    #[test]
    fn unwrapped_calls_shrink_the_trace() {
        let mut c = tiny_cluster(2);
        let prog = Program::build(2, |r| {
            if r.0 == 0 {
                RankProgram::new().send(Rank(1), Tag(0), 8)
            } else {
                RankProgram::new().recv(Rank(0), Tag(0))
            }
        });
        let opts = RunOptions {
            wrap_mpi_calls: false,
            ..RunOptions::default()
        };
        let out = run(&mut c, &prog, &opts).unwrap();
        // Just Send + Recv, no Enter/Exit wrappers.
        assert_eq!(out.trace.n_events(), 2);
    }

    #[test]
    fn empty_programs_finish_immediately() {
        let mut c = tiny_cluster(3);
        let out = run(&mut c, &Program::new(3), &RunOptions::default()).unwrap();
        assert_eq!(out.stats.events, 0);
        assert_eq!(out.stats.messages, 0);
        assert_eq!(out.stats.end_time, Time::ZERO);
    }

    #[test]
    fn start_time_offsets_the_whole_run() {
        let mut c = tiny_cluster(1);
        let prog = Program::build(1, |_| {
            RankProgram::new().compute(simclock::Dur::from_us(50))
        });
        let opts = RunOptions {
            start_time: Time::from_secs(5),
            ..RunOptions::default()
        };
        let out = run(&mut c, &prog, &opts).unwrap();
        assert_eq!(out.stats.end_time, Time::from_secs(5) + simclock::Dur::from_us(50));
    }
}
