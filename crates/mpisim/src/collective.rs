//! Collective-operation timing.
//!
//! Collectives are lowered onto the point-to-point algorithms MPI libraries
//! actually use — binomial trees for rooted operations, dissemination
//! exchange for N-to-N — so their completion times inherit the latency
//! hierarchy of the simulated machine. Only `CollBegin`/`CollEnd` events are
//! traced (as real tracers do); the internal tree messages exist purely for
//! timing. With 4 nodes the dissemination allreduce costs two rounds of
//! inter-node latency plus software overhead — landing at the paper's
//! Table II value of ≈12.9 µs.

use simclock::{Dur, Time};
use tracefmt::{CollFlavor, CollOp, Rank};

/// Sampling interface the collective scheduler needs from the cluster.
pub trait PairwiseLatency {
    /// Sample a transfer delay for one internal message departing at true
    /// time `at`.
    fn sample_latency(&mut self, from: Rank, to: Rank, bytes: u64, at: Time) -> Dur;
}

/// Software-cost knobs of the collective algorithms.
#[derive(Debug, Clone, Copy)]
pub struct CollTuning {
    /// Per-message software overhead inside the collective (stack, copy,
    /// reduction op).
    pub per_msg_overhead: Dur,
    /// Cost from last internal message to the operation returning.
    pub exit_overhead: Dur,
}

impl Default for CollTuning {
    fn default() -> Self {
        CollTuning {
            per_msg_overhead: Dur::from_ns(2200),
            exit_overhead: Dur::from_ns(300),
        }
    }
}

/// Compute the true-time completion instant of every member of a collective.
///
/// `members[i] = (rank, begin)` where `begin` is the true time the rank
/// entered the operation, **in communicator rank order**. Returns the end
/// times parallel to `members`.
pub fn schedule_collective(
    op: CollOp,
    members: &[(Rank, Time)],
    root: Option<Rank>,
    lat: &mut dyn PairwiseLatency,
    tuning: &CollTuning,
    bytes: u64,
) -> Vec<Time> {
    assert!(!members.is_empty(), "collective with no members");
    if members.len() == 1 {
        return vec![members[0].1 + tuning.exit_overhead];
    }
    match op.flavor() {
        CollFlavor::OneToN => {
            let root = root.expect("rooted collective without root");
            one_to_n(members, root, lat, tuning, bytes)
        }
        CollFlavor::NToOne => {
            let root = root.expect("rooted collective without root");
            n_to_one(members, root, lat, tuning, bytes)
        }
        CollFlavor::NToN => n_to_n(members, lat, tuning, bytes),
        CollFlavor::Prefix => prefix(members, lat, tuning, bytes),
    }
}

/// Position of `root` within `members`.
fn root_pos(members: &[(Rank, Time)], root: Rank) -> usize {
    members
        .iter()
        .position(|&(r, _)| r == root)
        .expect("root not a member of the collective")
}

/// Binomial-tree broadcast/scatter: the root sends to sub-roots round by
/// round; each internal node forwards as soon as it holds the data (and has
/// entered the operation itself).
#[allow(clippy::needless_range_loop)]
fn one_to_n(
    members: &[(Rank, Time)],
    root: Rank,
    lat: &mut dyn PairwiseLatency,
    tuning: &CollTuning,
    bytes: u64,
) -> Vec<Time> {
    let n = members.len();
    let rpos = root_pos(members, root);
    // Tree index t -> member index: (rpos + t) % n.
    let member = |t: usize| (rpos + t) % n;
    // t_have[t]: instant tree-node t holds the payload; next_free[t]: when
    // it can issue its next send.
    let mut t_have: Vec<Option<Time>> = vec![None; n];
    let mut next_free: Vec<Time> = vec![Time::ZERO; n];
    t_have[0] = Some(members[member(0)].1);
    next_free[0] = members[member(0)].1;
    let mut stride = 1usize;
    while stride < n {
        for j in 0..stride {
            let child = j + stride;
            if child >= n {
                continue;
            }
            let have = t_have[j].expect("binomial order violated");
            let send_at = next_free[j].max(have);
            next_free[j] = send_at + tuning.per_msg_overhead;
            let from = members[member(j)].0;
            let to = members[member(child)].0;
            let arrival = send_at + tuning.per_msg_overhead + lat.sample_latency(from, to, bytes, send_at);
            // A receiver cannot complete before it posted the operation.
            let begin_child = members[member(child)].1;
            t_have[child] = Some(arrival.max(begin_child));
            next_free[child] = t_have[child].unwrap();
        }
        stride *= 2;
    }
    let mut ends = vec![Time::ZERO; n];
    for t in 0..n {
        let m = member(t);
        let done = if t == 0 {
            // Root is done when its last send is issued.
            next_free[0]
        } else {
            t_have[t].expect("unreached tree node")
        };
        ends[m] = done + tuning.exit_overhead;
    }
    ends
}

/// Binomial-tree reduce/gather: leaves send up as soon as they enter;
/// internal nodes forward after combining all children.
fn n_to_one(
    members: &[(Rank, Time)],
    root: Rank,
    lat: &mut dyn PairwiseLatency,
    tuning: &CollTuning,
    bytes: u64,
) -> Vec<Time> {
    let n = members.len();
    let rpos = root_pos(members, root);
    let member = |t: usize| (rpos + t) % n;
    // t_ready[t]: instant tree node t has combined its subtree.
    let mut t_ready: Vec<Time> = (0..n).map(|t| members[member(t)].1).collect();
    let mut ends = vec![Time::ZERO; n];
    // Largest power of two < n: process rounds top stride down so children
    // are complete before they send.
    let mut stride = 1usize;
    while stride * 2 <= n.next_power_of_two() && stride < n {
        stride *= 2;
    }
    // `stride` is now >= the highest child offset; iterate down.
    while stride >= 1 {
        for j in 0..stride.min(n) {
            let child = j + stride;
            if child >= n {
                continue;
            }
            let from = members[member(child)].0;
            let to = members[member(j)].0;
            let send_at = t_ready[child] + tuning.per_msg_overhead;
            ends[member(child)] = send_at; // child is done once it sent
            let arrival = send_at + lat.sample_latency(from, to, bytes, send_at);
            t_ready[j] = t_ready[j].max(arrival) + tuning.per_msg_overhead;
        }
        stride /= 2;
    }
    ends[member(0)] = t_ready[0];
    for e in ends.iter_mut() {
        *e += tuning.exit_overhead;
    }
    ends
}

/// Prefix reduction (scan): implemented as the linear chain MPI libraries
/// use for small communicators — rank i combines its value with the partial
/// result received from rank i−1 and forwards to rank i+1. Rank 0 finishes
/// immediately after sending; rank i cannot finish before every lower rank
/// contributed.
fn prefix(
    members: &[(Rank, Time)],
    lat: &mut dyn PairwiseLatency,
    tuning: &CollTuning,
    bytes: u64,
) -> Vec<Time> {
    let n = members.len();
    let mut ends = vec![Time::ZERO; n];
    // Partial result available at member i.
    let mut have = members[0].1 + tuning.per_msg_overhead;
    ends[0] = have;
    for i in 1..n {
        let from = members[i - 1].0;
        let to = members[i].0;
        let arrival = have + lat.sample_latency(from, to, bytes, have);
        have = arrival.max(members[i].1) + tuning.per_msg_overhead;
        ends[i] = have;
    }
    ends.into_iter().map(|e| e + tuning.exit_overhead).collect()
}

/// Dissemination exchange (barrier/allreduce/allgather/alltoall): in round
/// `r` member `i` sends to `(i + 2^r) mod n` and waits for the message from
/// `(i − 2^r) mod n`; after `⌈log2 n⌉` rounds everyone transitively heard
/// from everyone.
fn n_to_n(
    members: &[(Rank, Time)],
    lat: &mut dyn PairwiseLatency,
    tuning: &CollTuning,
    bytes: u64,
) -> Vec<Time> {
    let n = members.len();
    let mut t: Vec<Time> = members.iter().map(|&(_, b)| b).collect();
    let mut stride = 1usize;
    while stride < n {
        let mut next = vec![Time::ZERO; n];
        for i in 0..n {
            let src = (i + n - stride % n) % n;
            let from = members[src].0;
            let to = members[i].0;
            let msg_arrival =
                t[src] + tuning.per_msg_overhead + lat.sample_latency(from, to, bytes, t[src]);
            next[i] = (t[i] + tuning.per_msg_overhead).max(msg_arrival);
        }
        t = next;
        stride *= 2;
    }
    t.into_iter().map(|x| x + tuning.exit_overhead).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fixed latency for deterministic assertions.
    struct FixedLat(Dur);
    impl PairwiseLatency for FixedLat {
        fn sample_latency(&mut self, _f: Rank, _t: Rank, _b: u64, _at: Time) -> Dur {
            self.0
        }
    }

    fn members(begins_us: &[i64]) -> Vec<(Rank, Time)> {
        begins_us
            .iter()
            .enumerate()
            .map(|(i, &b)| (Rank(i as u32), Time::from_us(b)))
            .collect()
    }

    fn tuning() -> CollTuning {
        CollTuning {
            per_msg_overhead: Dur::from_us(1),
            exit_overhead: Dur::ZERO,
        }
    }

    #[test]
    fn nton_ends_after_every_begin() {
        let ms = members(&[0, 50, 10, 30]);
        let ends = schedule_collective(
            CollOp::Barrier,
            &ms,
            None,
            &mut FixedLat(Dur::from_us(4)),
            &tuning(),
            0,
        );
        let max_begin = Time::from_us(50);
        for (i, e) in ends.iter().enumerate() {
            // The clock condition for N-to-N: member i cannot leave before
            // every *other* member entered plus one message latency.
            let other_max = ms
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &(_, b))| b)
                .max()
                .unwrap();
            assert!(
                *e >= other_max + Dur::from_us(4),
                "member {i} exits at {e:?} before barrier could complete"
            );
            // No member waits absurdly long: bound by rounds * (lat + ovh).
            assert!(*e <= max_begin + Dur::from_us(2 * 5 + 5));
        }
    }

    #[test]
    fn nton_scales_with_log_rounds() {
        let t = tuning();
        let mut l = FixedLat(Dur::from_us(4));
        let e4 = schedule_collective(CollOp::Allreduce, &members(&[0, 0, 0, 0]), None, &mut l, &t, 8);
        let e8 = schedule_collective(
            CollOp::Allreduce,
            &members(&[0; 8]),
            None,
            &mut l,
            &t,
            8,
        );
        // 2 rounds vs 3 rounds of (1 µs overhead + 4 µs latency).
        assert_eq!(e4[0], Time::from_us(10));
        assert_eq!(e8[0], Time::from_us(15));
    }

    #[test]
    fn table2_allreduce_magnitude() {
        // 4 nodes, inter-node 4.27 µs, default tuning: mean ≈ 12.9 µs round
        // time like the paper's Table II.
        let ends = schedule_collective(
            CollOp::Allreduce,
            &members(&[0, 0, 0, 0]),
            None,
            &mut FixedLat(Dur::from_us_f64(4.09)),
            &CollTuning::default(),
            8,
        );
        let us = (ends[0] - Time::ZERO).as_us_f64();
        assert!((us - 12.86).abs() < 1.0, "allreduce time {us} µs");
    }

    #[test]
    fn bcast_root_finishes_first_and_depth_orders_arrivals() {
        let ms = members(&[0, 0, 0, 0, 0, 0, 0, 0]);
        let ends = schedule_collective(
            CollOp::Bcast,
            &ms,
            Some(Rank(0)),
            &mut FixedLat(Dur::from_us(4)),
            &tuning(),
            64,
        );
        // Root issues 3 sends at 1 µs each.
        assert_eq!(ends[0], Time::from_us(3));
        // Direct children of the root (tree indices 1, 2, 4) get the data
        // earlier than the deepest node (tree index 7).
        assert!(ends[1] < ends[7]);
        assert!(ends[2] < ends[7]);
        assert!(ends[4] < ends[7]);
        // Everyone got it within depth*(overhead*2+lat) of the root begin.
        for e in &ends {
            assert!(*e <= Time::from_us(3 * 6 + 3));
        }
    }

    #[test]
    fn bcast_respects_late_receivers() {
        // A receiver that begins late cannot complete before it begins.
        let ms = members(&[0, 500, 0, 0]);
        let ends = schedule_collective(
            CollOp::Bcast,
            &ms,
            Some(Rank(0)),
            &mut FixedLat(Dur::from_us(4)),
            &tuning(),
            8,
        );
        assert!(ends[1] >= Time::from_us(500));
        // But other members are unaffected by the straggler in a 1-to-N.
        assert!(ends[2] < Time::from_us(100));
    }

    #[test]
    fn reduce_root_waits_for_stragglers() {
        let ms = members(&[0, 300, 0, 0]);
        let ends = schedule_collective(
            CollOp::Reduce,
            &ms,
            Some(Rank(0)),
            &mut FixedLat(Dur::from_us(4)),
            &tuning(),
            8,
        );
        // Root cannot combine before the straggler's contribution arrives.
        assert!(ends[0] >= Time::from_us(305));
        // The straggler itself leaves soon after sending.
        assert!(ends[1] <= Time::from_us(310));
        // Early leaves exit quickly.
        assert!(ends[2] <= Time::from_us(20));
    }

    #[test]
    fn non_zero_root_is_supported() {
        let ms = members(&[0, 0, 0, 0]);
        let ends = schedule_collective(
            CollOp::Bcast,
            &ms,
            Some(Rank(2)),
            &mut FixedLat(Dur::from_us(4)),
            &tuning(),
            8,
        );
        // Rank 2 is the tree root: it finishes after its sends only.
        let min = ends.iter().min().unwrap();
        assert_eq!(ends[2], *min);
    }

    #[test]
    fn scan_is_a_forward_chain() {
        let ms = members(&[0, 0, 0, 0]);
        let ends = schedule_collective(
            CollOp::Scan,
            &ms,
            None,
            &mut FixedLat(Dur::from_us(4)),
            &tuning(),
            8,
        );
        // Rank 0: overhead only; each later rank adds one hop.
        assert_eq!(ends[0], Time::from_us(1));
        assert_eq!(ends[1], Time::from_us(6));
        assert_eq!(ends[2], Time::from_us(11));
        assert_eq!(ends[3], Time::from_us(16));
        // Rank i never finishes before a lower rank plus the latency.
        for i in 1..4 {
            assert!(ends[i] >= ends[i - 1] + Dur::from_us(4));
        }
    }

    #[test]
    fn scan_respects_late_lower_ranks() {
        // Rank 1 begins late: all higher ranks are held up; rank 0 is not.
        let ms = members(&[0, 500, 0, 0]);
        let ends = schedule_collective(
            CollOp::Scan,
            &ms,
            None,
            &mut FixedLat(Dur::from_us(4)),
            &tuning(),
            8,
        );
        assert!(ends[0] < Time::from_us(10));
        assert!(ends[2] >= Time::from_us(500));
        assert!(ends[3] >= Time::from_us(505));
    }

    #[test]
    fn singleton_collective_is_trivial() {
        let ends = schedule_collective(
            CollOp::Barrier,
            &members(&[7]),
            None,
            &mut FixedLat(Dur::from_us(4)),
            &CollTuning::default(),
            0,
        );
        assert_eq!(ends.len(), 1);
        assert!(ends[0] >= Time::from_us(7));
    }

    #[test]
    #[should_panic(expected = "root not a member")]
    fn foreign_root_panics() {
        let _ = schedule_collective(
            CollOp::Bcast,
            &members(&[0, 0]),
            Some(Rank(9)),
            &mut FixedLat(Dur::from_us(1)),
            &tuning(),
            0,
        );
    }
}
