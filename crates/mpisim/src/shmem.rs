//! OpenMP / POMP shared-memory simulation.
//!
//! Models the paper's Itanium experiment (Figs. 3 and 8): an OpenMP
//! parallel-for loop executed by a team of threads spread — unpinned —
//! across the chips of one SMP node, each chip with its own unsynchronised
//! cycle counter. Events follow the POMP model: the master records
//! `Fork`/`Join`, every thread records its region work bracketed by the
//! implicit barrier's `BarrierEnter`/`BarrierExit`.
//!
//! Whether a timestamp inversion appears is a race between two quantities:
//! the **inter-chip clock offsets** (≈1 µs on this system) and the **gaps
//! that OpenMP synchronisation latencies put between dependent events**.
//! All three gap sources — team setup at the fork, barrier gather, team
//! teardown before the join — scale with the number of threads, which is
//! the paper's explanation for why 4-thread runs show violations in 83 % of
//! regions while 16-thread runs show none.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use simclock::{gaussian, ClockEnsemble, CoreId, Dur, MachineShape, Time};
use tracefmt::{EventKind, RegionId, Trace};

/// How the (unpinned) threads land on cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadPlacement {
    /// Thread `i` on chip `i mod n_chips` (spread; worst case for clock
    /// consistency at small team sizes).
    RoundRobinChips,
    /// Threads fill chip 0 first (best case: shared clocks).
    Packed,
    /// Random assignment, as an unpinned scheduler would produce.
    Random,
}

/// Latency knobs of the simulated OpenMP runtime, all scaling with the team
/// size where the real costs do.
#[derive(Debug, Clone, Copy)]
pub struct OmpTimings {
    /// Fixed fork cost before any worker starts.
    pub fork_base: Dur,
    /// Team-setup cost per thread, paid before any worker starts.
    pub fork_per_thread: Dur,
    /// Additional stagger between consecutive worker start signals.
    pub dispatch_stagger: Dur,
    /// Mean loop-body duration per thread.
    pub body_mean: Dur,
    /// Coefficient of variation of the body duration.
    pub body_cv: f64,
    /// Barrier arrival-processing cost per thread (gather phase), paid
    /// between the last arrival and the first release.
    pub barrier_gather_per_thread: Dur,
    /// Stagger between consecutive thread releases.
    pub release_stagger: Dur,
    /// Fixed join cost after the last thread left the barrier.
    pub join_base: Dur,
    /// Team-teardown cost per thread before the join completes.
    pub join_per_thread: Dur,
    /// Serial master work between consecutive parallel regions.
    pub serial_gap: Dur,
    /// Coefficient of variation applied to every synchronisation cost per
    /// region (OS jitter on the runtime's internal operations).
    pub sync_cv: f64,
}

impl Default for OmpTimings {
    fn default() -> Self {
        OmpTimings {
            fork_base: Dur::from_ns(500),
            fork_per_thread: Dur::from_ns(350),
            dispatch_stagger: Dur::from_ns(50),
            body_mean: Dur::from_us(100),
            body_cv: 0.05,
            barrier_gather_per_thread: Dur::from_ns(450),
            release_stagger: Dur::from_ns(50),
            join_base: Dur::from_ns(100),
            join_per_thread: Dur::from_ns(330),
            serial_gap: Dur::from_us(20),
            sync_cv: 0.25,
        }
    }
}

/// Configuration of one OpenMP benchmark run.
#[derive(Debug, Clone)]
pub struct OmpConfig {
    /// Team size.
    pub threads: usize,
    /// Number of parallel-for region instances to execute.
    pub regions: usize,
    /// Runtime latencies.
    pub timings: OmpTimings,
    /// Thread-to-core assignment policy.
    pub placement: ThreadPlacement,
}

/// Run the parallel-for loop benchmark on one SMP node and return the POMP
/// event trace (one timeline per thread, timestamps from each thread's
/// chip-local clock).
///
/// `shape` must describe a single node; `clocks` supplies the per-chip (or
/// per-core) clocks.
pub fn run_parallel_for(
    shape: MachineShape,
    clocks: &mut ClockEnsemble,
    cfg: &OmpConfig,
    seed: u64,
) -> Trace {
    assert!(cfg.threads >= 1, "need at least the master thread");
    assert!(
        cfg.threads <= shape.n_cores(),
        "more threads than cores on the node"
    );
    let cores = assign_cores(shape, cfg.threads, cfg.placement, seed);
    // Distinct stream from the placement RNG ("OpenMP\0\1" tag).
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4f70_656e_4d50_0001);
    let mut trace = Trace::for_threads(cfg.threads);
    let mut last_ts = vec![Time::MIN; cfg.threads];
    let t = &cfg.timings;
    let region = RegionId(0);

    // Record helper with the per-thread monotone clamp a tracer applies.
    let record = |trace: &mut Trace,
                      clocks: &mut ClockEnsemble,
                      last_ts: &mut Vec<Time>,
                      thread: usize,
                      true_time: Time,
                      kind: EventKind| {
        let ts = clocks.sample(cores[thread], true_time).max(last_ts[thread]);
        last_ts[thread] = ts;
        trace.procs[thread].push(ts, kind);
    };

    let mut now = Time::from_us(10); // arbitrary start
    for _ in 0..cfg.regions {
        // --- fork ------------------------------------------------------
        record(&mut trace, clocks, &mut last_ts, 0, now, EventKind::Fork { region });
        let jit = |rng: &mut StdRng| (1.0 + t.sync_cv * gaussian(rng)).max(0.2);
        let setup = (t.fork_base + t.fork_per_thread * cfg.threads as i64).scale(jit(&mut rng));
        let setup_done = now + setup;
        // Thread i starts after team setup plus its dispatch stagger.
        let mut body_end = vec![Time::ZERO; cfg.threads];
        #[allow(clippy::needless_range_loop)]
        for i in 0..cfg.threads {
            let start = setup_done + t.dispatch_stagger * i as i64;
            record(
                &mut trace,
                clocks,
                &mut last_ts,
                i,
                start,
                EventKind::Enter { region },
            );
            let body = t.body_mean.scale((1.0 + t.body_cv * gaussian(&mut rng)).max(0.05));
            body_end[i] = start + body;
            record(
                &mut trace,
                clocks,
                &mut last_ts,
                i,
                body_end[i],
                EventKind::Exit { region },
            );
        }
        // --- implicit barrier -------------------------------------------
        for (i, &be) in body_end.iter().enumerate() {
            record(
                &mut trace,
                clocks,
                &mut last_ts,
                i,
                be,
                EventKind::BarrierEnter { region },
            );
        }
        let all_in = body_end.iter().copied().max().expect("non-empty team");
        let gather =
            (t.barrier_gather_per_thread * cfg.threads as i64).scale(jit(&mut rng));
        let release_start = all_in + gather;
        let mut exits = vec![Time::ZERO; cfg.threads];
        #[allow(clippy::needless_range_loop)]
        for i in 0..cfg.threads {
            exits[i] = release_start + t.release_stagger * i as i64;
            record(
                &mut trace,
                clocks,
                &mut last_ts,
                i,
                exits[i],
                EventKind::BarrierExit { region },
            );
        }
        // --- join --------------------------------------------------------
        let last_exit = exits.iter().copied().max().expect("non-empty team");
        let join_at = last_exit
            + (t.join_base + t.join_per_thread * cfg.threads as i64).scale(jit(&mut rng));
        record(
            &mut trace,
            clocks,
            &mut last_ts,
            0,
            join_at,
            EventKind::Join { region },
        );
        now = join_at + t.serial_gap;
    }
    trace
}

/// Assign team threads to cores of the node.
fn assign_cores(
    shape: MachineShape,
    threads: usize,
    placement: ThreadPlacement,
    seed: u64,
) -> Vec<CoreId> {
    match placement {
        ThreadPlacement::Packed => (0..threads).map(CoreId).collect(),
        ThreadPlacement::RoundRobinChips => {
            let chips = shape.chips_per_node;
            (0..threads)
                .map(|i| shape.core(0, i % chips, i / chips))
                .collect()
        }
        ThreadPlacement::Random => {
            let mut all: Vec<CoreId> = shape.cores().collect();
            let mut rng = StdRng::seed_from_u64(seed);
            all.shuffle(&mut rng);
            all.truncate(threads);
            all
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::{ClockDomain, ClockProfile, Platform, TimerKind};
    use tracefmt::{check_pomp, match_parallel_regions};

    fn itanium_clocks(seed: u64) -> (MachineShape, ClockEnsemble) {
        let shape = Platform::ItaniumSmp.shape(1);
        let profile = Platform::ItaniumSmp.clock_profile(TimerKind::CycleCounter, 60.0);
        let clocks = ClockEnsemble::build(shape, ClockDomain::PerChip, &profile, seed);
        (shape, clocks)
    }

    fn ideal_clocks(shape: MachineShape) -> ClockEnsemble {
        ClockEnsemble::build(
            shape,
            ClockDomain::Global,
            &ClockProfile::bare(TimerKind::CycleCounter),
            0,
        )
    }

    #[test]
    fn trace_structure_is_well_formed() {
        let (shape, _) = itanium_clocks(1);
        let mut clocks = ideal_clocks(shape);
        let cfg = OmpConfig {
            threads: 4,
            regions: 10,
            timings: OmpTimings::default(),
            placement: ThreadPlacement::RoundRobinChips,
        };
        let trace = run_parallel_for(shape, &mut clocks, &cfg, 7);
        assert_eq!(trace.n_procs(), 4);
        let regions = match_parallel_regions(&trace).unwrap();
        assert_eq!(regions.len(), 10);
        for r in &regions {
            assert_eq!(r.threads.len(), 4);
        }
    }

    #[test]
    fn ideal_clocks_show_no_violations() {
        let (shape, _) = itanium_clocks(2);
        let mut clocks = ideal_clocks(shape);
        let cfg = OmpConfig {
            threads: 8,
            regions: 50,
            timings: OmpTimings::default(),
            placement: ThreadPlacement::RoundRobinChips,
        };
        let trace = run_parallel_for(shape, &mut clocks, &cfg, 3);
        let regions = match_parallel_regions(&trace).unwrap();
        let rep = check_pomp(&trace, &regions);
        assert_eq!(rep.any_violations, 0, "{rep:?}");
    }

    #[test]
    fn skewed_chip_clocks_produce_violations_at_small_team() {
        let (shape, mut clocks) = itanium_clocks(11);
        let cfg = OmpConfig {
            threads: 4,
            regions: 100,
            timings: OmpTimings::default(),
            placement: ThreadPlacement::RoundRobinChips,
        };
        let trace = run_parallel_for(shape, &mut clocks, &cfg, 5);
        let regions = match_parallel_regions(&trace).unwrap();
        let rep = check_pomp(&trace, &regions);
        assert!(
            rep.any_pct() > 30.0,
            "expected frequent violations at 4 threads, got {rep:?}"
        );
    }

    #[test]
    fn large_teams_are_protected_by_sync_latency() {
        let (shape, mut clocks) = itanium_clocks(11);
        let cfg = OmpConfig {
            threads: 16,
            regions: 100,
            timings: OmpTimings::default(),
            placement: ThreadPlacement::RoundRobinChips,
        };
        let trace = run_parallel_for(shape, &mut clocks, &cfg, 5);
        let regions = match_parallel_regions(&trace).unwrap();
        let rep = check_pomp(&trace, &regions);
        assert!(
            rep.any_pct() < 10.0,
            "expected near-zero violations at 16 threads, got {rep:?}"
        );
    }

    #[test]
    fn packed_placement_shares_clocks_and_avoids_violations() {
        let (shape, mut clocks) = itanium_clocks(4);
        let cfg = OmpConfig {
            threads: 4,
            regions: 100,
            timings: OmpTimings::default(),
            placement: ThreadPlacement::Packed,
        };
        let trace = run_parallel_for(shape, &mut clocks, &cfg, 9);
        let regions = match_parallel_regions(&trace).unwrap();
        let rep = check_pomp(&trace, &regions);
        assert_eq!(rep.any_violations, 0, "{rep:?}");
    }

    #[test]
    fn random_placement_is_deterministic_per_seed() {
        let shape = Platform::ItaniumSmp.shape(1);
        let a = assign_cores(shape, 6, ThreadPlacement::Random, 42);
        let b = assign_cores(shape, 6, ThreadPlacement::Random, 42);
        assert_eq!(a, b);
        let c = assign_cores(shape, 6, ThreadPlacement::Random, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn per_thread_timelines_are_monotone() {
        let (shape, mut clocks) = itanium_clocks(8);
        let cfg = OmpConfig {
            threads: 12,
            regions: 30,
            timings: OmpTimings::default(),
            placement: ThreadPlacement::Random,
        };
        let trace = run_parallel_for(shape, &mut clocks, &cfg, 21);
        assert!(trace.is_locally_monotone());
    }
}
