//! Remote clock-reading round trips.
//!
//! This is the measurement half of Cristian's probabilistic clock reading
//! (paper Eq. 2): the master sends a request at its local time `t1`, the
//! worker replies with its local time `t0`, the master receives the reply at
//! `t2`. The *computation* of offsets from these rounds — including the
//! min-round-trip filtering that suppresses asymmetric-delay error — lives
//! in the `clocksync` crate; this module only simulates the wire exchange
//! with real network jitter, which is precisely what makes the measured
//! offsets imperfect.

use crate::runtime::Cluster;
use simclock::{Dur, Time};
use tracefmt::Rank;

/// One request/reply exchange: the three local timestamps of Eq. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeRound {
    /// Master's local time when the request left.
    pub t1: Time,
    /// Worker's local time when it replied.
    pub t0: Time,
    /// Master's local time when the reply arrived.
    pub t2: Time,
}

/// Result of probing one worker.
#[derive(Debug, Clone)]
pub struct ProbeSession {
    /// The worker probed.
    pub worker: Rank,
    /// All exchanged rounds in order.
    pub rounds: Vec<ProbeRound>,
    /// True time when the session finished.
    pub end_true: Time,
}

/// Probe `worker` from `master` with `rounds` request/reply exchanges
/// starting at true time `start`, `gap` apart.
///
/// Probe messages are small (16 bytes) and travel through the same jittered
/// latency model as application traffic.
pub fn probe_worker(
    cluster: &mut Cluster,
    master: Rank,
    worker: Rank,
    rounds: usize,
    start: Time,
    gap: Dur,
) -> ProbeSession {
    const PROBE_BYTES: u64 = 16;
    let m_core = cluster.placement.core_of(master.idx());
    let w_core = cluster.placement.core_of(worker.idx());
    let mut out = Vec::with_capacity(rounds);
    let mut now = start;
    for _ in 0..rounds {
        // Master reads t1 and fires the request.
        now += cluster.clocks.read_overhead(m_core);
        let t1 = cluster.clocks.sample(m_core, now);
        let depart = now + cluster.latency.send_overhead;
        let arrive_w = depart + cluster.sample_transfer(master, worker, PROBE_BYTES, depart);
        // Worker reads t0 and replies immediately.
        let mut w_now = arrive_w + cluster.clocks.read_overhead(w_core);
        let t0 = cluster.clocks.sample(w_core, w_now);
        w_now += cluster.latency.send_overhead;
        let arrive_m = w_now + cluster.sample_transfer(worker, master, PROBE_BYTES, w_now);
        // Master reads t2 on reply arrival.
        now = arrive_m + cluster.clocks.read_overhead(m_core);
        let t2 = cluster.clocks.sample(m_core, now);
        out.push(ProbeRound { t1, t0, t2 });
        now += gap;
    }
    ProbeSession {
        worker,
        rounds: out,
        end_true: now,
    }
}

/// Probe every non-master rank sequentially (Scalasca measures offsets rank
/// by rank during `MPI_Init`/`MPI_Finalize`). Returns one session per
/// worker, in rank order, plus the true time when the whole sweep ended.
pub fn probe_all_workers(
    cluster: &mut Cluster,
    master: Rank,
    rounds: usize,
    start: Time,
    gap: Dur,
) -> (Vec<ProbeSession>, Time) {
    let n = cluster.n_ranks();
    let mut sessions = Vec::with_capacity(n.saturating_sub(1));
    let mut now = start;
    for r in 0..n {
        let worker = Rank(r as u32);
        if worker == master {
            continue;
        }
        let s = probe_worker(cluster, master, worker, rounds, now, gap);
        now = s.end_true;
        sessions.push(s);
    }
    (sessions, now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{HierarchicalLatency, Placement, Topology};
    use simclock::{
        ClockDomain, ClockEnsemble, ClockProfile, ConstantDrift, MachineShape, NoiseSpec,
        SimClock, TimerKind,
    };
    use std::sync::Arc;

    fn cluster_with_offsets() -> Cluster {
        let shape = MachineShape::new(4, 1, 1);
        let profile = ClockProfile::bare(TimerKind::IntelTsc)
            .with_node_spread(1e-3, 0.0)
            .with_horizon(10.0);
        let clocks = ClockEnsemble::build(shape, ClockDomain::PerNode, &profile, 5);
        Cluster::new(
            Placement::one_per_node(shape, 4),
            Topology::Crossbar,
            HierarchicalLatency::xeon_infiniband(),
            clocks,
            11,
        )
    }

    #[test]
    fn round_trips_are_positive_and_ordered() {
        let mut c = cluster_with_offsets();
        let s = probe_worker(&mut c, Rank(0), Rank(1), 20, Time::ZERO, Dur::from_us(50));
        assert_eq!(s.rounds.len(), 20);
        for r in &s.rounds {
            assert!(r.t2 > r.t1, "reply before request on the master clock");
            // Round trip takes at least two minimum latencies.
            assert!(r.t2 - r.t1 >= Dur::from_us(8));
        }
        assert!(s.end_true > Time::ZERO);
    }

    #[test]
    fn eq2_recovers_known_offset() {
        // Offset estimate o = t1 + (t2-t1)/2 - t0 should be close to the
        // true offset (master - worker) with symmetric links.
        let mut c = cluster_with_offsets();
        let true_off = {
            let m = c.clocks.ideal_at(c.placement.core_of(0), Time::ZERO);
            let w = c.clocks.ideal_at(c.placement.core_of(1), Time::ZERO);
            m - w
        };
        let s = probe_worker(&mut c, Rank(0), Rank(1), 50, Time::ZERO, Dur::from_us(20));
        // Use the best (min round-trip) round, like Cristian suggests.
        let best = s
            .rounds
            .iter()
            .min_by_key(|r| (r.t2 - r.t1).as_ps())
            .unwrap();
        let est = best.t1 + (best.t2 - best.t1) / 2 - best.t0;
        let err = (est - true_off).abs();
        assert!(
            err < Dur::from_us(2),
            "offset estimate error {err:?} (true {true_off:?})"
        );
    }

    #[test]
    fn probe_all_skips_master_and_is_sequential() {
        let mut c = cluster_with_offsets();
        let (sessions, end) = probe_all_workers(&mut c, Rank(0), 5, Time::ZERO, Dur::from_us(10));
        assert_eq!(sessions.len(), 3);
        assert!(sessions.iter().all(|s| s.worker != Rank(0)));
        // Sessions are ordered in time.
        assert!(sessions[0].end_true <= sessions[1].end_true);
        assert!(sessions[2].end_true <= end);
    }

    #[test]
    fn asymmetric_offset_sign_is_correct() {
        // Hand-build a 2-node cluster where the worker clock is exactly
        // +500 µs ahead; Eq. 2 must return a negative master-minus-worker
        // offset.
        let shape = MachineShape::new(2, 1, 1);
        let profile = ClockProfile::bare(TimerKind::IntelTsc).with_horizon(10.0);
        let mut clocks = ClockEnsemble::build(shape, ClockDomain::PerNode, &profile, 0);
        *clocks.clock_of_core_mut(shape.core(1, 0, 0)) = SimClock::new(
            TimerKind::IntelTsc,
            Dur::from_us(500),
            Arc::new(ConstantDrift::zero()),
            NoiseSpec::noiseless(),
            0,
        );
        let mut c = Cluster::new(
            Placement::one_per_node(shape, 2),
            Topology::Crossbar,
            HierarchicalLatency::xeon_infiniband(),
            clocks,
            3,
        );
        let s = probe_worker(&mut c, Rank(0), Rank(1), 10, Time::ZERO, Dur::from_us(10));
        let best = s
            .rounds
            .iter()
            .min_by_key(|r| (r.t2 - r.t1).as_ps())
            .unwrap();
        let est = best.t1 + (best.t2 - best.t1) / 2 - best.t0;
        assert!(
            (est + Dur::from_us(500)).abs() < Dur::from_us(2),
            "estimated {est:?}, expected about -500us"
        );
    }
}
