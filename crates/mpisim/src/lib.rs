//! # mpisim — simulated MPI runtime and OpenMP model
//!
//! Executes message-passing [`program`]s on a simulated cluster
//! ([`runtime::Cluster`]) while tracing events with local-clock timestamps,
//! exactly as a PMPI-instrumented application would:
//!
//! * [`program`] — the rank-script DSL (compute, send/recv, collectives,
//!   tracing switches) used by the workload generators;
//! * [`runtime`] — the conservative rank-stepping scheduler, eager sends
//!   with non-overtaking channels, and the PMPI-style tracer;
//! * [`collective`] — binomial-tree / dissemination timing of collective
//!   operations (reproducing the paper's Table II allreduce latency);
//! * [`probe`] — Cristian round-trip simulation for offset measurement
//!   (paper Eq. 2);
//! * [`shmem`] — the OpenMP/POMP parallel-for model behind Figs. 3 and 8.

#![warn(missing_docs)]

pub mod collective;
pub mod probe;
pub mod program;
pub mod runtime;
pub mod shmem;

pub use collective::{schedule_collective, CollTuning, PairwiseLatency};
pub use probe::{probe_all_workers, probe_worker, ProbeRound, ProbeSession};
pub use program::{regions, MpiOp, Program, RankProgram, ReqId};
pub use runtime::{run, Cluster, RunOptions, RunOutput, RunStats, SimError};
pub use shmem::{run_parallel_for, OmpConfig, OmpTimings, ThreadPlacement};
