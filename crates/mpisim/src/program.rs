//! The simulated-program DSL.
//!
//! A [`Program`] is one [`RankProgram`] (a linear script of [`MpiOp`]s) per
//! rank. Workload generators build these scripts; the [`crate::runtime`]
//! executes them against the simulated cluster while the tracer records
//! events with local-clock timestamps — exactly the structure of a PMPI-
//! instrumented application run.

use simclock::Dur;
use tracefmt::{CollOp, CommId, Rank, RegionId, Tag};

/// Handle of a non-blocking operation within one rank's script (the MPI
/// request object). Ids are rank-local and chosen by the program author.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReqId(pub u32);

/// One operation in a rank's script.
#[derive(Debug, Clone, PartialEq)]
pub enum MpiOp {
    /// Busy work for a fixed duration.
    Compute {
        /// How long the computation takes.
        dur: Dur,
    },
    /// Busy work with multiplicative log-normal-ish jitter: actual duration
    /// is `mean · max(0.05, 1 + cv·N(0,1))`, drawn from the rank's workload
    /// RNG stream.
    ComputeJitter {
        /// Mean duration.
        mean: Dur,
        /// Coefficient of variation.
        cv: f64,
    },
    /// Idle without tracing (models the paper's sleep padding around
    /// SMG2000's computational phase).
    Sleep {
        /// How long to sleep.
        dur: Dur,
    },
    /// Blocking standard send.
    Send {
        /// Destination rank.
        to: Rank,
        /// Message tag.
        tag: Tag,
        /// Payload bytes.
        bytes: u64,
    },
    /// Blocking receive.
    Recv {
        /// Source rank.
        from: Rank,
        /// Message tag.
        tag: Tag,
    },
    /// Non-blocking send: the message departs immediately (eager protocol);
    /// the matching [`MpiOp::Wait`] completes instantly.
    Isend {
        /// Destination rank.
        to: Rank,
        /// Message tag.
        tag: Tag,
        /// Payload bytes.
        bytes: u64,
        /// Request handle for the later wait.
        req: ReqId,
    },
    /// Non-blocking receive: posts the request; the `Recv` event is
    /// recorded when [`MpiOp::Wait`] observes the message.
    Irecv {
        /// Source rank.
        from: Rank,
        /// Message tag.
        tag: Tag,
        /// Request handle for the later wait.
        req: ReqId,
    },
    /// Block until the given request completes.
    Wait {
        /// The request to complete.
        req: ReqId,
    },
    /// Block until every outstanding request of this rank completes
    /// (in posting order).
    Waitall,
    /// Collective operation on a communicator.
    Coll {
        /// Which collective.
        op: CollOp,
        /// Communicator.
        comm: CommId,
        /// Root for rooted flavours.
        root: Option<Rank>,
        /// Per-process payload bytes.
        bytes: u64,
    },
    /// Enter a user code region (traced).
    Enter {
        /// Region id.
        region: RegionId,
    },
    /// Leave a user code region (traced).
    Exit {
        /// Region id.
        region: RegionId,
    },
    /// Switch event recording on for this rank.
    TraceOn,
    /// Switch event recording off for this rank.
    TraceOff,
}

/// The script of one rank, with a builder API.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankProgram {
    /// Operations in program order.
    pub ops: Vec<MpiOp>,
}

impl RankProgram {
    /// Empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a fixed-duration compute phase.
    pub fn compute(mut self, dur: Dur) -> Self {
        self.ops.push(MpiOp::Compute { dur });
        self
    }

    /// Append a jittered compute phase.
    pub fn compute_jitter(mut self, mean: Dur, cv: f64) -> Self {
        self.ops.push(MpiOp::ComputeJitter { mean, cv });
        self
    }

    /// Append an untraced sleep.
    pub fn sleep(mut self, dur: Dur) -> Self {
        self.ops.push(MpiOp::Sleep { dur });
        self
    }

    /// Append a send.
    pub fn send(mut self, to: Rank, tag: Tag, bytes: u64) -> Self {
        self.ops.push(MpiOp::Send { to, tag, bytes });
        self
    }

    /// Append a receive.
    pub fn recv(mut self, from: Rank, tag: Tag) -> Self {
        self.ops.push(MpiOp::Recv { from, tag });
        self
    }

    /// Append a combined send/receive exchange (`MPI_Sendrecv`): the send
    /// is posted non-blocking, the receive completes, then the send request
    /// is drained — the standard deadlock-free exchange idiom.
    pub fn sendrecv(
        mut self,
        to: Rank,
        send_tag: Tag,
        bytes: u64,
        from: Rank,
        recv_tag: Tag,
    ) -> Self {
        // An internal request id far above the user range keeps sendrecv
        // composable with explicit Isend/Wait usage.
        const SENDRECV_REQ: ReqId = ReqId(u32::MAX);
        self.ops.push(MpiOp::Isend { to, tag: send_tag, bytes, req: SENDRECV_REQ });
        self.ops.push(MpiOp::Recv { from, tag: recv_tag });
        self.ops.push(MpiOp::Wait { req: SENDRECV_REQ });
        self
    }

    /// Append a non-blocking send.
    pub fn isend(mut self, to: Rank, tag: Tag, bytes: u64, req: ReqId) -> Self {
        self.ops.push(MpiOp::Isend { to, tag, bytes, req });
        self
    }

    /// Append a non-blocking receive.
    pub fn irecv(mut self, from: Rank, tag: Tag, req: ReqId) -> Self {
        self.ops.push(MpiOp::Irecv { from, tag, req });
        self
    }

    /// Append a wait on one request.
    pub fn wait(mut self, req: ReqId) -> Self {
        self.ops.push(MpiOp::Wait { req });
        self
    }

    /// Append a wait on all outstanding requests.
    pub fn waitall(mut self) -> Self {
        self.ops.push(MpiOp::Waitall);
        self
    }

    /// Append a barrier on `comm`.
    pub fn barrier(mut self, comm: CommId) -> Self {
        self.ops.push(MpiOp::Coll {
            op: CollOp::Barrier,
            comm,
            root: None,
            bytes: 0,
        });
        self
    }

    /// Append an allreduce on `comm`.
    pub fn allreduce(mut self, comm: CommId, bytes: u64) -> Self {
        self.ops.push(MpiOp::Coll {
            op: CollOp::Allreduce,
            comm,
            root: None,
            bytes,
        });
        self
    }

    /// Append a prefix reduction (scan) on `comm`.
    pub fn scan(mut self, comm: CommId, bytes: u64) -> Self {
        self.ops.push(MpiOp::Coll {
            op: CollOp::Scan,
            comm,
            root: None,
            bytes,
        });
        self
    }

    /// Append an arbitrary collective.
    pub fn coll(mut self, op: CollOp, comm: CommId, root: Option<Rank>, bytes: u64) -> Self {
        self.ops.push(MpiOp::Coll {
            op,
            comm,
            root,
            bytes,
        });
        self
    }

    /// Append a region enter.
    pub fn enter(mut self, region: RegionId) -> Self {
        self.ops.push(MpiOp::Enter { region });
        self
    }

    /// Append a region exit.
    pub fn exit(mut self, region: RegionId) -> Self {
        self.ops.push(MpiOp::Exit { region });
        self
    }

    /// Append a tracing switch-on.
    pub fn trace_on(mut self) -> Self {
        self.ops.push(MpiOp::TraceOn);
        self
    }

    /// Append a tracing switch-off.
    pub fn trace_off(mut self) -> Self {
        self.ops.push(MpiOp::TraceOff);
        self
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the script is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Scripts for all ranks of a run.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// One script per rank; index is the rank number.
    pub ranks: Vec<RankProgram>,
}

impl Program {
    /// Program with `n` empty rank scripts.
    pub fn new(n: usize) -> Self {
        Program {
            ranks: vec![RankProgram::new(); n],
        }
    }

    /// Build each rank's script with a closure.
    pub fn build<F: FnMut(Rank) -> RankProgram>(n: usize, mut f: F) -> Self {
        Program {
            ranks: (0..n).map(|r| f(Rank(r as u32))).collect(),
        }
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Total operation count across ranks.
    pub fn n_ops(&self) -> usize {
        self.ranks.iter().map(|r| r.ops.len()).sum()
    }
}

/// Well-known region ids for MPI call wrappers (the `Enter`/`Exit` pairs a
/// PMPI tracer emits around each call) and user code.
pub mod regions {
    use tracefmt::{CollOp, RegionId};

    /// `MPI_Send` wrapper region.
    pub const MPI_SEND: RegionId = RegionId(1);
    /// `MPI_Recv` wrapper region.
    pub const MPI_RECV: RegionId = RegionId(2);
    /// `MPI_Init` wrapper region.
    pub const MPI_INIT: RegionId = RegionId(3);
    /// `MPI_Finalize` wrapper region.
    pub const MPI_FINALIZE: RegionId = RegionId(4);
    /// `MPI_Isend` wrapper region.
    pub const MPI_ISEND: RegionId = RegionId(5);
    /// `MPI_Irecv` wrapper region.
    pub const MPI_IRECV: RegionId = RegionId(6);
    /// `MPI_Wait` / `MPI_Waitall` wrapper region.
    pub const MPI_WAIT: RegionId = RegionId(7);
    /// First id reserved for user regions.
    pub const USER_BASE: u32 = 1000;

    /// Wrapper region of a collective operation.
    pub fn coll_region(op: CollOp) -> RegionId {
        RegionId(match op {
            CollOp::Barrier => 10,
            CollOp::Bcast => 11,
            CollOp::Scatter => 12,
            CollOp::Reduce => 13,
            CollOp::Gather => 14,
            CollOp::Allreduce => 15,
            CollOp::Allgather => 16,
            CollOp::Alltoall => 17,
            CollOp::Scan => 18,
        })
    }

    /// A user region.
    pub fn user(n: u32) -> RegionId {
        RegionId(USER_BASE + n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let p = RankProgram::new()
            .enter(regions::user(0))
            .compute(Dur::from_us(100))
            .send(Rank(1), Tag(0), 64)
            .recv(Rank(1), Tag(1))
            .barrier(CommId::WORLD)
            .exit(regions::user(0));
        assert_eq!(p.len(), 6);
        assert!(matches!(p.ops[2], MpiOp::Send { bytes: 64, .. }));
        assert!(matches!(
            p.ops[4],
            MpiOp::Coll { op: CollOp::Barrier, .. }
        ));
    }

    #[test]
    fn program_build_per_rank() {
        let prog = Program::build(4, |r| {
            RankProgram::new().send(Rank((r.0 + 1) % 4), Tag(0), 8)
        });
        assert_eq!(prog.n_ranks(), 4);
        assert_eq!(prog.n_ops(), 4);
        assert!(matches!(
            prog.ranks[3].ops[0],
            MpiOp::Send { to: Rank(0), .. }
        ));
    }

    #[test]
    fn sendrecv_expands_to_the_exchange_idiom() {
        let p = RankProgram::new().sendrecv(Rank(1), Tag(0), 64, Rank(2), Tag(1));
        assert_eq!(p.len(), 3);
        assert!(matches!(p.ops[0], MpiOp::Isend { to: Rank(1), .. }));
        assert!(matches!(p.ops[1], MpiOp::Recv { from: Rank(2), .. }));
        assert!(matches!(p.ops[2], MpiOp::Wait { .. }));
    }

    #[test]
    fn wrapper_ids_match_the_tracefmt_registry() {
        let reg = tracefmt::RegionRegistry::with_mpi_wrappers();
        assert_eq!(reg.name(regions::MPI_SEND), Some("MPI_Send"));
        assert_eq!(reg.name(regions::MPI_RECV), Some("MPI_Recv"));
        assert_eq!(reg.name(regions::MPI_ISEND), Some("MPI_Isend"));
        assert_eq!(reg.name(regions::MPI_IRECV), Some("MPI_Irecv"));
        assert_eq!(reg.name(regions::MPI_WAIT), Some("MPI_Wait"));
        for op in [
            CollOp::Barrier,
            CollOp::Bcast,
            CollOp::Scatter,
            CollOp::Reduce,
            CollOp::Gather,
            CollOp::Allreduce,
            CollOp::Allgather,
            CollOp::Alltoall,
            CollOp::Scan,
        ] {
            assert_eq!(
                reg.name(regions::coll_region(op)),
                Some(op.label()),
                "registry out of sync for {op:?}"
            );
        }
    }

    #[test]
    fn region_ids_do_not_collide() {
        use std::collections::HashSet;
        let mut ids = HashSet::new();
        for r in [
            regions::MPI_SEND,
            regions::MPI_RECV,
            regions::MPI_INIT,
            regions::MPI_FINALIZE,
            regions::coll_region(CollOp::Barrier),
            regions::coll_region(CollOp::Allreduce),
            regions::coll_region(CollOp::Bcast),
            regions::user(0),
            regions::user(1),
        ] {
            assert!(ids.insert(r), "duplicate region id {r:?}");
        }
    }
}
