//! # drift-lab — non-constant clock drifts and the timestamps of concurrent events
//!
//! A full reproduction of Becker, Rabenseifner & Wolf, *"Implications of
//! non-constant clock drifts for the timestamps of concurrent events"*
//! (IEEE Cluster 2008), as a Rust workspace:
//!
//! * [`simclock`] — clock physics (drift models, NTP discipline, noise,
//!   platform profiles, hierarchical ensembles);
//! * [`netsim`] — deterministic cluster simulation (topologies, hierarchical
//!   latencies, placement);
//! * [`mpisim`] — a simulated MPI runtime with PMPI-style tracing, offset
//!   probing, and an OpenMP/POMP shared-memory model;
//! * [`tracefmt`] — the event model, trace containers, codecs, and
//!   clock-condition violation checks;
//! * [`clocksync`] — the algorithms: Cristian offset estimation (Eq. 2),
//!   linear offset interpolation (Eq. 3), logical clocks, the Controlled
//!   Logical Clock with amortization and collective mapping, and the
//!   classic baselines;
//! * [`onlinesync`] — online synchronization: a recursive drift/offset
//!   Kalman filter over Cristian probes, a streaming timestamp corrector,
//!   and dynamic-topology clock networks (churn, NTP islands, evolving
//!   sync spanning trees);
//! * [`workloads`] — POP-like, SMG2000-like, ping-pong and OpenMP workload
//!   generators;
//! * [`experiments`] — regenerates every table and figure of the paper;
//! * [`syncd`] — a multi-tenant synchronization *service* over the
//!   pipeline: admission control, priority scheduling, fault-isolated
//!   retried jobs, and a metrics registry.
//!
//! The [`prelude`] re-exports the types most programs need:
//!
//! ```
//! use drift_lab::prelude::*;
//!
//! // A 4-node Xeon cluster with drifting per-chip TSCs.
//! let shape = Platform::XeonCluster.shape(4);
//! let profile = Platform::XeonCluster.clock_profile(TimerKind::IntelTsc, 60.0);
//! let clocks = ClockEnsemble::build(shape, ClockDomain::PerChip, &profile, 42);
//! let mut cluster = Cluster::new(
//!     Placement::one_per_node(shape, 4),
//!     Topology::Crossbar,
//!     HierarchicalLatency::xeon_infiniband(),
//!     clocks,
//!     42,
//! );
//!
//! // Trace a tiny ring program.
//! let prog = Program::build(4, |r| {
//!     let next = Rank((r.0 + 1) % 4);
//!     let prev = Rank((r.0 + 3) % 4);
//!     RankProgram::new()
//!         .compute(Dur::from_us(100))
//!         .send(next, Tag(0), 64)
//!         .recv(prev, Tag(0))
//! });
//! let out = run(&mut cluster, &prog, &RunOptions::default()).unwrap();
//! assert_eq!(out.stats.messages, 4);
//!
//! // Check the clock condition and repair any violations with the CLC.
//! let mut trace = out.trace;
//! let lmin = UniformLatency(Dur::from_us(4));
//! controlled_logical_clock(&mut trace, &lmin, &ClcParams::default()).unwrap();
//! let matching = match_messages(&trace);
//! assert!(check_p2p(&trace, &matching, &lmin).violations.is_empty());
//! ```

#![warn(missing_docs)]

pub use clocksync;
pub use experiments;
pub use mpisim;
pub use netsim;
pub use onlinesync;
pub use simclock;
pub use syncd;
pub use syncd_client;
pub use syncd_wire;
pub use tracefmt;
pub use workloads;

/// The most commonly used types across the workspace.
pub mod prelude {
    pub use clocksync::{
        controlled_logical_clock, controlled_logical_clock_parallel, estimate_offset,
        synchronize, ClcParams, LinearInterpolation, OffsetAlignment, OffsetMeasurement,
        PipelineConfig, PreSync, ProbeSample, SyncMethod, TimestampMap,
    };
    pub use onlinesync::{ClockNetwork, DriftKalman, NetworkConfig, OnlineCorrector};
    pub use mpisim::{
        probe_all_workers, probe_worker, run, Cluster, MpiOp, OmpConfig, Program, RankProgram,
        RunOptions, ThreadPlacement,
    };
    pub use netsim::{HierarchicalLatency, Placement, Topology};
    pub use simclock::{
        ClockDomain, ClockEnsemble, ClockProfile, Dur, MachineShape, Platform, SimClock, Time,
        TimerKind,
    };
    pub use tracefmt::{
        check_collectives, check_p2p, check_pomp, match_collectives, match_messages,
        match_parallel_regions, CollOp, CommId, EventKind, Rank, RegionId, Tag, Trace,
        UniformLatency,
    };
    pub use workloads::{PopConfig, SmgConfig};
}
