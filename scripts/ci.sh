#!/usr/bin/env bash
# Full local gate for drift-lab, as one command:
#
#   ./scripts/ci.sh
#
# 1. tier-1 (ROADMAP): release build + full test suite
# 2. lint gate: clippy over the whole workspace, warnings are errors
# 3. ignored stress tests (~1M-event parallel pipeline run)
# 4. bench harnesses in check mode (each bench body runs once); the
#    ingest smoke run also enforces the >=1.5x chunked-ingest speedup
#    and refreshes BENCH_ingest.json at the repo root
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> lint: cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> stress: cargo test -q -- --ignored"
cargo test -q -- --ignored

echo "==> bench check: cargo bench -p bench --bench engine -- --test"
cargo bench -p bench --bench engine -- --test

echo "==> bench check: cargo bench -p bench --bench pipeline_parallel -- --test"
cargo bench -p bench --bench pipeline_parallel -- --test

echo "==> bench check: cargo bench -p bench --bench ingest -- --test"
cargo bench -p bench --bench ingest -- --test

echo "==> all gates green"
