#!/usr/bin/env bash
# Full local gate for drift-lab, as one command:
#
#   ./scripts/ci.sh
#
# 1. tier-1 (ROADMAP): release build + full test suite
# 2. ignored stress tests (~1M-event parallel pipeline run)
# 3. bench harnesses in check mode (each bench body runs once)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> stress: cargo test -q -- --ignored"
cargo test -q -- --ignored

echo "==> bench check: cargo bench -p bench --bench engine -- --test"
cargo bench -p bench --bench engine -- --test

echo "==> bench check: cargo bench -p bench --bench pipeline_parallel -- --test"
cargo bench -p bench --bench pipeline_parallel -- --test

echo "==> all gates green"
