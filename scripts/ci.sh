#!/usr/bin/env bash
# Full local gate for drift-lab, as one command:
#
#   ./scripts/ci.sh
#
# 1. tier-1 (ROADMAP): release build + full test suite
# 2. lint gate: clippy over the whole workspace, warnings are errors
# 3. ignored stress tests (~1M-event parallel pipeline run) — opt-in via
#    DRIFT_STRESS=1, they dominate the wall time of the whole script
# 4. bench harnesses in check mode (each bench body runs once); the
#    ingest smoke run also enforces the >=1.5x chunked-ingest speedup and
#    the >=2x v3 zero-copy ingest speedup and refreshes BENCH_ingest.json,
#    the pipeline smoke run refreshes BENCH_pipeline.json and the perf
#    gates below fail the script if the parallel-CLC speedup over serial
#    or the SIMD census-kernel / v3-ingest throughput regresses; the
#    syncd smoke run refreshes BENCH_syncd.json and a sanity gate checks
#    its report; the incremental smoke run refreshes
#    BENCH_incremental.json and the residency gate fails the script if
#    the windowed engine's resident columns stop being O(window); the
#    syncd_net smoke run refreshes BENCH_syncd_net.json and the wire
#    gate bounds socket-vs-in-process overhead; the online smoke run
#    refreshes BENCH_online.json and the online gate fails the script
#    unless the no-lookahead filter strictly undercuts endpoint
#    interpolation's violation census on every non-constant drift model
# 5. VOPR chaos campaign: 500 seeded simulation schedules against the
#    stepped service (5000 with DRIFT_STRESS=1); any failing seed is
#    shrunk, written to vopr-failure-<seed>.simt, and printed with a
#    copy-pasteable repro command — plus a netchaos campaign of seeded
#    connection-fault sessions through the wire stack
# 6. service + network smokes: the sync_service example runs headless
#    and must show >=1 retried job and 0 service crashes in its metrics
#    exporter; the net_service example must hold every wire-path
#    invariant over a real loopback socket
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> lint: cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${DRIFT_STRESS:-0}" == "1" ]]; then
    echo "==> stress: cargo test -q -- --ignored (DRIFT_STRESS=1)"
    cargo test -q -- --ignored
    # The v2↔v3 differential matrix widens itself under DRIFT_STRESS=1
    # (adds a 6000-message trace size) in both the AVX2 and the
    # forced-scalar test binary.
    echo "==> stress: v2/v3 differential matrix (wide)"
    cargo test -q --test columnar_differential --test columnar_differential_scalar
else
    echo "==> stress: skipped (set DRIFT_STRESS=1 to run the ~1M-event tests)"
fi

echo "==> bench check: cargo bench -p bench --bench engine -- --test"
cargo bench -p bench --bench engine -- --test

echo "==> bench check: cargo bench -p bench --bench pipeline_parallel -- --test"
cargo bench -p bench --bench pipeline_parallel -- --test

echo "==> bench check: cargo bench -p bench --bench ingest -- --test"
cargo bench -p bench --bench ingest -- --test

echo "==> bench check: cargo bench -p bench --bench syncd_throughput -- --test"
cargo bench -p bench --bench syncd_throughput -- --test

echo "==> bench check: cargo bench -p bench --bench incremental -- --test"
cargo bench -p bench --bench incremental -- --test

echo "==> bench check: cargo bench -p bench --bench syncd_net -- --test"
cargo bench -p bench --bench syncd_net -- --test

echo "==> bench check: cargo bench -p bench --bench online -- --test"
cargo bench -p bench --bench online -- --test

# Perf smoke gate: the replay CLC must not fall behind serial where real
# cores exist. One worker runs per process timeline, so on a single-core
# host the workers only time-slice — wall-clock speedup is impossible
# there and the bench's own sanity floor (>=0.25x) is the only check.
echo "==> perf gate: parallel-CLC speedup from BENCH_pipeline.json"
speedup=$(sed -n 's/.*"clc_parallel_over_serial_speedup": \([0-9.]*\).*/\1/p' BENCH_pipeline.json)
cpus=$(nproc 2>/dev/null || echo 1)
if [[ -z "$speedup" ]]; then
    echo "perf gate: could not read speedup from BENCH_pipeline.json" >&2
    exit 1
fi
echo "    clc speedup ${speedup}x on ${cpus} cpu(s)"
if [[ "$cpus" -ge 2 ]]; then
    # Small tolerance below 1.0x for scheduler noise.
    if ! awk -v s="$speedup" 'BEGIN { exit !(s >= 0.95) }'; then
        echo "perf gate: parallel CLC speedup ${speedup}x < 0.95x on ${cpus} cpus" >&2
        exit 1
    fi
else
    echo "    (single cpu: wall-clock gate not applicable, bench sanity floor applies)"
fi

# Kernel-throughput gate: the SIMD-width census kernels and the v3
# zero-copy ingest lane are single-thread-vs-single-thread ratios on the
# same host, so unlike the parallel-CLC gate they hold at every CPU
# count. Floors sit well under the measured margins (census ~5.5x,
# v3 ingest ~17x on the reference host) to absorb scheduler noise.
echo "==> perf gate: kernel throughput from BENCH_pipeline.json / BENCH_ingest.json"
census_speedup=$(sed -n 's/.*"census_kernel_over_reference_speedup": \([0-9.]*\).*/\1/p' BENCH_pipeline.json)
census_eps=$(sed -n 's/.*"census_events_per_sec": \([0-9.]*\).*/\1/p' BENCH_pipeline.json)
if [[ -z "$census_speedup" || -z "$census_eps" ]]; then
    echo "perf gate: could not read census kernel fields from BENCH_pipeline.json" >&2
    exit 1
fi
echo "    census kernel ${census_eps} events/s, ${census_speedup}x over reference walk"
if ! awk -v s="$census_speedup" 'BEGIN { exit !(s >= 3.0) }'; then
    echo "perf gate: census kernel speedup ${census_speedup}x < 3.0x over the reference walk" >&2
    exit 1
fi
v3_speedup=$(sed -n 's/.*"v3_ingest_over_v2_streamed_speedup": \([0-9.]*\).*/\1/p' BENCH_ingest.json)
v3_times_eps=$(sed -n 's/.*"v3_times_events_per_sec": \([0-9.]*\).*/\1/p' BENCH_ingest.json)
v3_streamed_eps=$(sed -n 's/.*"v3_streamed_events_per_sec": \([0-9.]*\).*/\1/p' BENCH_ingest.json)
if [[ -z "$v3_speedup" || -z "$v3_times_eps" || -z "$v3_streamed_eps" ]]; then
    echo "perf gate: could not read v3 ingest fields from BENCH_ingest.json" >&2
    exit 1
fi
echo "    v3 ingest ${v3_times_eps} events/s (full streamed decode ${v3_streamed_eps}), ${v3_speedup}x over v2 streamed"
if ! awk -v s="$v3_speedup" 'BEGIN { exit !(s >= 2.0) }'; then
    echo "perf gate: v3 zero-copy ingest ${v3_speedup}x < 2.0x over v2 streamed decode" >&2
    exit 1
fi

# Residency gate: the incremental windowed engine's whole contract is
# that its resident timestamp columns are O(window), not O(trace). The
# bench runs the same workload at 1x and 10x the events; the measured
# column high-water mark must stay (near) flat across that growth, and
# must undercut the batch engine's 8 x n_events gather at the 10x scale.
# Both ratios are machine-independent (bytes, not seconds), so the gate
# holds at every CPU count.
echo "==> residency gate: O(window) columns from BENCH_incremental.json"
res_growth=$(sed -n 's/.*"residency_growth_under_10x": \([0-9.]*\).*/\1/p' BENCH_incremental.json)
res_margin=$(sed -n 's/.*"batch_over_windowed_resident": \([0-9.]*\).*/\1/p' BENCH_incremental.json)
res_peak=$(sed -n 's/.*"large_peak_resident_bytes": \([0-9]*\).*/\1/p' BENCH_incremental.json)
if [[ -z "$res_growth" || -z "$res_margin" || -z "$res_peak" ]]; then
    echo "residency gate: could not read fields from BENCH_incremental.json" >&2
    exit 1
fi
echo "    peak ${res_peak} B, growth under 10x events ${res_growth}x, batch/windowed ${res_margin}x"
if ! awk -v g="$res_growth" 'BEGIN { exit !(g < 2.0) }'; then
    echo "residency gate: windowed columns grew ${res_growth}x under 10x events (must stay < 2.0x)" >&2
    exit 1
fi
if ! awk -v m="$res_margin" 'BEGIN { exit !(m >= 4.0) }'; then
    echo "residency gate: windowed columns only ${res_margin}x below the batch gather (need >= 4.0x)" >&2
    exit 1
fi

# Online-sync gate: the whole point of the online method is that a
# drift-tracking filter with NO lookahead still beats postmortem endpoint
# interpolation wherever drift is non-constant. The bench races the
# methods over fixed-seed scenarios and records violation censuses —
# integer counts from a deterministic pipeline, so the gate is
# machine-independent and holds at every CPU count. The online census
# must be strictly below interpolation's on every non-constant drift
# model, and never above it on the dynamic-membership churn scenarios.
echo "==> online gate: violation censuses from BENCH_online.json"
for model in sawtooth sinusoid randomwalk; do
    oi=$(sed -n "s/.*\"census_${model}_interp\": \([0-9]*\).*/\1/p" BENCH_online.json)
    oo=$(sed -n "s/.*\"census_${model}_online\": \([0-9]*\).*/\1/p" BENCH_online.json)
    if [[ -z "$oi" || -z "$oo" ]]; then
        echo "online gate: could not read ${model} censuses from BENCH_online.json" >&2
        exit 1
    fi
    echo "    ${model}: interp ${oi} -> online ${oo}"
    if [[ "$oo" -ge "$oi" ]]; then
        echo "online gate: ${model}: online census ${oo} not strictly below interp ${oi}" >&2
        exit 1
    fi
done
for model in churn_2_islands churn_3_islands_heavy; do
    oi=$(sed -n "s/.*\"census_${model}_interp\": \([0-9]*\).*/\1/p" BENCH_online.json)
    oo=$(sed -n "s/.*\"census_${model}_online\": \([0-9]*\).*/\1/p" BENCH_online.json)
    if [[ -z "$oi" || -z "$oo" ]]; then
        echo "online gate: could not read ${model} censuses from BENCH_online.json" >&2
        exit 1
    fi
    echo "    ${model}: interp ${oi} -> online ${oo}"
    if [[ "$oo" -gt "$oi" ]]; then
        echo "online gate: ${model}: online census ${oo} above interp ${oi}" >&2
        exit 1
    fi
done

# VOPR campaign: every seed must pass every invariant and replay
# identically from its decision trace. On failure the runner prints the
# seed and the exact command to reproduce it, so nothing extra is needed
# here beyond propagating the exit code.
if [[ "${DRIFT_STRESS:-0}" == "1" ]]; then
    vopr_seeds=5000
else
    vopr_seeds=500
fi
echo "==> vopr campaign: cargo run --release -p simsched --bin vopr -- --seeds ${vopr_seeds}"
cargo run --release -q -p simsched --bin vopr -- --seeds "$vopr_seeds"

# Connection-fault campaign: seeded sessions with truncated uploads,
# flipped bytes, and dropped downloads driven through the full wire
# stack; every seed must leave the server quiescent (no leaked admission
# charge, no executor crash) and every clean session bit-identical to a
# direct run. Failing seeds print their own repro command.
if [[ "${DRIFT_STRESS:-0}" == "1" ]]; then
    net_seeds=200
else
    net_seeds=25
fi
echo "==> netchaos campaign: cargo run --release -p simsched --bin vopr -- --net-seeds ${net_seeds}"
cargo run --release -q -p simsched --bin vopr -- --net-seeds "$net_seeds"

# Sanity gate over the syncd bench report. The CPU-aware throughput gate
# lives inside the bench itself; here we only check the report is sane.
echo "==> perf gate: syncd service report from BENCH_syncd.json"
svc_jps=$(sed -n 's/.*"service_jobs_per_sec": \([0-9.]*\).*/\1/p' BENCH_syncd.json)
p50=$(sed -n 's/.*"job_latency_p50_seconds": \([0-9.]*\).*/\1/p' BENCH_syncd.json)
p99=$(sed -n 's/.*"job_latency_p99_seconds": \([0-9.]*\).*/\1/p' BENCH_syncd.json)
if [[ -z "$svc_jps" || -z "$p50" || -z "$p99" ]]; then
    echo "perf gate: could not read syncd fields from BENCH_syncd.json" >&2
    exit 1
fi
echo "    service ${svc_jps} jobs/s, latency p50 ${p50}s p99 ${p99}s"
if ! awk -v j="$svc_jps" -v a="$p50" -v b="$p99" \
        'BEGIN { exit !(j > 0 && a <= b && b > 0) }'; then
    echo "perf gate: implausible syncd report (jobs/s ${svc_jps}, p50 ${p50}, p99 ${p99})" >&2
    exit 1
fi

# Seam-overhead gate: the Runtime/StepService seam must cost nothing in
# production. The service/direct throughput ratio is host-relative (both
# sides run on the same machine in the same process), so it is stable
# across CPU counts; the pre-seam baseline measured 1.202 on 1 cpu, and a
# ratio well below 1.0 would mean the executor path started paying for
# its abstractions.
#
# Measurement policy (explicit, so a flaky host doesn't get blamed on
# the code): the bench reports the *median of three strictly
# alternating direct/service rounds* — the methodology of "Reliable
# benchmarking: requirements and solutions" (arXiv:1505.07734) — so one
# noisy round (cold caches, a background task) is discarded by
# construction, and this gate reads that median. There is therefore NO
# retry loop here: a median below the floor across three rounds is a
# real regression, not noise, and must fail the script.
ratio=$(sed -n 's/.*"service_over_direct_ratio": \([0-9.]*\).*/\1/p' BENCH_syncd.json)
if [[ -z "$ratio" ]]; then
    echo "perf gate: could not read service_over_direct_ratio from BENCH_syncd.json" >&2
    exit 1
fi
echo "    service/direct ratio ${ratio}x (pre-seam baseline 1.202x)"
if ! awk -v r="$ratio" 'BEGIN { exit !(r >= 0.90) }'; then
    echo "perf gate: service/direct ratio ${ratio}x < 0.90x — executor seam regressed throughput" >&2
    exit 1
fi

# Wire-overhead gate: the framed loopback path (syncd-client -> TCP ->
# syncd-server) versus the same jobs submitted in-process. Same
# median-of-three alternating-rounds policy as the seam gate above; the
# floor bounds protocol overhead (framing, kernel copies, credit
# round-trips, reply re-encode) to 30% of throughput even on a
# single-CPU host where serialization cannot overlap job execution.
echo "==> perf gate: wire overhead from BENCH_syncd_net.json"
net_ratio=$(sed -n 's/.*"socket_over_inproc_ratio": \([0-9.]*\).*/\1/p' BENCH_syncd_net.json)
net_jps=$(sed -n 's/.*"socket_jobs_per_sec": \([0-9.]*\).*/\1/p' BENCH_syncd_net.json)
if [[ -z "$net_ratio" || -z "$net_jps" ]]; then
    echo "perf gate: could not read fields from BENCH_syncd_net.json" >&2
    exit 1
fi
echo "    socket ${net_jps} jobs/s, socket/in-process ratio ${net_ratio}x"
if ! awk -v r="$net_ratio" 'BEGIN { exit !(r >= 0.7) }'; then
    echo "perf gate: socket path at ${net_ratio}x of in-process throughput (floor 0.7x)" >&2
    exit 1
fi

# Network smoke: client -> TCP server -> client round trip, headless.
# The example asserts bit-identity with the in-process pipeline, typed
# auth rejection, incremental streaming, and router placement; any
# broken invariant panics and fails the gate.
echo "==> network smoke: cargo run --release --example net_service"
cargo run --release --example net_service

# Service smoke: the multi-tenant example must survive a poisoned stream —
# at least one retry recorded, zero panics escaping an executor.
echo "==> service smoke: cargo run --release --example sync_service"
smoke_out=$(cargo run --release --example sync_service)
retried=$(sed -n 's/^syncd_jobs_retried_total \([0-9]*\)$/\1/p' <<<"$smoke_out")
crashes=$(sed -n 's/^syncd_service_crashes_total \([0-9]*\)$/\1/p' <<<"$smoke_out")
echo "    retried=${retried:-?} crashes=${crashes:-?}"
if [[ -z "$retried" || -z "$crashes" || "$retried" -lt 1 || "$crashes" -ne 0 ]]; then
    echo "service smoke: expected >=1 retried job and 0 service crashes" >&2
    printf '%s\n' "$smoke_out" >&2
    exit 1
fi

echo "==> all gates green"
